"""Time calculus substrate (S1).

CML propositions carry a time component; the paper's ConceptBase supports
several time calculi through different inference engines, naming Allen's
interval algebra [ALLE83] and the Kowalski/Sergot event calculus [KS86].
This package implements both:

- :mod:`repro.timecalc.interval` — time points (with +/- infinity),
  half-open intervals, the distinguished ``ALWAYS`` interval, and the
  belief-time stamps used for "known since" assertions such as
  ``21-Sep-1987+`` in the paper.
- :mod:`repro.timecalc.allen` — the 13 Allen relations, the composition
  table, and a path-consistency constraint network over symbolic intervals.
- :mod:`repro.timecalc.events` — a logic-based event calculus: events
  initiate and terminate fluents; ``holds_at`` queries derive validity.
- :mod:`repro.timecalc.calculus` — the common ``TimeCalculus`` interface
  exposed to the inference engines.
"""

from repro.timecalc.interval import (
    ALWAYS,
    NEGATIVE_INFINITY,
    POSITIVE_INFINITY,
    Interval,
    TimePoint,
    parse_time,
)
from repro.timecalc.allen import (
    ALLEN_RELATIONS,
    AllenNetwork,
    AllenRelation,
    compose,
    invert,
    relation_between,
)
from repro.timecalc.events import Event, EventCalculus, Fluent
from repro.timecalc.calculus import (
    AllenCalculus,
    EventBasedCalculus,
    TimeCalculus,
    get_calculus,
)

__all__ = [
    "ALWAYS",
    "NEGATIVE_INFINITY",
    "POSITIVE_INFINITY",
    "Interval",
    "TimePoint",
    "parse_time",
    "ALLEN_RELATIONS",
    "AllenNetwork",
    "AllenRelation",
    "compose",
    "invert",
    "relation_between",
    "Event",
    "EventCalculus",
    "Fluent",
    "AllenCalculus",
    "EventBasedCalculus",
    "TimeCalculus",
    "get_calculus",
]
