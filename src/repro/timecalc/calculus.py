"""Common time-calculus interface for the inference engines.

Section 3.1 of the paper: "Several time calculi may be supported by
different inference engines, currently, the models of [ALLE83] and [KS86]
are supported."  This module defines the neutral :class:`TimeCalculus`
protocol the engines program against and the two concrete calculi.
"""

from __future__ import annotations

import abc
from typing import Any, Iterable, List

from repro.errors import TimeError
from repro.timecalc.allen import AllenNetwork, AllenRelation, relation_between
from repro.timecalc.events import Event, EventCalculus, Fluent
from repro.timecalc.interval import ALWAYS, Interval


class TimeCalculus(abc.ABC):
    """What an inference engine needs from a time model.

    The proposition processor only ever asks three temporal questions:
    does a proposition's validity cover a reference time, do two validity
    spans intersect, and is the recorded history consistent.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def valid_at(self, interval: Interval, time: Any) -> bool:
        """Does ``interval`` cover the time point ``time``?"""

    @abc.abstractmethod
    def cooccur(self, a: Interval, b: Interval) -> bool:
        """Could the two validity spans hold simultaneously?"""

    @abc.abstractmethod
    def check_consistency(self) -> None:
        """Raise :class:`TimeError` when recorded temporal facts clash."""


class AllenCalculus(TimeCalculus):
    """Interval-based calculus: concrete interval tests plus a symbolic
    constraint network for qualitative assertions (e.g. "design phase
    *before* implementation phase")."""

    name = "allen"

    def __init__(self) -> None:
        self.network = AllenNetwork()

    def valid_at(self, interval: Interval, time: Any) -> bool:
        """Interval containment test."""
        return interval.contains_point(time)

    def cooccur(self, a: Interval, b: Interval) -> bool:
        """Interval overlap test."""
        return a.overlaps(b)

    def assert_relation(self, a: str, b: str, relations: Iterable[AllenRelation]) -> None:
        """Constrain two symbolic intervals qualitatively."""
        self.network.constrain(a, b, relations)

    def classify(self, a: Interval, b: Interval) -> AllenRelation:
        """The Allen relation of two concrete intervals."""
        return relation_between(a, b)

    def check_consistency(self) -> None:
        """Path-consistency over the symbolic network."""
        self.network.propagate()


class EventBasedCalculus(TimeCalculus):
    """Event-calculus view: validity intervals are *derived* from events.

    A proposition's validity is modelled as a fluent; telling the KB about
    a proposition initiates it, retracting terminates it.
    """

    name = "events"

    def __init__(self) -> None:
        self.history = EventCalculus()

    def valid_at(self, interval: Interval, time: Any) -> bool:
        """Interval containment test."""
        return interval.contains_point(time)

    def cooccur(self, a: Interval, b: Interval) -> bool:
        """Interval overlap test."""
        return a.overlaps(b)

    def assert_proposition(self, name: str, time: Any) -> Event:
        """Record a tell event initiating validity."""
        return self.history.happens(
            f"tell({name})", time, initiates=[Fluent("valid", (name,))]
        )

    def retract_proposition(self, name: str, time: Any) -> Event:
        """Record an untell event terminating validity."""
        return self.history.happens(
            f"untell({name})", time, terminates=[Fluent("valid", (name,))]
        )

    def validity_intervals(self, name: str) -> List[Interval]:
        """Validity spans derived from the event history."""
        spans = self.history.intervals(Fluent("valid", (name,)))
        return spans if spans else []

    def currently_valid(self, name: str, time: Any) -> bool:
        """holds_at over the validity fluent."""
        return self.history.holds_at(Fluent("valid", (name,)), time)

    def check_consistency(self) -> None:
        # An event history is always consistent; retracting before telling
        # simply leaves the fluent out.  Nothing to do.
        """Event histories are always consistent; no-op."""
        return None


_CALCULI = {
    "allen": AllenCalculus,
    "events": EventBasedCalculus,
}


def get_calculus(name: str) -> TimeCalculus:
    """Instantiate a supported time calculus by name."""
    try:
        factory = _CALCULI[name]
    except KeyError:
        known = ", ".join(sorted(_CALCULI))
        raise TimeError(f"unknown time calculus {name!r} (known: {known})") from None
    return factory()


def default_validity() -> Interval:
    """The validity stamp used when the user does not supply one."""
    return ALWAYS
