"""Time points and intervals for CML propositions.

The paper attaches a time component ``t`` to every proposition
``p = <x, l, y, t>``.  Two kinds of time value appear in the text:

- *validity intervals* such as ``Always`` or ``version17`` — the span
  during which the asserted link holds in the modelled world;
- *belief times* such as ``21-Sep-1987+`` — the moment the knowledge base
  was told about the proposition, open towards the future.

Both are represented here by :class:`Interval`, built from
:class:`TimePoint` values that form a total order including the two
infinities.  Points are integers ("ticks") or ISO-style day numbers
produced by :func:`parse_time`; the algebra never inspects the payload
beyond ordering, so any comparable type works.
"""

from __future__ import annotations

import functools
import re
from dataclasses import dataclass
from typing import Any

from repro.errors import TimeError

_MONTHS = {
    "jan": 1, "feb": 2, "mar": 3, "apr": 4, "may": 5, "jun": 6,
    "jul": 7, "aug": 8, "sep": 9, "oct": 10, "nov": 11, "dec": 12,
}

_DATE_RE = re.compile(r"^(\d{1,2})-([A-Za-z]{3})-(\d{4})(\+?)$")


@functools.total_ordering
@dataclass(frozen=True)
class TimePoint:
    """A point on the time line; ``kind`` orders the infinities.

    ``kind`` is -1 for negative infinity, 0 for a finite value and +1 for
    positive infinity.  Finite points compare by ``value``.
    """

    kind: int = 0
    value: Any = None

    def __post_init__(self) -> None:
        if self.kind not in (-1, 0, 1):
            raise TimeError(f"invalid TimePoint kind {self.kind!r}")
        if self.kind == 0 and self.value is None:
            raise TimeError("finite TimePoint requires a value")

    @property
    def is_finite(self) -> bool:
        """False for the infinities."""
        return self.kind == 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimePoint):
            return NotImplemented
        if self.kind != other.kind:
            return False
        return self.kind != 0 or self.value == other.value

    def __hash__(self) -> int:
        return hash((self.kind, self.value if self.kind == 0 else None))

    def __lt__(self, other: "TimePoint") -> bool:
        if not isinstance(other, TimePoint):
            return NotImplemented
        if self.kind != other.kind:
            return self.kind < other.kind
        if self.kind != 0:
            return False
        try:
            return self.value < other.value
        except TypeError as exc:
            raise TimeError(
                f"incomparable time points {self.value!r} and {other.value!r}"
            ) from exc

    def __repr__(self) -> str:
        if self.kind == -1:
            return "-inf"
        if self.kind == 1:
            return "+inf"
        return f"t({self.value!r})"


NEGATIVE_INFINITY = TimePoint(kind=-1)
POSITIVE_INFINITY = TimePoint(kind=1)


def _as_point(value: Any) -> TimePoint:
    if isinstance(value, TimePoint):
        return value
    return TimePoint(kind=0, value=value)


def parse_time(text: str) -> "Interval":
    """Parse the paper's textual time notations into an interval.

    Supported forms:

    - ``"Always"`` (case-insensitive) — the full time line;
    - ``"21-Sep-1987"`` — a single-day interval;
    - ``"21-Sep-1987+"`` — known-since stamp, open towards the future;
    - ``"12..40"`` — an explicit tick range;
    - ``"17"`` — a single tick.

    Dates are mapped to a day ordinal ``year*10000 + month*100 + day``,
    which preserves calendar order for the comparisons we need.
    """

    stripped = text.strip()
    if stripped.lower() == "always":
        return ALWAYS
    match = _DATE_RE.match(stripped)
    if match:
        day, mon, year, plus = match.groups()
        month = _MONTHS.get(mon.lower())
        if month is None:
            raise TimeError(f"unknown month {mon!r} in {text!r}")
        ordinal = int(year) * 10000 + month * 100 + int(day)
        if plus:
            return Interval(_as_point(ordinal), POSITIVE_INFINITY)
        return Interval(_as_point(ordinal), _as_point(ordinal + 1))
    if ".." in stripped:
        lo_text, hi_text = stripped.split("..", 1)
        return Interval(_as_point(int(lo_text)), _as_point(int(hi_text)))
    if stripped.lstrip("-").isdigit():
        tick = int(stripped)
        return Interval(_as_point(tick), _as_point(tick + 1))
    raise TimeError(f"unparseable time literal {text!r}")


@dataclass(frozen=True)
class Interval:
    """A half-open interval ``[start, end)`` on the time line.

    Half-open intervals compose without double counting: a proposition
    valid on ``[0, 5)`` and another on ``[5, 9)`` never overlap, matching
    the version-interval semantics ("version 17 of the design is regarded
    as valid").
    """

    start: TimePoint
    end: TimePoint
    label: str | None = None

    def __post_init__(self) -> None:
        start = _as_point(self.start)
        end = _as_point(self.end)
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "end", end)
        if not start < end:
            raise TimeError(f"empty interval [{start!r}, {end!r})")

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_ticks(cls, start: Any, end: Any, label: str | None = None) -> "Interval":
        """Interval over raw comparable values."""
        return cls(_as_point(start), _as_point(end), label=label)

    @classmethod
    def since(cls, start: Any, label: str | None = None) -> "Interval":
        """Interval open towards the future (the ``date+`` notation)."""
        return cls(_as_point(start), POSITIVE_INFINITY, label=label)

    @classmethod
    def until(cls, end: Any, label: str | None = None) -> "Interval":
        """Interval open towards the past."""
        return cls(NEGATIVE_INFINITY, _as_point(end), label=label)

    # -- predicates ------------------------------------------------------

    @property
    def is_always(self) -> bool:
        """Covers the whole time line?"""
        return self.start == NEGATIVE_INFINITY and self.end == POSITIVE_INFINITY

    def contains_point(self, value: Any) -> bool:
        """Half-open containment: start <= t < end."""
        point = _as_point(value)
        return self.start <= point < self.end

    def contains(self, other: "Interval") -> bool:
        """True when ``other`` lies entirely within this interval."""
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "Interval") -> bool:
        """Do the two intervals share a point?"""
        return self.start < other.end and other.start < self.end

    def before(self, other: "Interval") -> bool:
        """Does this interval end by the other's start?"""
        return self.end <= other.start

    def meets(self, other: "Interval") -> bool:
        """Does this interval end exactly at the other's start?"""
        return self.end == other.start

    # -- combination -----------------------------------------------------

    def intersect(self, other: "Interval") -> "Interval | None":
        """The common sub-interval, or None."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start < end:
            return Interval(start, end)
        return None

    def clip_end(self, value: Any) -> "Interval | None":
        """Close an open interval at ``value`` (used when retracting)."""
        point = _as_point(value)
        if point <= self.start:
            return None
        return Interval(self.start, min(self.end, point), label=self.label)

    def __repr__(self) -> str:
        if self.is_always:
            return "Always"
        name = f"{self.label}=" if self.label else ""
        return f"{name}[{self.start!r},{self.end!r})"


ALWAYS = Interval(NEGATIVE_INFINITY, POSITIVE_INFINITY, label="Always")
