"""The served decision-history subsystem (ROADMAP item 2, §2.1/§3.3).

A durable, crash-recoverable decision ledger riding the WAL, a
justification graph for selective backtracking, replay drift tests and
version/configuration derivation — exposed over the wire as the
``decide`` / ``backtrack`` / ``replay`` / ``history`` / ``versions``
ops.
"""

from repro.decisions.engine import DecisionHistory, decide_keys
from repro.decisions.graph import JustificationGraph
from repro.decisions.ledger import DecisionLedger, KINDS, LedgerRecord

__all__ = [
    "DecisionHistory",
    "DecisionLedger",
    "JustificationGraph",
    "KINDS",
    "LedgerRecord",
    "decide_keys",
]
