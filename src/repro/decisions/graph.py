"""The justification graph: which later decisions a decision justifies.

Backtracking a decision must also retract its *transitive
consequences* — every later decision that read what it wrote (§3.3.3).
This module derives those consequence edges from the ledger alone:

- **FROM/TO links** — a later decision whose input objects intersect an
  earlier decision's outputs consumed its products;
- **BY links** — an explicit parent reference;
- **write-set overlap** — a later decision whose referenced ids
  (deleted/clipped pids, endpoints of created links, inputs) intersect
  the earlier decision's created ids built directly on its telling.

Edges always point forward in time (earlier ``tick`` to later), so the
graph is a DAG by construction and ``consequents`` is a plain BFS.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.decisions.ledger import LedgerRecord


class JustificationGraph:
    """Consequence edges over a snapshot of ledger records."""

    def __init__(self, records: Iterable[LedgerRecord]) -> None:
        self.records: List[LedgerRecord] = sorted(records,
                                                  key=lambda r: r.tick)
        #: did -> {consequent did -> reason}, direct edges only.
        self.edges: Dict[str, Dict[str, str]] = {
            record.did: {} for record in self.records
        }
        self._build()

    def _build(self) -> None:
        created = {r.did: set(r.created_ids()) for r in self.records}
        referenced = {r.did: set(r.referenced_ids()) for r in self.records}
        inputs = {r.did: set(r.inputs.values()) for r in self.records}
        outputs = {r.did: set(r.outputs) for r in self.records}
        for i, earlier in enumerate(self.records):
            targets = self.edges[earlier.did]
            for later in self.records[i + 1:]:
                if earlier.did in later.parents:
                    targets[later.did] = "by"
                elif inputs[later.did] & outputs[earlier.did]:
                    targets[later.did] = "from-to"
                elif referenced[later.did] & created[earlier.did]:
                    targets[later.did] = "write-set"
        return

    @property
    def node_count(self) -> int:
        return len(self.records)

    @property
    def edge_count(self) -> int:
        return sum(len(targets) for targets in self.edges.values())

    def edge_list(self) -> List[Dict[str, str]]:
        """Stable wire form of the direct edges."""
        out: List[Dict[str, str]] = []
        for source in sorted(self.edges):
            for target in sorted(self.edges[source]):
                out.append({
                    "from": source,
                    "to": target,
                    "reason": self.edges[source][target],
                })
        return out

    def consequents(self, did: str,
                    active_only: bool = True) -> Set[str]:
        """Transitive consequents of ``did`` (``did`` itself excluded).

        With ``active_only`` (the backtracking traversal) retracted
        decisions neither appear in the result nor transmit
        consequence — their effects are already gone."""
        active = {r.did for r in self.records
                  if r.is_active or not active_only}
        seen: Set[str] = set()
        frontier = [did]
        while frontier:
            current = frontier.pop()
            for target in self.edges.get(current, ()):
                if target in active and target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen

    def justification_of(self, did: str) -> List[Tuple[str, str]]:
        """Direct justifiers of ``did``: ``(earlier did, reason)``."""
        out = []
        for source, targets in self.edges.items():
            if did in targets:
                out.append((source, targets[did]))
        return sorted(out)
