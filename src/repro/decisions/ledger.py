"""The immutable, serializable decision ledger (§2.1/§3.3).

Every served design decision becomes one :class:`LedgerRecord`: the
decision class, the tool, the input/output design objects, the *exact*
proposition ids told, untold and clipped, the serialized delta those
ids summarize, obligations, parent links and a logical timestamp.
Records are append-only — selective backtracking never removes one, it
marks it ``retracted`` and appends a retraction event to the same WAL,
so the full decision history (including the paths not taken) survives
any crash and is reconstructible from the log alone.

The in-memory ledger is a thin typed view over exactly what
:class:`~repro.propositions.wal.WalStore` persists in its
``decision_log``; :meth:`LedgerRecord.to_json` /
:meth:`LedgerRecord.from_json` round-trip losslessly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import DecisionError

#: Decision kinds with derivation semantics (§3.3): ``mapping``
#: decisions produce vertical configurations, ``refinement`` horizontal
#: ones, ``choice`` decisions open version alternatives.
KINDS = ("mapping", "refinement", "choice", "other")


@dataclass
class LedgerRecord:
    """One durable decision: provenance plus its serialized delta."""

    did: str
    tick: int
    decision_class: str
    kind: str = "other"
    tool: Optional[str] = None
    #: role -> design-object name (the FROM links).
    inputs: Dict[str, str] = field(default_factory=dict)
    #: design objects this decision created (the TO links).
    outputs: List[str] = field(default_factory=list)
    #: explicit BY/parent links to earlier decisions.
    parents: List[str] = field(default_factory=list)
    rationale: str = ""
    obligations: List[str] = field(default_factory=list)
    #: exact proposition ids created / deleted / clipped.
    told: List[str] = field(default_factory=list)
    untold: List[str] = field(default_factory=list)
    clipped: List[str] = field(default_factory=list)
    #: the serialized delta, in apply order:
    #: ``["create", prop] | ["delete", prop] | ["clip", old, new]``.
    delta: List[List[Any]] = field(default_factory=list)
    status: str = "done"
    retracted_tick: Optional[int] = None

    @property
    def is_active(self) -> bool:
        return self.status == "done"

    def created_ids(self) -> List[str]:
        """Every id this decision brought into existence (pids told
        plus named outputs) — the write set the justification graph
        overlaps against."""
        out = list(self.told)
        out.extend(name for name in self.outputs if name not in out)
        return out

    def referenced_ids(self) -> List[str]:
        """Every id this decision *read or touched*: input objects,
        deleted/clipped pids, and the endpoints of created links."""
        refs: List[str] = list(self.inputs.values())
        refs.extend(self.untold)
        refs.extend(self.clipped)
        for op in self.delta:
            if op[0] == "create":
                prop = op[1]
                for endpoint in (prop.get("source"), prop.get("destination")):
                    if endpoint and endpoint != prop.get("pid"):
                        refs.append(endpoint)
        return refs

    def summary(self) -> Dict[str, Any]:
        """The wire shape ``history`` returns (delta elided to counts)."""
        return {
            "did": self.did,
            "tick": self.tick,
            "decision_class": self.decision_class,
            "kind": self.kind,
            "tool": self.tool,
            "inputs": dict(self.inputs),
            "outputs": list(self.outputs),
            "parents": list(self.parents),
            "rationale": self.rationale,
            "obligations": list(self.obligations),
            "told": len(self.told),
            "untold": len(self.untold),
            "clipped": len(self.clipped),
            "status": self.status,
            "retracted_tick": self.retracted_tick,
        }

    def to_json(self) -> Dict[str, Any]:
        """Lossless, JSON-able form — exactly what rides the WAL."""
        return {
            "did": self.did,
            "tick": self.tick,
            "decision_class": self.decision_class,
            "kind": self.kind,
            "tool": self.tool,
            "inputs": dict(self.inputs),
            "outputs": list(self.outputs),
            "parents": list(self.parents),
            "rationale": self.rationale,
            "obligations": list(self.obligations),
            "told": list(self.told),
            "untold": list(self.untold),
            "clipped": list(self.clipped),
            "delta": [list(op) for op in self.delta],
            "status": self.status,
            "retracted_tick": self.retracted_tick,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "LedgerRecord":
        if not isinstance(data, dict) or "did" not in data:
            raise DecisionError(f"bad serialized decision record: {data!r}")
        return cls(
            did=str(data["did"]),
            tick=int(data.get("tick", 0)),
            decision_class=str(data.get("decision_class", "")),
            kind=str(data.get("kind", "other")),
            tool=data.get("tool"),
            inputs=dict(data.get("inputs") or {}),
            outputs=list(data.get("outputs") or []),
            parents=list(data.get("parents") or []),
            rationale=str(data.get("rationale", "")),
            obligations=list(data.get("obligations") or []),
            told=list(data.get("told") or []),
            untold=list(data.get("untold") or []),
            clipped=list(data.get("clipped") or []),
            delta=[list(op) for op in data.get("delta") or []],
            status=str(data.get("status", "done")),
            retracted_tick=data.get("retracted_tick"),
        )


class DecisionLedger:
    """Append-only record list with deterministic ids and ticks.

    ``did``s are ``d1, d2, ...`` by append order and ticks advance by
    one per ledger event (decide or backtrack), so replaying the same
    accepted history — from the commit log or the WAL — reproduces the
    same ids, which is what makes the ledger itself the oracle.
    """

    def __init__(self) -> None:
        # All mutation happens on the service's commit-writer thread;
        # reads run under the serving rwlock above it.
        self.records: List[LedgerRecord] = []  # guarded-by: external: GKBMSService._rwlock
        self.by_did: Dict[str, LedgerRecord] = {}  # guarded-by: external: GKBMSService._rwlock
        self._events = 0  # guarded-by: <writer>

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[LedgerRecord]:
        return iter(self.records)

    def next_did(self) -> str:
        return f"d{len(self.records) + 1}"

    def next_tick(self) -> int:  # runs-on: writer
        self._events += 1
        return self._events

    def get(self, did: str) -> LedgerRecord:
        record = self.by_did.get(did)
        if record is None:
            raise DecisionError(f"unknown decision {did!r}")
        return record

    def append(self, record: LedgerRecord) -> None:  # runs-on: writer
        if record.did in self.by_did:
            raise DecisionError(f"duplicate decision id {record.did!r}")
        self.records.append(record)
        self.by_did[record.did] = record
        self._events = max(self._events, record.tick,
                           record.retracted_tick or 0)

    def mark_retracted(self, did: str, tick: int) -> None:  # runs-on: writer
        record = self.get(did)
        record.status = "retracted"
        record.retracted_tick = tick
        self._events = max(self._events, tick)

    def active(self) -> List[LedgerRecord]:
        return [record for record in self.records if record.is_active]

    @classmethod
    def from_wire_log(cls, decision_log: List[Dict[str, Any]]
                      ) -> "DecisionLedger":
        """Rebuild the typed ledger from a recovered
        :attr:`~repro.propositions.wal.WalStore.decision_log`."""
        ledger = cls()
        for item in decision_log:
            ledger.append(LedgerRecord.from_json(item))
        return ledger
