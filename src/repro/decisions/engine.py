"""The served decision-history engine.

:class:`DecisionHistory` binds a ledger + justification graph to one
:class:`~repro.conceptbase.ConceptBase` and implements the five wire
ops (§3.3 served):

- ``decide`` — run a decision's tells/untells as one transaction and
  append the ledger record *inside* that transaction, so record and
  delta are atomic on the WAL (:meth:`apply_decide`, writer thread);
- ``backtrack`` — graph-traverse the transitive consequents and undo
  exactly their recorded deltas, newest first, as one transaction
  (:meth:`apply_backtrack`, writer thread) — never a rebuild of the
  base, so cost is proportional to the consequence set;
- ``replay`` — re-applicability test: diff a decision's recorded delta
  against the current base and report drift (read);
- ``history`` — the ledger plus the justification graph's edges (read);
- ``versions`` — versions and vertical/horizontal configurations
  derived from the ledger's mapping/refinement/choice kinds (read).

Threading contract: ``apply_*`` methods run exclusively on the commit
pipeline's writer thread under the service's write lock (the service
dispatches them from ``_apply_commit``); the read methods run under
the service's read lock.  The ledger itself is therefore guarded by
the same rwlock as the proposition store.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.conceptbase import ConceptBase
from repro.decisions.graph import JustificationGraph
from repro.decisions.ledger import DecisionLedger, KINDS, LedgerRecord
from repro.errors import BacktrackError, DecisionError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer, get_tracer
from repro.propositions.serialization import (
    proposition_from_json,
    proposition_to_json,
)
from repro.propositions.wal import WalStore


def decide_keys(spec: Dict[str, Any]) -> List[str]:
    """The conflict keys a decide spec writes: every object name its
    tells define and its untells remove (first-committer-wins uses
    these exactly like staged tell/untell keys)."""
    keys: List[str] = []
    for source in spec.get("tell") or []:
        for line in str(source).replace("\n", " ").split("TELL")[1:]:
            name = line.strip().split()[0] if line.strip() else ""
            if name and name not in keys:
                keys.append(name)
    for name in spec.get("untell") or []:
        if name not in keys:
            keys.append(str(name))
    return keys


class DecisionHistory:
    """Ledger + justification graph + derivations over one base."""

    def __init__(self, cb: ConceptBase,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self.cb = cb
        self.proc = cb.propositions
        self.store = self.proc.store
        self.registry = registry if registry is not None else cb.registry
        ns = self.registry.namespace("decisions")
        self._c_recorded = ns.counter("recorded")
        self._c_backtracked = ns.counter("backtracked")
        self._c_replay_drift = ns.counter("replay_drift")
        self._g_nodes = ns.gauge("graph_nodes")
        self._g_edges = ns.gauge("graph_edges")
        self._tracer = tracer
        #: Durable stores carry the ledger across restarts; rebuilding
        #: from ``decision_log`` here is the whole recovery story.
        if isinstance(self.store, WalStore):
            self.ledger = DecisionLedger.from_wire_log(self.store.decision_log)
        else:
            self.ledger = DecisionLedger()
        self._refresh_gauges()

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else get_tracer()

    def _refresh_gauges(self) -> None:
        graph = JustificationGraph(self.ledger.records)
        self._g_nodes.set(graph.node_count)
        self._g_edges.set(graph.edge_count)

    # ------------------------------------------------------------------
    # Writes (commit-pipeline writer thread, under the write lock)
    # ------------------------------------------------------------------

    def _validate_spec(self, spec: Dict[str, Any]) -> None:
        if not isinstance(spec.get("decision_class"), str) \
                or not spec["decision_class"]:
            raise DecisionError("decide needs a 'decision_class' string")
        kind = spec.get("kind", "other")
        if kind not in KINDS:
            raise DecisionError(
                f"unknown decision kind {kind!r} (choose from {KINDS})"
            )
        inputs = spec.get("inputs") or {}
        if not isinstance(inputs, dict):
            raise DecisionError("'inputs' must map roles to object names")
        for role, name in inputs.items():
            if not self.proc.exists(str(name)):
                raise DecisionError(
                    f"input {role!r} = {name!r} does not exist"
                )
        for parent in spec.get("parents") or []:
            if parent not in self.ledger.by_did:
                raise DecisionError(f"unknown parent decision {parent!r}")

    def apply_decide(self, arg: str) -> Dict[str, Any]:  # runs-on: writer
        """Execute one decide spec (canonical JSON) transactionally."""
        spec = json.loads(arg)
        self._validate_spec(spec)
        durable = isinstance(self.store, WalStore)
        did = self.ledger.next_did()
        record: Optional[LedgerRecord] = None
        with self.tracer.span("decisions.decide", did=did,
                              decision_class=spec["decision_class"]):
            try:
                with self.cb.transaction() as telling:
                    for source in spec.get("tell") or []:
                        self.cb.tell(str(source))
                    for name in spec.get("untell") or []:
                        self.cb.untell(str(name))
                    record = self._record_from_telling(did, spec,
                                                       telling.ops)
                    if durable:
                        self.store.append_decision(record.to_json())
            except BaseException:
                if durable and record is not None:
                    self.store.rollback_decision(did)
                raise
        self.ledger.append(record)
        self._c_recorded.inc()
        self._refresh_gauges()
        return {
            "did": record.did,
            "tick": record.tick,
            "outputs": list(record.outputs),
            "told": len(record.told),
            "untold": len(record.untold),
        }

    def _record_from_telling(self, did: str, spec: Dict[str, Any],
                             ops: List[Any]) -> LedgerRecord:
        told: List[str] = []
        untold: List[str] = []
        clipped: List[str] = []
        delta: List[List[Any]] = []
        outputs: List[str] = []
        for op in ops:
            if op[0] == "create":
                prop = op[1]
                told.append(prop.pid)
                delta.append(["create", proposition_to_json(prop)])
                if prop.is_individual and prop.pid not in outputs:
                    outputs.append(prop.pid)
            elif op[0] == "delete":
                untold.append(op[1].pid)
                delta.append(["delete", proposition_to_json(op[1])])
            elif op[0] == "clip":
                clipped.append(op[2].pid)
                delta.append(["clip", proposition_to_json(op[1]),
                              proposition_to_json(op[2])])
        return LedgerRecord(
            did=did,
            tick=self.ledger.next_tick(),
            decision_class=spec["decision_class"],
            kind=spec.get("kind", "other"),
            tool=spec.get("tool"),
            inputs={str(k): str(v)
                    for k, v in (spec.get("inputs") or {}).items()},
            outputs=outputs,
            parents=[str(p) for p in spec.get("parents") or []],
            rationale=str(spec.get("rationale", "")),
            obligations=[str(o) for o in spec.get("obligations") or []],
            told=told,
            untold=untold,
            clipped=clipped,
            delta=delta,
        )

    def apply_backtrack(self, arg: str) -> Dict[str, Any]:  # runs-on: writer
        """Retract a decision and its transitive consequents by undoing
        exactly their recorded deltas (newest first, one transaction)."""
        spec = json.loads(arg)
        did = str(spec.get("did", ""))
        record = self.ledger.get(did)
        if not record.is_active:
            raise BacktrackError(f"decision {did!r} is already retracted")
        graph = JustificationGraph(self.ledger.records)
        condemned = graph.consequents(did) | {did}
        victims = sorted((self.ledger.by_did[d] for d in condemned),
                         key=lambda r: r.tick, reverse=True)
        durable = isinstance(self.store, WalStore)
        tick = self.ledger.next_tick()
        reapplied = 0
        marked: List[str] = []
        with self.tracer.span("decisions.backtrack", did=did,
                              condemned=len(victims)):
            try:
                with self.cb.transaction():
                    for victim in victims:
                        reapplied += self._undo_delta(victim)
                        if durable:
                            self.store.append_decision_retract(victim.did,
                                                               tick)
                        marked.append(victim.did)
            except BaseException:
                if durable:
                    for victim_did in marked:
                        self.store.rollback_decision_retract(victim_did)
                raise
        for victim_did in marked:
            self.ledger.mark_retracted(victim_did, tick)
        self._c_backtracked.inc(len(marked))
        self._refresh_gauges()
        return {
            "did": did,
            "tick": tick,
            "retracted": marked,
            "reapplied": reapplied,
        }

    def _undo_delta(self, record: LedgerRecord) -> int:  # runs-on: writer
        """Inverse-apply one record's delta through the processor's
        delta-maintenance paths; returns propositions touched."""
        count = 0
        for op in reversed(record.delta):
            kind = op[0]
            if kind == "create":
                pid = op[1]["pid"]
                if self.proc.exists(pid):
                    count += len(self.proc.retract(pid, cascade=True))
            elif kind == "delete":
                data = op[1]
                if not self.proc.exists(data["pid"]):
                    self.proc.create_proposition(proposition_from_json(data))
                    count += 1
            elif kind == "clip":
                old = op[1]
                if self.proc.exists(old["pid"]):
                    self.proc.replace_proposition(proposition_from_json(old))
                    count += 1
        return count

    # ------------------------------------------------------------------
    # Reads (under the service's read lock)
    # ------------------------------------------------------------------

    def history(self, include_retracted: bool = True) -> Dict[str, Any]:
        """The ledger plus the justification graph's direct edges."""
        graph = JustificationGraph(self.ledger.records)
        decisions = [
            record.summary() for record in self.ledger.records
            if include_retracted or record.is_active
        ]
        return {
            "decisions": decisions,
            "edges": graph.edge_list(),
            "recorded": len(self.ledger.records),
            "active": len(self.ledger.active()),
        }

    def replay(self, did: str) -> Dict[str, Any]:
        """Re-applicability test: diff the recorded delta against the
        current base; every mismatch is one drift entry."""
        record = self.ledger.get(did)
        drift: List[Dict[str, Any]] = []
        applicable = True
        # Endpoints the decision itself (re)creates are satisfiable by
        # re-applying it — only *external* endpoints can go missing.
        would_create = {op[1]["pid"] for op in record.delta
                        if op[0] == "create"}
        for role, name in record.inputs.items():
            if not self.proc.exists(name):
                applicable = False
                drift.append({"kind": "missing_input", "role": role,
                              "name": name})
        for op in record.delta:
            if op[0] == "create":
                data = op[1]
                if self.proc.exists(data["pid"]):
                    current = proposition_to_json(self.proc.get(data["pid"]))
                    if current != data:
                        drift.append({"kind": "changed", "pid": data["pid"]})
                else:
                    for endpoint in (data["source"], data["destination"]):
                        if endpoint != data["pid"] \
                                and endpoint not in would_create \
                                and not self.proc.exists(endpoint):
                            applicable = False
                            drift.append({"kind": "missing_endpoint",
                                          "pid": data["pid"],
                                          "name": endpoint})
            elif op[0] == "delete":
                if not self.proc.exists(op[1]["pid"]):
                    drift.append({"kind": "already_gone",
                                  "pid": op[1]["pid"]})
            elif op[0] == "clip":
                old, new = op[1], op[2]
                if not self.proc.exists(old["pid"]):
                    drift.append({"kind": "already_gone", "pid": old["pid"]})
                elif proposition_to_json(self.proc.get(old["pid"])) != new:
                    drift.append({"kind": "changed", "pid": old["pid"]})
        if drift:
            self._c_replay_drift.inc()
        return {
            "did": did,
            "status": record.status,
            "applicable": applicable,
            "drift": drift,
        }

    def versions(self) -> Dict[str, Any]:
        """Versions and configurations derived from the ledger (§3.3):
        outputs named ``base~tick`` are versions of ``base``; mapping
        decisions yield vertical configuration edges, refinement
        decisions horizontal ones, choice decisions alternatives."""
        versions: Dict[str, List[Dict[str, Any]]] = {}
        vertical: List[Dict[str, Any]] = []
        horizontal: List[Dict[str, Any]] = []
        alternatives: List[Dict[str, Any]] = []
        for record in self.ledger.records:
            for name in record.outputs:
                base = name.split("~", 1)[0]
                versions.setdefault(base, []).append({
                    "name": name,
                    "decision": record.did,
                    "active": record.is_active,
                })
            edge = {
                "decision": record.did,
                "from": sorted(set(record.inputs.values())),
                "to": list(record.outputs),
                "active": record.is_active,
            }
            if record.kind == "mapping":
                vertical.append(edge)
            elif record.kind == "refinement":
                horizontal.append(edge)
            elif record.kind == "choice":
                alternatives.append(edge)
        return {
            "versions": {base: entries
                         for base, entries in sorted(versions.items())},
            "vertical": vertical,
            "horizontal": horizontal,
            "alternatives": alternatives,
        }
