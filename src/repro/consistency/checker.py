"""Constraint propositions and the consistency checker."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import ConsistencyError
from repro.assertions.ast import Expression
from repro.assertions.evaluator import Evaluator
from repro.assertions.parser import parse_assertion
from repro.obs.metrics import MetricsRegistry, Namespace
from repro.obs.tracing import Tracer, get_tracer
from repro.propositions.processor import PropositionProcessor
from repro.propositions.proposition import Proposition

#: The distinguished free variable bound to each checked instance.
SELF = "self"


@dataclass(frozen=True)
class ConstraintDef:
    """A named constraint attached to a class.

    ``expression`` may use the free variable ``self`` (checked once per
    instance of the class) or be closed (checked once whenever any
    instance of the class is touched).
    """

    name: str
    attached_to: str
    expression: Expression
    source: str

    @property
    def per_instance(self) -> bool:
        """Uses the free variable ``self``?"""
        return SELF in self.expression.free_variables()


@dataclass(frozen=True)
class Violation:
    """One constraint failure, pointing at the violating instance."""

    constraint: str
    attached_to: str
    instance: Optional[str]

    def __repr__(self) -> str:
        subject = self.instance if self.instance is not None else "<global>"
        return f"Violation({self.constraint} on {subject})"


class CheckStats:
    """Counters for the set-oriented vs per-proposition comparison.

    Keeps the attribute API (``stats.evaluations += 1``) but stores each
    counter in a registry namespace, so the numbers also appear in
    metric snapshots and two checkers never share state by accident.
    ``skipped`` counts constraints pruned by the relevance index.
    """

    FIELDS = ("evaluations", "instances_checked", "batches", "skipped")

    def __init__(self, namespace: Optional[Namespace] = None) -> None:
        if namespace is None:
            namespace = MetricsRegistry().namespace("consistency")
        object.__setattr__(self, "_counters",
                           {f: namespace.counter(f) for f in self.FIELDS})

    def __getattr__(self, name: str) -> int:
        counters = object.__getattribute__(self, "_counters")
        if name in counters:
            return counters[name].value
        raise AttributeError(name)

    def __setattr__(self, name: str, value: int) -> None:
        if name not in self._counters:
            raise AttributeError(f"CheckStats has no counter {name!r}")
        self._counters[name].set(value)

    def reset(self) -> None:
        """Zero every counter."""
        for counter in self._counters.values():
            counter.reset()

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict copy of the counters."""
        return {name: c.value for name, c in self._counters.items()}

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"CheckStats({body})"


class ConsistencyChecker:
    """Evaluates class constraints over instances.

    ``set_oriented=True`` (the default, and the paper's direction of
    study) deduplicates (constraint, instance) pairs across a whole
    batch of updates before evaluating; ``set_oriented=False`` naively
    re-evaluates per updated proposition, which is the ablation measured
    by benchmark Perf-2.

    ``use_relevance=True`` additionally consults the statically compiled
    :class:`~repro.analysis.relevance.RelevanceIndex`: a batch of pure
    attribute updates only re-evaluates constraints whose footprint
    (closed under rule-derived labels, see :meth:`set_rule_source`)
    intersects the touched labels — the precompiled half of the paper's
    set-oriented optimisation.
    """

    def __init__(
        self,
        processor: PropositionProcessor,
        set_oriented: bool = True,
        include_deduced: bool = True,
        use_relevance: bool = True,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        from repro.analysis.relevance import RelevanceIndex

        self.processor = processor
        self.set_oriented = set_oriented
        self.use_relevance = use_relevance
        self.evaluator = Evaluator(processor, include_deduced=include_deduced)
        self._constraints: Dict[str, ConstraintDef] = {}
        self._by_class: Dict[str, List[str]] = {}
        self.relevance = RelevanceIndex()
        self._rule_source = None
        self._rule_signature: Optional[Tuple[str, ...]] = None
        self.registry = registry if registry is not None else MetricsRegistry()
        self._tracer = tracer
        self.stats = CheckStats(self.registry.namespace("consistency"))

    @property
    def tracer(self) -> Tracer:
        """The checker's tracer (falls back to the process default)."""
        return self._tracer if self._tracer is not None else get_tracer()

    def set_tracer(self, tracer: Optional[Tracer]) -> None:
        """Pin a tracer for this checker (``None`` = process default)."""
        self._tracer = tracer

    def reset_stats(self) -> None:
        """Zero this checker's counters."""
        self.stats.reset()

    # ------------------------------------------------------------------
    # Constraint management
    # ------------------------------------------------------------------

    def attach_constraint(
        self, cls: str, name: str, text: str, document: bool = True
    ) -> ConstraintDef:
        """Attach a constraint to ``cls`` and document it in the base as
        a constraint proposition pointing at an assertion object."""
        if name in self._constraints:
            raise ConsistencyError(name, [f"duplicate constraint name {name!r}"])
        definition = ConstraintDef(name, cls, parse_assertion(text), text)
        self._constraints[name] = definition
        self._by_class.setdefault(cls, []).append(name)
        self.relevance.add(name, cls, definition.expression)
        if document:
            holder = f"Assertion_{name}"
            if not self.processor.exists(holder):
                self.processor.tell_individual(holder, in_class="AssertionObject")
            self.processor.tell_link(
                cls, "constraint", holder, of_class="ConstraintAttribute"
            )
        return definition

    def constraints(self) -> Dict[str, ConstraintDef]:
        """All attached constraints by name."""
        return dict(self._constraints)

    def drop_constraint(self, name: str) -> None:
        """Detach a constraint by name."""
        definition = self._constraints.pop(name, None)
        if definition is None:
            raise ConsistencyError(name, ["unknown constraint"])
        self._by_class[definition.attached_to].remove(name)
        self.relevance.remove(name)

    def set_rule_source(self, source) -> None:
        """Tell the relevance index where deduction rules come from.

        ``source`` is a zero-argument callable returning the registered
        rules by name (e.g. ``RuleEngine.rules``); the label-derivation
        closure is rebuilt whenever the rule set changes, so footprint
        matching stays sound in the presence of derived attributes.
        """
        self._rule_source = source
        self._rule_signature = None

    def _refresh_label_deps(self) -> None:
        if self._rule_source is None:
            return
        from repro.analysis.relevance import LabelDependencies

        rules = self._rule_source()
        signature = tuple(sorted(rules))
        if signature != self._rule_signature:
            self._rule_signature = signature
            self.relevance.label_deps = LabelDependencies(rules.values())

    def constraints_for(self, cls: str) -> List[ConstraintDef]:
        """Constraints attached to ``cls`` or any of its generalizations
        (constraints are inherited down the isa hierarchy)."""
        names: List[str] = []
        for sup in sorted(self.processor.generalizations(cls)):
            names.extend(self._by_class.get(sup, ()))
        return [self._constraints[n] for n in names]

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------

    def _evaluate(self, definition: ConstraintDef, instance: Optional[str]) -> Optional[Violation]:
        self.stats.evaluations += 1
        env = {SELF: instance} if definition.per_instance else {}
        if self.evaluator.evaluate(definition.expression, env):
            return None
        return Violation(definition.name, definition.attached_to, instance)

    def check_instance(self, instance: str) -> List[Violation]:
        """Check every constraint applicable to ``instance``."""
        violations: List[Violation] = []
        self.stats.instances_checked += 1
        for cls in sorted(self.processor.classes_of(instance)):
            for definition in self._by_class_direct(cls):
                subject = instance if definition.per_instance else None
                violation = self._evaluate(definition, subject)
                if violation is not None:
                    violations.append(violation)
        return violations

    def _by_class_direct(self, cls: str) -> List[ConstraintDef]:
        return [self._constraints[n] for n in self._by_class.get(cls, ())]

    def check_class(self, cls: str) -> List[Violation]:
        """Check all constraints of ``cls`` over its current extent."""
        with self.tracer.span("consistency.check_class", cls=cls) as span:
            violations = self._check_class(cls)
            span.set(violations=len(violations))
        return violations

    def _check_class(self, cls: str) -> List[Violation]:
        violations: List[Violation] = []
        definitions = self.constraints_for(cls)
        if not definitions:
            return violations
        extent = sorted(self.processor.instances_of(cls))
        for definition in definitions:
            if definition.per_instance:
                for instance in extent:
                    self.stats.instances_checked += 1
                    violation = self._evaluate(definition, instance)
                    if violation is not None:
                        violations.append(violation)
            else:
                violation = self._evaluate(definition, None)
                if violation is not None:
                    violations.append(violation)
        return violations

    def check_all(self) -> List[Violation]:
        """Check every attached constraint over its class extent."""
        with self.tracer.span(
            "consistency.check_all", constraints=len(self._constraints)
        ) as span:
            violations = self._check_all()
            span.set(violations=len(violations))
        return violations

    def _check_all(self) -> List[Violation]:
        violations: List[Violation] = []
        for cls in list(self._by_class):
            for definition in self._by_class_direct(cls):
                if definition.per_instance:
                    for instance in sorted(self.processor.instances_of(cls)):
                        self.stats.instances_checked += 1
                        violation = self._evaluate(definition, instance)
                        if violation is not None:
                            violations.append(violation)
                else:
                    violation = self._evaluate(definition, None)
                    if violation is not None:
                        violations.append(violation)
        return violations

    # ------------------------------------------------------------------
    # Batch (set-oriented) checking
    # ------------------------------------------------------------------

    def _affected_instances(self, prop: Proposition) -> Set[str]:
        if prop.is_individual:
            return {prop.pid}
        affected = {prop.source}
        if not prop.is_instanceof and not prop.is_isa:
            affected.add(prop.destination)
        return affected

    def check_batch(self, props: Iterable[Proposition]) -> List[Violation]:
        """Check the instances affected by a batch of new propositions.

        Set-oriented mode deduplicates (constraint, instance) pairs over
        the whole batch; the naive mode evaluates per proposition, doing
        redundant work proportional to batch overlap.
        """
        props = list(props)
        evals_before = self.stats.evaluations
        skipped_before = self.stats.skipped
        with self.tracer.span(
            "consistency.check_batch",
            props=len(props), set_oriented=self.set_oriented,
        ) as span:
            violations = self._check_batch(props)
            span.set(violations=len(violations),
                     evaluations=self.stats.evaluations - evals_before,
                     skipped=self.stats.skipped - skipped_before)
        return violations

    def _check_batch(self, props: List[Proposition]) -> List[Violation]:
        self.stats.batches += 1
        if self.set_oriented:
            affected: Set[str] = set()
            structural = False
            touched_labels: Set[str] = set()
            for prop in props:
                affected |= self._affected_instances(prop)
                if prop.is_link and not prop.is_instanceof and not prop.is_isa:
                    touched_labels.add(prop.label)
                else:
                    structural = True
            closed_labels = None
            if self.use_relevance and not structural:
                self._refresh_label_deps()
                closed_labels = self.relevance.closed_labels(touched_labels)
            seen: Set[Tuple[str, Optional[str]]] = set()
            violations: List[Violation] = []
            for instance in sorted(affected):
                if not self.processor.exists(instance):
                    continue
                self.stats.instances_checked += 1
                for cls in sorted(self.processor.classes_of(instance)):
                    for definition in self._by_class_direct(cls):
                        subject = instance if definition.per_instance else None
                        key = (definition.name, subject)
                        if key in seen:
                            continue
                        seen.add(key)
                        if self.use_relevance and not self.relevance.relevant(
                            definition.name, closed_labels, structural
                        ):
                            self.stats.skipped += 1
                            continue
                        violation = self._evaluate(definition, subject)
                        if violation is not None:
                            violations.append(violation)
            return violations
        violations = []
        for prop in props:
            for instance in sorted(self._affected_instances(prop)):
                if self.processor.exists(instance):
                    violations.extend(self.check_instance(instance))
        return violations

    # ------------------------------------------------------------------
    # Commit hook
    # ------------------------------------------------------------------

    def install_hook(self, raise_on_violation: bool = True) -> None:
        """Verify every committed telling as one batch."""

        def listener(props: List[Proposition]) -> None:
            violations = self.check_batch(props)
            if violations and raise_on_violation:
                raise ConsistencyError(
                    violations[0].constraint, violations
                )

        self.processor.on_commit(listener)
