"""Consistency checking (S6).

Section 3.1: "After executing a decision, the knowledge base must be in
a consistent state (satisfying all the axioms of CML and the constraints
imposed on certain objects in the knowledge base).  This is verified by
a Consistency Checker [...] Since a whole set of operations is passed to
the proposition processor, set-oriented optimization of the consistency
check is being studied."

:class:`~repro.consistency.checker.ConsistencyChecker` attaches
first-order constraints (assertion-language expressions) to classes as
*constraint propositions*, checks instances against them — per updated
proposition, or set-oriented over a whole batch — and can hook into the
processor's commit path so every telling is verified as a unit.
"""

from repro.consistency.checker import (
    ConsistencyChecker,
    ConstraintDef,
    Violation,
)

__all__ = ["ConsistencyChecker", "ConstraintDef", "Violation"]
