"""The conceptual model processor (S8).

Section 3.1: "the Conceptual Model Processor uses the object processor
to combine tools for the manipulation of models which consist of all
objects relevant to an application of ConceptBase [...]  Models
constitute highly complex multi-level object structures which are
maintained in hierarchies.  Different models may share some objects or
(sub-)models.  Configuring a model for a specific application means the
activation of the corresponding nodes in the lattice."

- :mod:`repro.models.model` — the model lattice over workspaces;
- :mod:`repro.models.display` — the Model Display and Interaction
  module of section 3.3.1: text DAG browser, graphical DAG browser,
  relational display and CML form editing;
- :mod:`repro.models.interaction` — focusing, zooming and hierarchical
  context menus driven by a pluggable tool selector.
"""

from repro.models.model import Model, ModelBase
from repro.models.display.text_dag import TextDAGBrowser
from repro.models.display.graph_dag import GraphDAGRenderer
from repro.models.display.relational_display import RelationalDisplay
from repro.models.display.forms import FormEditor, FormView
from repro.models.interaction import Browser, MenuItem

__all__ = [
    "Model",
    "ModelBase",
    "TextDAGBrowser",
    "GraphDAGRenderer",
    "RelationalDisplay",
    "FormEditor",
    "FormView",
    "Browser",
    "MenuItem",
]
