"""CML form editor (section 3.3.1).

"This display is associated with a CML form editor, to interact with
the knowledge base and to work with CML code frames."

:class:`FormView` snapshots one object as editable fields;
:class:`FormEditor` applies the edited form back to the knowledge base
as a minimal diff (adds and retracts only what changed), which is the
form-based counterpart of the object transformer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.errors import PropositionError
from repro.objects.object_processor import ObjectProcessor


@dataclass
class FormView:
    """An editable snapshot of one object's attributes."""

    name: str
    in_classes: List[str]
    isa: List[str]
    fields: Dict[str, Set[str]]  # label -> value set

    def set_field(self, label: str, values: Set[str]) -> None:
        """Replace a field's value set."""
        self.fields[label] = set(values)

    def add_value(self, label: str, value: str) -> None:
        """Add one value to a field."""
        self.fields.setdefault(label, set()).add(value)

    def remove_value(self, label: str, value: str) -> None:
        """Remove one value from a field."""
        if label in self.fields:
            self.fields[label].discard(value)

    def render(self) -> str:
        """Plain-text form rendering."""
        lines = [f"== {self.name} =="]
        lines.append("in:  " + ", ".join(sorted(self.in_classes)))
        if self.isa:
            lines.append("isa: " + ", ".join(sorted(self.isa)))
        for label in sorted(self.fields):
            values = ", ".join(sorted(self.fields[label])) or "-"
            lines.append(f"{label:>12}: {values}")
        return "\n".join(lines)


class FormEditor:
    """Loads and saves form views against the knowledge base."""

    def __init__(self, objects: ObjectProcessor) -> None:
        self.objects = objects

    def load(self, name: str) -> FormView:
        """Snapshot an object into an editable form."""
        if not self.objects.exists(name):
            raise PropositionError(f"unknown object {name!r}")
        frame = self.objects.ask(name)
        fields: Dict[str, Set[str]] = {}
        for decl in frame.attributes:
            fields.setdefault(decl.label, set()).add(decl.target)
        return FormView(
            name=name,
            in_classes=list(frame.in_classes),
            isa=list(frame.isa),
            fields=fields,
        )

    def diff(self, form: FormView) -> Tuple[List[Tuple[str, str]], List[str]]:
        """(additions as (label, value), retractions as pids)."""
        proc = self.objects.propositions
        current: Dict[Tuple[str, str], str] = {}
        for prop in proc.attributes_of(form.name):
            current[(prop.label, prop.destination)] = prop.pid
        wanted: Set[Tuple[str, str]] = {
            (label, value)
            for label, values in form.fields.items()
            for value in values
        }
        additions = sorted(wanted - set(current))
        retractions = [current[key] for key in sorted(set(current) - wanted)]
        return additions, retractions

    def save(self, form: FormView) -> Dict[str, int]:
        """Apply the form as a minimal diff; returns change counts."""
        proc = self.objects.propositions
        additions, retractions = self.diff(form)
        for pid in retractions:
            proc.retract(pid)
        for label, value in additions:
            proc.tell_link(form.name, label, value)
        return {"added": len(additions), "retracted": len(retractions)}
