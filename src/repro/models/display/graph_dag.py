"""Graphical DAG browser (figs 2-2 to 2-4).

"A graphical DAG browser offers a graphical representation of the same
kinds of data structures as the text browser.  A simple standard layout
is offered but can be changed by the user in a persistent way."

The renderer works over any directed graph given as labelled edges.  It
emits Graphviz DOT (the "graphical representation") and a deterministic
ASCII listing grouped by layer (the "simple standard layout": a
longest-path layering).  User layout overrides — explicit node
positions — persist on the instance and survive re-rendering, which is
the paper's persistent user layout.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

Edge = Tuple[str, str, str]  # (source, label, destination)


@dataclass
class GraphDAGRenderer:
    """Renders labelled digraphs as DOT and layered ASCII."""

    edges: List[Edge] = field(default_factory=list)
    highlight: set = field(default_factory=set)
    _positions: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    # -- construction ------------------------------------------------------

    def add_edge(self, source: str, label: str, destination: str) -> None:
        """Add a labelled edge once."""
        edge = (source, label, destination)
        if edge not in self.edges:
            self.edges.append(edge)

    def extend(self, edges: Iterable[Edge]) -> None:
        """Add many labelled edges."""
        for source, label, destination in edges:
            self.add_edge(source, label, destination)

    def nodes(self) -> List[str]:
        """Node names in first-appearance order."""
        seen: Dict[str, None] = {}
        for source, _label, destination in self.edges:
            seen.setdefault(source, None)
            seen.setdefault(destination, None)
        return list(seen)

    # -- persistent user layout ------------------------------------------

    def place(self, node: str, x: int, y: int) -> None:
        """Persistently override a node's position."""
        self._positions[node] = (x, y)

    def position(self, node: str) -> Optional[Tuple[int, int]]:
        """The pinned position of a node, if any."""
        return self._positions.get(node)

    # -- layering (the standard layout) -------------------------------------

    def layers(self) -> List[List[str]]:
        """Longest-path layering; cycles fall back to discovery order."""
        successors: Dict[str, List[str]] = defaultdict(list)
        indegree: Dict[str, int] = defaultdict(int)
        nodes = self.nodes()
        for source, _label, destination in self.edges:
            successors[source].append(destination)
            indegree[destination] += 1
        level: Dict[str, int] = {}
        queue = [n for n in nodes if indegree[n] == 0]
        for node in queue:
            level[node] = 0
        remaining = dict(indegree)
        index = 0
        while index < len(queue):
            node = queue[index]
            index += 1
            for succ in successors[node]:
                level[succ] = max(level.get(succ, 0), level[node] + 1)
                remaining[succ] -= 1
                if remaining[succ] == 0:
                    queue.append(succ)
        for node in nodes:  # cycle members: put after everything known
            level.setdefault(node, max(level.values(), default=0) + 1)
        grouped: Dict[int, List[str]] = defaultdict(list)
        for node in nodes:
            grouped[level[node]].append(node)
        return [sorted(grouped[lvl]) for lvl in sorted(grouped)]

    # -- output --------------------------------------------------------------

    def to_dot(self, name: str = "dependencies") -> str:
        """Graphviz DOT with labels, highlights and pinned positions."""
        lines = [f"digraph {name} {{", "  rankdir=TB;"]
        for node in self.nodes():
            attrs = []
            if node in self.highlight:
                attrs.append('style=filled fillcolor="lightyellow"')
            if node in self._positions:
                x, y = self._positions[node]
                attrs.append(f'pos="{x},{y}!"')
            attr_text = f" [{' '.join(attrs)}]" if attrs else ""
            lines.append(f'  "{node}"{attr_text};')
        for source, label, destination in self.edges:
            lines.append(f'  "{source}" -> "{destination}" [label="{label}"];')
        lines.append("}")
        return "\n".join(lines)

    def to_ascii(self) -> str:
        """Layered listing plus labelled adjacency (deterministic)."""
        lines: List[str] = []
        for index, layer in enumerate(self.layers()):
            rendered = [
                f"[{node}]" if node in self.highlight else node for node in layer
            ]
            lines.append(f"layer {index}: " + "  ".join(rendered))
        lines.append("")
        for source, label, destination in sorted(self.edges):
            lines.append(f"{source} --{label}--> {destination}")
        return "\n".join(lines)

    def neighbours(self, node: str) -> Dict[str, List[Tuple[str, str]]]:
        """Incoming/outgoing labelled edges of ``node`` (for zooming)."""
        out: Dict[str, List[Tuple[str, str]]] = {"out": [], "in": []}
        for source, label, destination in self.edges:
            if source == node:
                out["out"].append((label, destination))
            if destination == node:
                out["in"].append((label, source))
        return out
