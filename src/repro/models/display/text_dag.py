"""Text DAG browser (fig 2-1).

"A text DAG browser allows the display and browsing of a tree-like CML
structure at a dynamically defined depth and width.  Basically, it
consists of a recursively embedded set of windows, each variable in
size and endowed with a scrolling facility."

The browser walks a *children function* (e.g. specializations of a
class, unmapped objects of a design) from a focus object, bounded by
``depth`` and ``width``; per-node scrolling is modelled by an offset
into the children list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

ChildrenFn = Callable[[str], Sequence[str]]


@dataclass
class TextDAGBrowser:
    """Bounded tree rendering with per-node scrolling."""

    children: ChildrenFn
    depth: int = 3
    width: int = 8
    label: Callable[[str], str] = staticmethod(lambda name: name)
    _offsets: Dict[str, int] = field(default_factory=dict)

    # -- interaction -----------------------------------------------------

    def scroll(self, node: str, offset: int) -> None:
        """Scroll the window of ``node`` to start at child ``offset``."""
        self._offsets[node] = max(0, offset)

    def zoom(self, depth: int | None = None, width: int | None = None) -> None:
        """Dynamically change the displayed depth/width."""
        if depth is not None:
            self.depth = max(1, depth)
        if width is not None:
            self.width = max(1, width)

    # -- rendering -------------------------------------------------------

    def visible_children(self, node: str) -> Tuple[List[str], int]:
        """The window of ``node``: visible children + number hidden."""
        all_children = list(self.children(node))
        offset = self._offsets.get(node, 0)
        window = all_children[offset:offset + self.width]
        hidden = len(all_children) - len(window)
        return window, hidden

    def render(self, focus: str) -> str:
        """Indented tree from ``focus``, honouring depth/width/offsets."""
        lines: List[str] = []
        self._render_node(focus, 0, lines, seen=set())
        return "\n".join(lines)

    def _render_node(self, node: str, level: int, lines: List[str], seen: set) -> None:
        indent = "  " * level
        marker = "* " if level == 0 else "- "
        suffix = ""
        if node in seen:
            lines.append(f"{indent}{marker}{self.label(node)} (...)")
            return
        lines.append(f"{indent}{marker}{self.label(node)}{suffix}")
        if level >= self.depth:
            if list(self.children(node)):
                lines.append(f"{indent}  [+{len(list(self.children(node)))} below]")
            return
        seen = seen | {node}
        window, hidden = self.visible_children(node)
        for child in window:
            self._render_node(child, level + 1, lines, seen)
        if hidden > 0:
            lines.append(f"{indent}  [{hidden} more...]")

    def flatten(self, focus: str) -> List[str]:
        """All nodes reachable within the current depth (for tests and
        for the menu builder)."""
        out: List[str] = []

        def walk(node: str, level: int, seen: frozenset) -> None:
            if node in seen:
                return
            out.append(node)
            if level >= self.depth:
                return
            window, _hidden = self.visible_children(node)
            for child in window:
                walk(child, level + 1, seen | {node})

        walk(focus, 0, frozenset())
        return out
