"""Relational display (section 3.3.1).

"A relational display shows the properties of objects in tabular form
with variable column width and scrolling (thus corresponding to the
Object Processor level in fig 3-1); the extension to a non-first normal
form display of complex objects is underway."

Both forms are provided: first-normal-form (set cells exploded into
several rows) and NF2 (set cells shown inline), with per-column width
control and row scrolling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.obs.tracing import get_tracer
from repro.objects.relational import RelationalView


def _clip(text: str, width: int) -> str:
    if len(text) <= width:
        return text.ljust(width)
    if width <= 1:
        return text[:width]
    return text[: width - 1] + "~"


@dataclass
class RelationalDisplay:
    """Scrollable tabular rendering of a class relation."""

    view: RelationalView
    default_width: int = 16
    column_widths: Dict[str, int] = field(default_factory=dict)
    offset: int = 0
    page_size: int = 20

    def set_column_width(self, column: str, width: int) -> None:
        """Variable column width (>=1)."""
        self.column_widths[column] = max(1, width)

    def scroll_to(self, offset: int) -> None:
        """Move the visible row window."""
        self.offset = max(0, offset)

    def page(self, cls: str) -> List[Tuple]:
        """The currently visible rows."""
        rows = self.view.rows(cls)
        return rows[self.offset:self.offset + self.page_size]

    def _width(self, column: str) -> int:
        return self.column_widths.get(column, self.default_width)

    def render(self, cls: str, first_normal_form: bool = False) -> str:
        """Render the visible page of the class relation.

        With ``first_normal_form`` set, a row with set-valued cells is
        exploded into one row per combination member (padding with
        blanks), which is how a 1NF display must show them; the default
        NF2 display keeps value sets inline as ``{a,b}``.
        """
        with get_tracer().span(
            "models.display", cls=cls, form="1nf" if first_normal_form else "nf2"
        ) as span:
            schema = self.view.schema(cls)
            heading = [("object", self._width("object"))]
            heading += [(c, self._width(c)) for c in schema.columns]
            lines = [" | ".join(_clip(name, width) for name, width in heading)]
            lines.append("-+-".join("-" * width for _name, width in heading))
            rows = self.page(cls)
            for row in rows:
                if first_normal_form:
                    lines.extend(self._explode(row, heading))
                else:
                    cells = [row[0]] + [
                        "{" + ",".join(sorted(v)) + "}" if v else "-"
                        for v in row[1:]
                    ]
                    lines.append(
                        " | ".join(
                            _clip(str(cell), width)
                            for cell, (_name, width) in zip(cells, heading)
                        )
                    )
            span.set(rows=len(rows))
        return "\n".join(lines)

    def _explode(self, row: Tuple, heading: List[Tuple[str, int]]) -> List[str]:
        columns = [sorted(v) if v else ["-"] for v in row[1:]]
        height = max((len(c) for c in columns), default=1)
        out = []
        for line_index in range(height):
            cells = [row[0] if line_index == 0 else ""]
            for column in columns:
                cells.append(column[line_index] if line_index < len(column) else "")
            out.append(
                " | ".join(
                    _clip(str(cell), width)
                    for cell, (_name, width) in zip(cells, heading)
                )
            )
        return out
