"""The Model Display and Interaction module (section 3.3.1).

Four window-oriented interface tools re-implemented as text renderers:

- :class:`~repro.models.display.text_dag.TextDAGBrowser` — "allows the
  display and browsing of a tree-like CML structure at a dynamically
  defined depth and width" (fig 2-1);
- :class:`~repro.models.display.graph_dag.GraphDAGRenderer` — "offers a
  graphical representation of the same kinds of data structures",
  emitting DOT and ASCII adjacency with user-persistent layout
  (figs 2-2 to 2-4);
- :class:`~repro.models.display.relational_display.RelationalDisplay`
  — "shows the properties of objects in tabular form with variable
  column width and scrolling";
- :class:`~repro.models.display.forms.FormEditor` — the CML form editor
  "to interact with the knowledge base and to work with CML code
  frames".
"""

from repro.models.display.text_dag import TextDAGBrowser
from repro.models.display.graph_dag import GraphDAGRenderer
from repro.models.display.relational_display import RelationalDisplay
from repro.models.display.forms import FormEditor, FormView

__all__ = [
    "TextDAGBrowser",
    "GraphDAGRenderer",
    "RelationalDisplay",
    "FormEditor",
    "FormView",
]
