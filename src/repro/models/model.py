"""Model lattice and configuration.

A *model* names a coherent set of objects (e.g. "the GKBMS", "the
meeting world model").  Models form a lattice: a model may include
sub-models, and different models may share sub-models.  Each model is
backed by a workspace of the partitioned proposition store, so
*activating* a configuration makes exactly its objects visible to the
proposition processor — the paper's "activation of the corresponding
nodes in the lattice".

Only a main-memory version existed in the prototype ("to date, only a
simple main memory version of this component has been implemented"),
which is also what we provide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.errors import ModelError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer, get_tracer
from repro.propositions.processor import PropositionProcessor
from repro.propositions.store import WorkspaceStore


@dataclass
class Model:
    """A node in the model lattice."""

    name: str
    submodels: List[str] = field(default_factory=list)
    description: str = ""

    def __repr__(self) -> str:
        return f"Model({self.name!r}, submodels={self.submodels})"


class ModelBase:
    """Manages the model lattice over a workspace-partitioned base.

    Usage::

        base = ModelBase()
        base.define_model("world")
        base.define_model("system", submodels=["world"])
        with base.in_model("world"):
            base.processor.tell_individual("Meeting", ...)
        base.configure(["system"])     # world activated transitively
    """

    def __init__(self, processor: Optional[PropositionProcessor] = None,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None) -> None:
        if processor is None:
            processor = PropositionProcessor(
                store=WorkspaceStore(registry=registry), registry=registry
            )
        store = processor.store
        if not isinstance(store, WorkspaceStore):
            raise ModelError("ModelBase requires a WorkspaceStore-backed processor")
        self.processor = processor
        self.store: WorkspaceStore = store
        self.registry = registry if registry is not None else processor.registry
        self._metrics = self.registry.namespace("models")
        self._c_configurations = self._metrics.counter("configurations")
        self._c_definitions = self._metrics.counter("definitions")
        self._tracer = tracer
        self._models: Dict[str, Model] = {}

    @property
    def tracer(self) -> Tracer:
        """The model base's tracer (falls back to the process default)."""
        return self._tracer if self._tracer is not None else get_tracer()

    def set_tracer(self, tracer: Optional[Tracer]) -> None:
        """Pin a tracer for this model base (``None`` = process default)."""
        self._tracer = tracer

    # ------------------------------------------------------------------
    # Lattice construction
    # ------------------------------------------------------------------

    def define_model(self, name: str, submodels: Iterable[str] = (),
                     description: str = "") -> Model:
        """Add a lattice node backed by a workspace."""
        if name in self._models:
            raise ModelError(f"model {name!r} already defined")
        submodels = list(submodels)
        for sub in submodels:
            if sub not in self._models:
                raise ModelError(f"unknown submodel {sub!r}")
        model = Model(name, submodels, description)
        self._models[name] = model
        self.store.add_workspace(name, active=True)
        self._c_definitions.inc()
        return model

    def add_submodel(self, name: str, submodel: str) -> None:
        """Nest an existing model (cycle-checked)."""
        model = self.get(name)
        if submodel not in self._models:
            raise ModelError(f"unknown submodel {submodel!r}")
        if name in self.closure([submodel]):
            raise ModelError(
                f"adding {submodel!r} under {name!r} would create a cycle"
            )
        if submodel not in model.submodels:
            model.submodels.append(submodel)

    def get(self, name: str) -> Model:
        """Look a model up by name."""
        try:
            return self._models[name]
        except KeyError:
            raise ModelError(f"unknown model {name!r}") from None

    def models(self) -> List[str]:
        """All model names."""
        return list(self._models)

    def closure(self, names: Iterable[str]) -> Set[str]:
        """The given models plus all transitive submodels."""
        result: Set[str] = set()
        frontier = list(names)
        while frontier:
            current = frontier.pop()
            if current in result:
                continue
            result.add(current)
            frontier.extend(self.get(current).submodels)
        return result

    def sharing(self, left: str, right: str) -> Set[str]:
        """Sub-models shared between two models."""
        return self.closure([left]) & self.closure([right])

    # ------------------------------------------------------------------
    # Population and configuration
    # ------------------------------------------------------------------

    def in_model(self, name: str) -> "_ModelScope":
        """Context manager: new propositions go into model ``name``."""
        self.get(name)
        return _ModelScope(self, name)

    def objects_of(self, name: str, transitive: bool = True) -> Set[str]:
        """pids stored in a model (optionally plus submodels)."""
        names = self.closure([name]) if transitive else {name}
        pids: Set[str] = set()
        for prop in self.store:
            try:
                space = self.store.workspace_of(prop.pid)
            except Exception:
                continue
            if space in names:
                pids.add(prop.pid)
        return pids

    def configure(self, names: Iterable[str]) -> Set[str]:
        """Activate exactly the given models (plus transitive submodels
        and the system kernel); returns the active set."""
        names = list(names)
        with self.tracer.span("models.configure", requested=len(names)) as span:
            active = self.closure(names)
            for model in self._models:
                if model in active:
                    self.store.activate(model)
                else:
                    self.store.deactivate(model)
            self._c_configurations.inc()
            span.set(active=len(active), defined=len(self._models))
        return active

    def activate_all(self) -> None:
        """Make every model visible."""
        for model in self._models:
            self.store.activate(model)

    def active_models(self) -> List[str]:
        """Currently visible models."""
        return [
            m for m in self._models
            if m in self.store.workspaces() and self._is_active(m)
        ]

    def _is_active(self, name: str) -> bool:
        return self.store._active.get(name, False)


class _ModelScope:
    """Directs new propositions into one model's workspace."""

    def __init__(self, base: ModelBase, name: str) -> None:
        self._base = base
        self._name = name
        self._previous: Optional[str] = None

    def __enter__(self) -> "_ModelScope":
        self._previous = self._base.store._current
        self._base.store.set_current(self._name)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._base.store.set_current(self._previous or WorkspaceStore.DEFAULT)
