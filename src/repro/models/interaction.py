"""Focusing, zooming and hierarchical context menus (section 3.3.1).

"Focusing in any of these structures is done by mouse selection;
hierarchical menus with context-dependent content are used for tool
selection [...]  A dialog manager with improved error handling and
recovery facilities is under construction."

:class:`Browser` keeps a focus object and a navigation history, renders
hierarchical menus produced by a pluggable *menu provider* (the GKBMS's
tool selector plugs in here, fig 2-6), and recovers from failing menu
actions by restoring the previous focus — the "improved error handling
and recovery" the paper promises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.errors import ModelError


@dataclass(frozen=True)
class MenuItem:
    """One entry of a context menu; ``action`` runs on selection."""

    title: str
    action: Optional[Callable[[], object]] = None
    submenu: tuple = ()

    def is_leaf(self) -> bool:
        """No submenu?"""
        return not self.submenu


MenuProvider = Callable[[str], Sequence[MenuItem]]


@dataclass
class Browser:
    """Focus + history + context menus over any object space."""

    menu_provider: MenuProvider
    exists: Callable[[str], bool] = staticmethod(lambda name: True)
    _focus: Optional[str] = None
    _history: List[str] = field(default_factory=list)

    @property
    def focus(self) -> Optional[str]:
        """The currently selected object."""
        return self._focus

    @property
    def history(self) -> List[str]:
        """Previously focused objects, oldest first."""
        return list(self._history)

    def focus_on(self, name: str) -> None:
        """Select an object (the mouse click of fig 2-1)."""
        if not self.exists(name):
            raise ModelError(f"cannot focus on unknown object {name!r}")
        if self._focus is not None:
            self._history.append(self._focus)
        self._focus = name

    def back(self) -> Optional[str]:
        """Return to the previously focused object."""
        if not self._history:
            return None
        self._focus = self._history.pop()
        return self._focus

    def menu(self) -> List[MenuItem]:
        """Context-dependent menu for the current focus."""
        if self._focus is None:
            return []
        return list(self.menu_provider(self._focus))

    def render_menu(self) -> str:
        """Hierarchical menu rendering (cf fig 2-1's nested menus)."""
        lines: List[str] = [f"menu for {self._focus}:"]

        def walk(items: Sequence[MenuItem], level: int) -> None:
            for item in items:
                lines.append("  " * level + f"- {item.title}")
                walk(item.submenu, level + 1)

        walk(self.menu(), 1)
        return "\n".join(lines)

    def select(self, path: Sequence[str]) -> object:
        """Run the action reached by a path of menu titles; on failure
        the focus is restored (error recovery)."""
        items: Sequence[MenuItem] = self.menu()
        chosen: Optional[MenuItem] = None
        for title in path:
            chosen = next((i for i in items if i.title == title), None)
            if chosen is None:
                raise ModelError(f"no menu entry {title!r} under {self._focus!r}")
            items = chosen.submenu
        if chosen is None or chosen.action is None:
            raise ModelError(f"menu path {list(path)} has no action")
        saved_focus, saved_history = self._focus, list(self._history)
        try:
            return chosen.action()
        except Exception:
            self._focus, self._history = saved_focus, saved_history
            raise
