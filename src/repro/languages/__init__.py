"""DAIDA language substrates (S9).

The paper's architecture (section 1, point (1)) rests on three
"life-cycle oriented levels of representation":

- **CML** for requirements/world modelling — implemented by the
  ConceptBase kernel itself (:mod:`repro.propositions`,
  :mod:`repro.objects`);
- **TaxisDL** for conceptual design — :mod:`repro.languages.taxisdl`:
  entity classes in generalization hierarchies, (set-valued)
  attributes, keys, declarative transaction classes and scripts;
- **DBPL** for implementation — :mod:`repro.languages.dbpl`:
  relations, selectors (integrity constraints), constructors (views)
  and database transactions, with the code-frame printer used by the
  figures and an executable semantics in :mod:`repro.dbpl_engine`.
"""

from repro.languages.taxisdl.ast import (
    TDLAttribute,
    TDLEntityClass,
    TDLModel,
    TDLScript,
    TDLTransactionClass,
)
from repro.languages.taxisdl.parser import parse_taxisdl
from repro.languages.dbpl.ast import (
    ConstructorDecl,
    DBPLModule,
    Field,
    ForeignKey,
    Join,
    Project,
    RelationDecl,
    RelationRef,
    Rename,
    Select,
    SelectorDecl,
    TransactionDecl,
    Union,
)
from repro.languages.dbpl.printer import print_module, print_relation

__all__ = [
    "TDLAttribute",
    "TDLEntityClass",
    "TDLModel",
    "TDLScript",
    "TDLTransactionClass",
    "parse_taxisdl",
    "ConstructorDecl",
    "DBPLModule",
    "Field",
    "ForeignKey",
    "Join",
    "Project",
    "RelationDecl",
    "RelationRef",
    "Rename",
    "Select",
    "SelectorDecl",
    "TransactionDecl",
    "Union",
    "print_module",
    "print_relation",
]
