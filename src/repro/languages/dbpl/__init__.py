"""DBPL: the database programming language level (S9).

"The database programming language DBPL [ECKH85], a successor to
Pascal/R [SCHM77], for implementation design and programming."

The scenario of section 2.1 maps TaxisDL designs to four kinds of DBPL
objects, all modelled here:

- **relations** (``RelationDecl``) with typed fields and keys;
- **selectors** (``SelectorDecl``) — named integrity constraints, e.g.
  the referential-integrity selector ``InvitationsPaperIC`` created by
  the normalisation decision;
- **constructors** (``ConstructorDecl``) — named views over a small
  relational algebra, e.g. ``ConsInvitation`` reconstructing the
  unnormalised invitation relation;
- **transactions** (``TransactionDecl``) — parameterised update
  programs.

:mod:`repro.languages.dbpl.printer` renders the code frames shown in
figs 2-2 to 2-4; :mod:`repro.dbpl_engine` executes them.
"""

from repro.languages.dbpl.ast import (
    ConstructorDecl,
    DBPLModule,
    Field,
    ForeignKey,
    Join,
    Predicate,
    Project,
    RelationDecl,
    RelationRef,
    Rename,
    Select,
    SelectorDecl,
    TransactionDecl,
    Union,
)
from repro.languages.dbpl.printer import (
    print_constructor,
    print_module,
    print_relation,
    print_selector,
    print_transaction,
)
from repro.languages.dbpl.parser import parse_dbpl

__all__ = [
    "ConstructorDecl",
    "DBPLModule",
    "Field",
    "ForeignKey",
    "Join",
    "Predicate",
    "Project",
    "RelationDecl",
    "RelationRef",
    "Rename",
    "Select",
    "SelectorDecl",
    "TransactionDecl",
    "Union",
    "print_constructor",
    "print_module",
    "print_relation",
    "print_selector",
    "print_transaction",
    "parse_dbpl",
]
