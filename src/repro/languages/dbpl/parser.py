"""Parser for the DBPL subset (round-trips with the printer).

Accepted forms (semicolons terminate declarations)::

    DATABASE MODULE Meetings;
    InvitationRel = RELATION
      paperkey : Surrogate,
      sender : Person
    OF InvitationType KEY paperkey;
    SELECTOR InvIC ON InvReceivRel (paperkey) REFERENCES InvitationRel (paperkey);
    SELECTOR NonEmpty ON InvitationRel CHECK (sender != '');
    CONSTRUCTOR ConsInvitation AS JOIN InvitationRel, InvReceivRel ON paperkey;
    TRANSACTION AddInvitation(inv : Invitation)
    BEGIN
      INSERT InvitationRel;
    END;
    END Meetings.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.errors import LanguageError
from repro.languages.dbpl.ast import (
    AlgebraExpr,
    ConstructorDecl,
    DBPLModule,
    Field,
    ForeignKey,
    Join,
    Predicate,
    Project,
    RelationDecl,
    RelationRef,
    Rename,
    Select,
    SelectorDecl,
    TransactionDecl,
    TransactionOp,
    Union,
)

_MODULE_RE = re.compile(r"^DATABASE\s+MODULE\s+(\w+)\s*;", re.IGNORECASE)
_END_RE = re.compile(r"^END\s+(\w+)\s*\.\s*$", re.IGNORECASE)
_RELATION_RE = re.compile(
    r"^(?P<name>\w+)\s*=\s*RELATION\s+(?P<fields>.*?)\s*"
    r"(?:OF\s+(?P<of>\w+)\s+)?KEY\s+(?P<key>\w+(?:\s*,\s*\w+)*)\s*;$",
    re.IGNORECASE | re.DOTALL,
)
_FK_SELECTOR_RE = re.compile(
    r"^SELECTOR\s+(?P<name>\w+)\s+ON\s+(?P<rel>\w+)\s*"
    r"\((?P<cols>[\w\s,]+)\)\s*REFERENCES\s+(?P<target>\w+)\s*"
    r"\((?P<tcols>[\w\s,]+)\)\s*;$",
    re.IGNORECASE,
)
_CHECK_SELECTOR_RE = re.compile(
    r"^SELECTOR\s+(?P<name>\w+)\s+ON\s+(?P<rel>\w+)\s+CHECK\s*"
    r"\((?P<pred>.+)\)\s*;$",
    re.IGNORECASE,
)
_CONSTRUCTOR_RE = re.compile(
    r"^CONSTRUCTOR\s+(?P<name>\w+)\s+AS\s+(?P<expr>.+?)\s*;$",
    re.IGNORECASE | re.DOTALL,
)
_TRANSACTION_RE = re.compile(
    r"^TRANSACTION\s+(?P<name>\w+)\s*\((?P<params>[^)]*)\)\s*"
    r"BEGIN\s*(?P<body>.*?)\s*END\s*;$",
    re.IGNORECASE | re.DOTALL,
)


def _split_names(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _parse_fields(text: str) -> List[Field]:
    fields = []
    for part in _split_names(text):
        if ":" in part:
            name, type_name = (p.strip() for p in part.split(":", 1))
        else:
            name, type_name = part, "STRING"
        fields.append(Field(name, type_name))
    return fields


def _strip_outer_parens(text: str) -> str:
    """Remove one or more pairs of enclosing parentheses."""
    text = text.strip()
    while text.startswith("(") and text.endswith(")"):
        depth = 0
        balanced = True
        for index, char in enumerate(text):
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
                if depth == 0 and index != len(text) - 1:
                    balanced = False
                    break
        if not balanced:
            break
        text = text[1:-1].strip()
    return text


def _find_keyword(text: str, keyword: str) -> int:
    """Offset of the *last* top-level (depth-0) occurrence of
    `` keyword `` in ``text``, or -1."""
    needle = f" {keyword.upper()} "
    upper = text.upper()
    depth = 0
    found = -1
    for index, char in enumerate(text):
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        elif depth == 0 and upper.startswith(needle, index):
            found = index
    return found


def parse_algebra(text: str) -> AlgebraExpr:
    """Parse a constructor body (prefix keywords; composite operands may
    be parenthesised, which is how the printer emits them)."""
    text = _strip_outer_parens(text)
    upper = text.upper()
    if upper.startswith("JOIN "):
        body = text[5:]
        on_at = _find_keyword(body, "ON")
        if on_at < 0:
            raise LanguageError(f"missing ON clause in {body!r}")
        left, right = _split_two(body[:on_at])
        on = _split_names(body[on_at + 4:])
        return Join(parse_algebra(left), parse_algebra(right), tuple(on))
    if upper.startswith("UNION "):
        left, right = _split_two(text[6:])
        return Union(parse_algebra(left), parse_algebra(right))
    if upper.startswith("PROJECT "):
        body = text[8:]
        on_at = _find_keyword(body, "ON")
        if on_at < 0:
            raise LanguageError(f"missing ON clause in {body!r}")
        return Project(
            parse_algebra(body[:on_at]),
            tuple(_split_names(body[on_at + 4:])),
        )
    if upper.startswith("SELECT "):
        body = text[7:]
        where_at = _find_keyword(body, "WHERE")
        if where_at < 0:
            raise LanguageError(f"bad SELECT body: {body!r}")
        equalities = []
        conditions = body[where_at + len(" WHERE "):]
        for cond in re.split(r"\s+AND\s+", conditions, flags=re.IGNORECASE):
            eq_match = re.match(r"^\s*(\w+)\s*=\s*'([^']*)'\s*$", cond)
            if eq_match is None:
                raise LanguageError(f"bad SELECT condition: {cond!r}")
            equalities.append((eq_match.group(1), eq_match.group(2)))
        return Select(parse_algebra(body[:where_at]), tuple(equalities))
    if upper.startswith("RENAME "):
        body = text[7:].rstrip()
        if not body.endswith(")"):
            raise LanguageError(f"bad RENAME body: {body!r}")
        depth = 0
        open_at = -1
        for index in range(len(body) - 1, -1, -1):
            if body[index] == ")":
                depth += 1
            elif body[index] == "(":
                depth -= 1
                if depth == 0:
                    open_at = index
                    break
        if open_at < 0:
            raise LanguageError(f"bad RENAME body: {body!r}")
        mapping = []
        for pair in _split_names(body[open_at + 1:-1]):
            pair_match = re.match(r"^(\w+)\s+AS\s+(\w+)$", pair, re.IGNORECASE)
            if pair_match is None:
                raise LanguageError(f"bad RENAME pair: {pair!r}")
            mapping.append((pair_match.group(1), pair_match.group(2)))
        return Rename(parse_algebra(body[:open_at]), tuple(mapping))
    if re.match(r"^\w+$", text):
        return RelationRef(text)
    raise LanguageError(f"unparseable algebra expression: {text!r}")


def _split_two(text: str) -> Tuple[str, str]:
    """Split two comma-separated sub-expressions at depth zero."""
    depth = 0
    for index, char in enumerate(text):
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        elif char == "," and depth == 0:
            return text[:index].strip(), text[index + 1:].strip()
    raise LanguageError(f"expected two comma-separated operands in {text!r}")


def _declarations(text: str) -> List[str]:
    """Split module body into declaration chunks ending with ';'.

    Transactions contain inner semicolons, so BEGIN...END; blocks are
    kept whole.
    """
    chunks: List[str] = []
    buffer: List[str] = []
    in_transaction = False
    for raw in text.splitlines():
        line = raw.split("--", 1)[0].rstrip()
        if not line.strip():
            continue
        stripped = line.strip()
        buffer.append(stripped)
        if re.match(r"^TRANSACTION\b", stripped, re.IGNORECASE):
            in_transaction = True
        if in_transaction:
            if re.match(r"^END\s*;$", stripped, re.IGNORECASE):
                chunks.append(" ".join(buffer))
                buffer = []
                in_transaction = False
        elif stripped.endswith(";") or _END_RE.match(stripped):
            chunks.append(" ".join(buffer))
            buffer = []
    if buffer:
        chunks.append(" ".join(buffer))
    return chunks


def parse_dbpl(text: str) -> DBPLModule:
    """Parse a DBPL module source into a :class:`DBPLModule`."""
    chunks = _declarations(text)
    if not chunks:
        raise LanguageError("empty DBPL source")
    head = _MODULE_RE.match(chunks[0])
    if head is None:
        raise LanguageError(f"missing DATABASE MODULE header: {chunks[0]!r}")
    module = DBPLModule(head.group(1))
    for chunk in chunks[1:]:
        if _END_RE.match(chunk):
            continue
        module.add(_parse_declaration(chunk))
    return module


def _parse_declaration(chunk: str):
    relation = _RELATION_RE.match(chunk)
    if relation:
        return RelationDecl(
            name=relation.group("name"),
            fields=_parse_fields(relation.group("fields")),
            key=tuple(_split_names(relation.group("key"))),
            of_type=relation.group("of") or "",
        )
    fk = _FK_SELECTOR_RE.match(chunk)
    if fk:
        return SelectorDecl(
            name=fk.group("name"),
            relation=fk.group("rel"),
            constraint=ForeignKey(
                tuple(_split_names(fk.group("cols"))),
                fk.group("target"),
                tuple(_split_names(fk.group("tcols"))),
            ),
        )
    check = _CHECK_SELECTOR_RE.match(chunk)
    if check:
        return SelectorDecl(
            name=check.group("name"),
            relation=check.group("rel"),
            constraint=Predicate(check.group("pred").strip()),
        )
    constructor = _CONSTRUCTOR_RE.match(chunk)
    if constructor:
        return ConstructorDecl(
            name=constructor.group("name"),
            expression=parse_algebra(constructor.group("expr")),
        )
    transaction = _TRANSACTION_RE.match(chunk)
    if transaction:
        params = []
        for part in _split_names(transaction.group("params")):
            if ":" in part:
                name, cls = (p.strip() for p in part.split(":", 1))
            else:
                name, cls = part, "ANY"
            params.append((name, cls))
        operations = []
        for op_text in transaction.group("body").split(";"):
            op_text = op_text.strip()
            if not op_text:
                continue
            op_match = re.match(
                r"^(INSERT|DELETE|UPDATE)\s+(\w+)(?:\s+(.*))?$",
                op_text, re.IGNORECASE,
            )
            if op_match is None:
                raise LanguageError(f"bad transaction operation: {op_text!r}")
            operations.append(
                TransactionOp(
                    op_match.group(1).lower(),
                    op_match.group(2),
                    (op_match.group(3) or "").strip(),
                )
            )
        return TransactionDecl(transaction.group("name"), params, operations)
    raise LanguageError(f"unrecognised DBPL declaration: {chunk[:60]!r}")
