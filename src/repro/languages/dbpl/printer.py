"""Code-frame printer for DBPL declarations.

Renders the "code frames" shown in figs 2-2 to 2-4, e.g.::

    InvitationRel = RELATION
      paperkey : Surrogate,
      sender   : Person,
      date     : Date
    OF InvitationType KEY paperkey;
"""

from __future__ import annotations

from typing import List

from repro.languages.dbpl.ast import (
    ConstructorDecl,
    DBPLModule,
    RelationDecl,
    SelectorDecl,
    TransactionDecl,
)


def print_relation(decl: RelationDecl) -> str:
    """The relation code frame, fields aligned as in the figures."""
    width = max((len(f.name) for f in decl.fields), default=0)
    lines = [f"{decl.name} = RELATION"]
    for index, f in enumerate(decl.fields):
        comma = "," if index < len(decl.fields) - 1 else ""
        lines.append(f"  {f.name.ljust(width)} : {f.type_name}{comma}")
    of_clause = f"OF {decl.of_type} " if decl.of_type else ""
    lines.append(f"{of_clause}KEY {', '.join(decl.key)};")
    return "\n".join(lines)


def print_selector(decl: SelectorDecl) -> str:
    """The SELECTOR declaration line."""
    return decl.render()


def print_constructor(decl: ConstructorDecl) -> str:
    """The CONSTRUCTOR declaration line."""
    return decl.render()


def print_transaction(decl: TransactionDecl) -> str:
    """The TRANSACTION code frame (header, BEGIN/END body)."""
    params = ", ".join(f"{name} : {cls}" for name, cls in decl.parameters)
    lines = [f"TRANSACTION {decl.name}({params})"]
    lines.append("BEGIN")
    for op in decl.operations:
        lines.append(f"  {op.render()}")
    lines.append("END;")
    return "\n".join(lines)


def print_module(module: DBPLModule) -> str:
    """The full code frame of a module, sections in DBPL order."""
    parts: List[str] = [f"DATABASE MODULE {module.name};"]
    for decl in module.relations.values():
        parts.append(print_relation(decl))
    for decl in module.selectors.values():
        parts.append(print_selector(decl))
    for decl in module.constructors.values():
        parts.append(print_constructor(decl))
    for decl in module.transactions.values():
        parts.append(print_transaction(decl))
    parts.append(f"END {module.name}.")
    return "\n\n".join(parts)
