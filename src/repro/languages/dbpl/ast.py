"""Abstract syntax of the DBPL subset used by the mapping assistants."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import LanguageError


@dataclass(frozen=True)
class Field:
    """A typed relation field."""

    name: str
    type_name: str = "STRING"

    def render(self) -> str:
        """``name : TYPE`` as it appears in code frames."""
        return f"{self.name} : {self.type_name}"


@dataclass
class RelationDecl:
    """``R = RELATION f1, ... OF T KEY k1, ...``"""

    name: str
    fields: List[Field]
    key: Tuple[str, ...]
    of_type: str = ""

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(names) != len(set(names)):
            raise LanguageError(f"duplicate fields in relation {self.name!r}")
        for part in self.key:
            if part not in names:
                raise LanguageError(
                    f"key component {part!r} is not a field of {self.name!r}"
                )
        if not self.key:
            raise LanguageError(f"relation {self.name!r} needs a key")

    def field_names(self) -> List[str]:
        """The field names, in declaration order."""
        return [f.name for f in self.fields]

    def field_type(self, name: str) -> str:
        """The declared type of one field."""
        for f in self.fields:
            if f.name == name:
                return f.type_name
        raise LanguageError(f"no field {name!r} in relation {self.name!r}")


# ---------------------------------------------------------------------------
# Relational algebra (constructor bodies)
# ---------------------------------------------------------------------------

class AlgebraExpr:
    """Base class of constructor expressions."""

    def relations(self) -> List[str]:
        """Names of base relations the expression reads."""
        raise NotImplementedError

    def render(self) -> str:
        """Concrete-syntax rendering of this node."""
        raise NotImplementedError

    def _operand(self) -> str:
        """Rendering as an operand: composite expressions are
        parenthesised so printing and parsing round-trip."""
        return f"({self.render()})"


@dataclass(frozen=True)
class RelationRef(AlgebraExpr):
    """A reference to a base relation or another constructor by name."""
    name: str

    def relations(self) -> List[str]:
        """Base relations read: just this one."""
        return [self.name]

    def render(self) -> str:
        """The bare relation name."""
        return self.name

    def _operand(self) -> str:
        return self.name


@dataclass(frozen=True)
class Project(AlgebraExpr):
    """Projection onto the named columns (duplicates eliminated)."""
    source: AlgebraExpr
    columns: Tuple[str, ...]

    def relations(self) -> List[str]:
        """Base relations read by the source."""
        return self.source.relations()

    def render(self) -> str:
        """``PROJECT <src> ON c1, c2``."""
        return f"PROJECT {self.source._operand()} ON {', '.join(self.columns)}"


@dataclass(frozen=True)
class Select(AlgebraExpr):
    """Selection by a conjunction of column = literal equalities."""

    source: AlgebraExpr
    equalities: Tuple[Tuple[str, str], ...]

    def relations(self) -> List[str]:
        """Base relations read by the source."""
        return self.source.relations()

    def render(self) -> str:
        """``SELECT <src> WHERE a = 'v' AND ...``."""
        conds = " AND ".join(f"{c} = '{v}'" for c, v in self.equalities)
        return f"SELECT {self.source._operand()} WHERE {conds}"


@dataclass(frozen=True)
class Join(AlgebraExpr):
    """Natural join on the named columns."""

    left: AlgebraExpr
    right: AlgebraExpr
    on: Tuple[str, ...]

    def relations(self) -> List[str]:
        """Base relations read by both operands."""
        return self.left.relations() + self.right.relations()

    def render(self) -> str:
        """``JOIN <left>, <right> ON c1, c2``."""
        return (
            f"JOIN {self.left._operand()}, {self.right._operand()} "
            f"ON {', '.join(self.on)}"
        )


@dataclass(frozen=True)
class Union(AlgebraExpr):
    """Set union; headings are padded to a common schema."""
    left: AlgebraExpr
    right: AlgebraExpr

    def relations(self) -> List[str]:
        """Base relations read by both operands."""
        return self.left.relations() + self.right.relations()

    def render(self) -> str:
        """``UNION <left>, <right>``."""
        return f"UNION {self.left._operand()}, {self.right._operand()}"


@dataclass(frozen=True)
class Rename(AlgebraExpr):
    """Column renaming by (old, new) pairs."""
    source: AlgebraExpr
    mapping: Tuple[Tuple[str, str], ...]  # (old, new)

    def relations(self) -> List[str]:
        """Base relations read by the source."""
        return self.source.relations()

    def render(self) -> str:
        """``RENAME <src> (old AS new, ...)``."""
        pairs = ", ".join(f"{old} AS {new}" for old, new in self.mapping)
        return f"RENAME {self.source._operand()} ({pairs})"


# ---------------------------------------------------------------------------
# Selectors (integrity constraints)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ForeignKey:
    """Referential integrity: source columns must appear as key values
    of the target relation (the paper's ``InvitationsPaperIC``)."""

    columns: Tuple[str, ...]
    target: str
    target_columns: Tuple[str, ...]

    def render(self, relation: str) -> str:
        """The ``ON ... REFERENCES ...`` clause text."""
        return (
            f"ON {relation} ({', '.join(self.columns)}) "
            f"REFERENCES {self.target} ({', '.join(self.target_columns)})"
        )


@dataclass(frozen=True)
class Predicate:
    """A generic row predicate given as source text + a callable."""

    text: str

    def render(self, relation: str) -> str:
        """The ``ON ... CHECK (...)`` clause text."""
        return f"ON {relation} CHECK ({self.text})"


@dataclass(frozen=True)
class SelectorDecl:
    """``SELECTOR name ON relation ...`` — a named integrity constraint."""

    name: str
    relation: str
    constraint: object  # ForeignKey | Predicate

    def render(self) -> str:
        """The full SELECTOR declaration."""
        return f"SELECTOR {self.name} {self.constraint.render(self.relation)};"


@dataclass(frozen=True)
class ConstructorDecl:
    """``CONSTRUCTOR name AS <algebra>`` — a named view."""

    name: str
    expression: AlgebraExpr

    def render(self) -> str:
        """The full CONSTRUCTOR declaration."""
        return f"CONSTRUCTOR {self.name} AS {self.expression.render()};"


# ---------------------------------------------------------------------------
# Transactions and modules
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TransactionOp:
    """One operation of a transaction body."""

    kind: str  # 'insert' | 'delete' | 'update'
    relation: str
    detail: str = ""

    def render(self) -> str:
        """One transaction operation statement."""
        suffix = f" {self.detail}" if self.detail else ""
        return f"{self.kind.upper()} {self.relation}{suffix};"


@dataclass
class TransactionDecl:
    """A parameterised DBPL transaction."""

    name: str
    parameters: List[Tuple[str, str]] = field(default_factory=list)
    operations: List[TransactionOp] = field(default_factory=list)

    def touched_relations(self) -> List[str]:
        """Relations the operations touch, in first-use order."""
        seen: Dict[str, None] = {}
        for op in self.operations:
            seen.setdefault(op.relation, None)
        return list(seen)


@dataclass
class DBPLModule:
    """A DBPL database module: the unit the mapping produces."""

    name: str
    relations: Dict[str, RelationDecl] = field(default_factory=dict)
    selectors: Dict[str, SelectorDecl] = field(default_factory=dict)
    constructors: Dict[str, ConstructorDecl] = field(default_factory=dict)
    transactions: Dict[str, TransactionDecl] = field(default_factory=dict)

    def add(self, decl) -> object:
        """Register a declaration in its kind's section."""
        registry = {
            RelationDecl: self.relations,
            SelectorDecl: self.selectors,
            ConstructorDecl: self.constructors,
            TransactionDecl: self.transactions,
        }
        for decl_type, store in registry.items():
            if isinstance(decl, decl_type):
                if decl.name in store:
                    raise LanguageError(
                        f"duplicate {decl_type.__name__} {decl.name!r}"
                    )
                store[decl.name] = decl
                return decl
        raise LanguageError(f"cannot add {decl!r} to a DBPL module")

    def remove(self, name: str) -> None:
        """Delete a declaration by name (any kind)."""
        for store in (self.relations, self.selectors,
                      self.constructors, self.transactions):
            if name in store:
                del store[name]
                return
        raise LanguageError(f"no declaration named {name!r} in module {self.name!r}")

    def get(self, name: str):
        """Look a declaration up by name (any kind)."""
        for store in (self.relations, self.selectors,
                      self.constructors, self.transactions):
            if name in store:
                return store[name]
        raise LanguageError(f"no declaration named {name!r} in module {self.name!r}")

    def names(self) -> List[str]:
        """All declaration names, section by section."""
        out: List[str] = []
        for store in (self.relations, self.selectors,
                      self.constructors, self.transactions):
            out.extend(store)
        return out
