"""Abstract syntax of TaxisDL.

The GKBMS's design object classes "follow an abstract syntax of the
applied languages" (section 2.2); this module is that abstract syntax
for the conceptual-design level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import LanguageError


@dataclass(frozen=True)
class TDLAttribute:
    """An attribute of an entity class.

    ``set_valued`` marks ``set of T`` attributes — the trigger of the
    paper's normalisation decision (InvitationType's set-valued
    ``receiver``).
    """

    name: str
    target: str
    set_valued: bool = False

    def render(self) -> str:
        """``name : target`` (or ``set of target``)."""
        target = f"set of {self.target}" if self.set_valued else self.target
        return f"{self.name} : {target}"


@dataclass
class TDLEntityClass:
    """An entity class in a generalization hierarchy."""

    name: str
    isa: List[str] = field(default_factory=list)
    attributes: List[TDLAttribute] = field(default_factory=list)
    key: Tuple[str, ...] = ()  # usually empty: TaxisDL has no keys

    def __post_init__(self) -> None:
        labels = [a.name for a in self.attributes]
        if len(labels) != len(set(labels)):
            raise LanguageError(f"duplicate attribute names in {self.name!r}")
        for key_part in self.key:
            if key_part not in labels:
                raise LanguageError(
                    f"key component {key_part!r} is not an attribute of {self.name!r}"
                )

    def attribute(self, name: str) -> Optional[TDLAttribute]:
        """Look an own attribute up by name."""
        for attr in self.attributes:
            if attr.name == name:
                return attr
        return None

    @property
    def has_set_valued_attribute(self) -> bool:
        """Does any own attribute need normalisation?"""
        return any(a.set_valued for a in self.attributes)


@dataclass
class TDLTransactionClass:
    """A declarative transaction specification."""

    name: str
    isa: List[str] = field(default_factory=list)
    parameters: List[Tuple[str, str]] = field(default_factory=list)  # (name, class)
    preconditions: List[str] = field(default_factory=list)
    postconditions: List[str] = field(default_factory=list)


@dataclass
class TDLScript:
    """A user-interaction script: a named sequence of transaction
    invocations (the paper's "user interaction scripts")."""

    name: str
    steps: List[str] = field(default_factory=list)


@dataclass
class TDLModel:
    """A conceptual design: entity classes + transactions + scripts."""

    name: str
    classes: Dict[str, TDLEntityClass] = field(default_factory=dict)
    transactions: Dict[str, TDLTransactionClass] = field(default_factory=dict)
    scripts: Dict[str, TDLScript] = field(default_factory=dict)

    # -- construction ----------------------------------------------------

    def add_class(self, cls: TDLEntityClass) -> TDLEntityClass:
        """Register an entity class; supers must exist."""
        if cls.name in self.classes:
            raise LanguageError(f"duplicate entity class {cls.name!r}")
        for sup in cls.isa:
            if sup not in self.classes:
                raise LanguageError(
                    f"entity class {cls.name!r} specialises unknown {sup!r}"
                )
        self.classes[cls.name] = cls
        return cls

    def add_transaction(self, txn: TDLTransactionClass) -> TDLTransactionClass:
        """Register a transaction class."""
        if txn.name in self.transactions:
            raise LanguageError(f"duplicate transaction class {txn.name!r}")
        self.transactions[txn.name] = txn
        return txn

    def add_script(self, script: TDLScript) -> TDLScript:
        """Register a script."""
        if script.name in self.scripts:
            raise LanguageError(f"duplicate script {script.name!r}")
        self.scripts[script.name] = script
        return script

    # -- hierarchy queries --------------------------------------------------

    def get(self, name: str) -> TDLEntityClass:
        """Look an entity class up by name."""
        try:
            return self.classes[name]
        except KeyError:
            raise LanguageError(f"unknown entity class {name!r}") from None

    def subclasses(self, name: str, strict: bool = True) -> List[str]:
        """Direct and transitive specializations of ``name``."""
        out: Set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for cls in self.classes.values():
                if current in cls.isa and cls.name not in out:
                    out.add(cls.name)
                    frontier.append(cls.name)
        if not strict:
            out.add(name)
        return sorted(out)

    def superclasses(self, name: str, strict: bool = True) -> List[str]:
        """Transitive generalizations of a class."""
        out: Set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for sup in self.get(current).isa:
                if sup not in out:
                    out.add(sup)
                    frontier.append(sup)
        if not strict:
            out.add(name)
        return sorted(out)

    def leaves(self, root: str) -> List[str]:
        """Leaf classes of the hierarchy rooted at ``root`` (what the
        move-down mapping strategy generates relations for)."""
        below = self.subclasses(root, strict=False)
        return sorted(
            name for name in below if not self.subclasses(name)
        )

    def all_attributes(self, name: str) -> List[TDLAttribute]:
        """Own + inherited attributes of ``name`` (supers first).

        A redefined attribute (same name lower in the hierarchy)
        replaces the inherited one.
        """
        ordered: List[str] = []

        def visit(cls_name: str) -> None:
            cls = self.get(cls_name)
            for sup in cls.isa:
                visit(sup)
            if cls_name not in ordered:
                ordered.append(cls_name)

        visit(name)
        merged: Dict[str, TDLAttribute] = {}
        for cls_name in ordered:
            for attr in self.get(cls_name).attributes:
                merged[attr.name] = attr
        return list(merged.values())

    def roots(self) -> List[str]:
        """Classes without generalizations."""
        return sorted(name for name, cls in self.classes.items() if not cls.isa)
