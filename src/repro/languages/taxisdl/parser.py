"""A small concrete syntax for TaxisDL designs.

Example::

    entity class Papers with
      date : Date
      author : Person
    end

    entity class Invitations isa Papers with
      sender : Person
      receiver : set of Person
    end

    transaction class SendInvitation with
      in inv : Invitations
      pre Known(inv.sender)
      post A(inv, sent, true)
    end

    script OrganiseMeeting with
      step SendInvitation
      step CollectReplies
    end
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import LanguageError
from repro.languages.taxisdl.ast import (
    TDLAttribute,
    TDLEntityClass,
    TDLModel,
    TDLScript,
    TDLTransactionClass,
)

_ENTITY_HEAD = re.compile(
    r"^entity\s+class\s+(?P<name>\w+)"
    r"(?:\s+isa\s+(?P<isa>\w+(?:\s*,\s*\w+)*))?"
    r"(?:\s+(?P<with>with))?$",
    re.IGNORECASE,
)
_TXN_HEAD = re.compile(
    r"^transaction\s+class\s+(?P<name>\w+)"
    r"(?:\s+isa\s+(?P<isa>\w+(?:\s*,\s*\w+)*))?"
    r"(?:\s+(?P<with>with))?$",
    re.IGNORECASE,
)
_SCRIPT_HEAD = re.compile(
    r"^script\s+(?P<name>\w+)(?:\s+(?P<with>with))?$", re.IGNORECASE
)
_ATTR_LINE = re.compile(
    r"^(?P<name>\w+)\s*:\s*(?P<set>set\s+of\s+)?(?P<target>\w+)$",
    re.IGNORECASE,
)
_KEY_LINE = re.compile(r"^key\s+(?P<parts>\w+(?:\s*,\s*\w+)*)$", re.IGNORECASE)
_PARAM_LINE = re.compile(
    r"^in\s+(?P<name>\w+)\s*:\s*(?P<cls>\w+)$", re.IGNORECASE
)
_PRE_LINE = re.compile(r"^pre\s+(?P<text>.+)$", re.IGNORECASE)
_POST_LINE = re.compile(r"^post\s+(?P<text>.+)$", re.IGNORECASE)
_STEP_LINE = re.compile(r"^step\s+(?P<name>\w+)$", re.IGNORECASE)


def _split_names(text: Optional[str]) -> List[str]:
    if not text:
        return []
    return [part.strip() for part in text.split(",") if part.strip()]


def _blocks(text: str) -> List[Tuple[str, List[str]]]:
    """Split the source into (header, body-lines) blocks ended by 'end'."""
    blocks: List[Tuple[str, List[str]]] = []
    header: Optional[str] = None
    body: List[str] = []
    for raw in text.splitlines():
        line = raw.split("--", 1)[0].strip()  # '--' starts a comment
        if not line:
            continue
        if line.lower() == "end":
            if header is None:
                raise LanguageError("'end' without an open block")
            blocks.append((header, body))
            header, body = None, []
        elif header is None:
            header = line
        else:
            body.append(line)
    if header is not None:
        raise LanguageError(f"unterminated block: {header!r}")
    return blocks


def parse_taxisdl(text: str, model_name: str = "design",
                  model: TDLModel = None) -> TDLModel:
    """Parse a TaxisDL script into a :class:`TDLModel`.

    Passing an existing ``model`` appends to it, so later blocks (and
    isa references) may build on classes parsed earlier — the
    incremental-extension path of the scenario.
    """
    if model is None:
        model = TDLModel(model_name)
    for header, body in _blocks(text):
        entity = _ENTITY_HEAD.match(header)
        if entity:
            model.add_class(_parse_entity(entity, body))
            continue
        txn = _TXN_HEAD.match(header)
        if txn:
            model.add_transaction(_parse_transaction(txn, body))
            continue
        script = _SCRIPT_HEAD.match(header)
        if script:
            model.add_script(_parse_script(script, body))
            continue
        raise LanguageError(f"unrecognised block header: {header!r}")
    return model


def _parse_entity(match: "re.Match", body: List[str]) -> TDLEntityClass:
    attributes: List[TDLAttribute] = []
    key: Tuple[str, ...] = ()
    for line in body:
        key_match = _KEY_LINE.match(line)
        if key_match:
            key = tuple(_split_names(key_match.group("parts")))
            continue
        attr_match = _ATTR_LINE.match(line)
        if attr_match is None:
            raise LanguageError(f"bad attribute line: {line!r}")
        attributes.append(
            TDLAttribute(
                attr_match.group("name"),
                attr_match.group("target"),
                set_valued=attr_match.group("set") is not None,
            )
        )
    return TDLEntityClass(
        name=match.group("name"),
        isa=_split_names(match.group("isa")),
        attributes=attributes,
        key=key,
    )


def _parse_transaction(match: "re.Match", body: List[str]) -> TDLTransactionClass:
    txn = TDLTransactionClass(
        name=match.group("name"), isa=_split_names(match.group("isa"))
    )
    for line in body:
        param = _PARAM_LINE.match(line)
        if param:
            txn.parameters.append((param.group("name"), param.group("cls")))
            continue
        pre = _PRE_LINE.match(line)
        if pre:
            txn.preconditions.append(pre.group("text").strip())
            continue
        post = _POST_LINE.match(line)
        if post:
            txn.postconditions.append(post.group("text").strip())
            continue
        raise LanguageError(f"bad transaction line: {line!r}")
    return txn


def _parse_script(match: "re.Match", body: List[str]) -> TDLScript:
    script = TDLScript(name=match.group("name"))
    for line in body:
        step = _STEP_LINE.match(line)
        if step is None:
            raise LanguageError(f"bad script line: {line!r}")
        script.steps.append(step.group("name"))
    return script
