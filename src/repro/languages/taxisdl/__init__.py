"""TaxisDL: the declarative conceptual design language (S9).

"A purely declarative version of the language Taxis [MBW80], called
TaxisDL [TDL87], for conceptual design and predicative specification."

Entity classes form generalization (IsA) hierarchies, carry single- or
set-valued attributes and optional keys (the object-oriented model has
no keys by default — the paper's mapping step introduces artificial
surrogates for exactly that reason); transaction classes and scripts
capture behaviour declaratively.
"""

from repro.languages.taxisdl.ast import (
    TDLAttribute,
    TDLEntityClass,
    TDLModel,
    TDLScript,
    TDLTransactionClass,
)
from repro.languages.taxisdl.parser import parse_taxisdl
from repro.languages.taxisdl.printer import print_model, print_entity_class

__all__ = [
    "TDLAttribute",
    "TDLEntityClass",
    "TDLModel",
    "TDLScript",
    "TDLTransactionClass",
    "parse_taxisdl",
    "print_model",
    "print_entity_class",
]
