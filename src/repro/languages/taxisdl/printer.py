"""Pretty-printer for TaxisDL designs (round-trips with the parser)."""

from __future__ import annotations

from typing import List

from repro.languages.taxisdl.ast import (
    TDLEntityClass,
    TDLModel,
    TDLScript,
    TDLTransactionClass,
)


def print_entity_class(cls: TDLEntityClass) -> str:
    """Render one entity class block."""
    head = f"entity class {cls.name}"
    if cls.isa:
        head += " isa " + ", ".join(cls.isa)
    lines: List[str] = []
    if cls.attributes or cls.key:
        lines.append(head + " with")
        for attr in cls.attributes:
            lines.append(f"  {attr.render()}")
        if cls.key:
            lines.append("  key " + ", ".join(cls.key))
    else:
        lines.append(head)
    lines.append("end")
    return "\n".join(lines)


def print_transaction_class(txn: TDLTransactionClass) -> str:
    """Render one transaction class block."""
    head = f"transaction class {txn.name}"
    if txn.isa:
        head += " isa " + ", ".join(txn.isa)
    lines = [head + " with" if (txn.parameters or txn.preconditions or
                                txn.postconditions) else head]
    for name, cls in txn.parameters:
        lines.append(f"  in {name} : {cls}")
    for pre in txn.preconditions:
        lines.append(f"  pre {pre}")
    for post in txn.postconditions:
        lines.append(f"  post {post}")
    lines.append("end")
    return "\n".join(lines)


def print_script(script: TDLScript) -> str:
    """Render one script block."""
    lines = [f"script {script.name} with" if script.steps else f"script {script.name}"]
    for step in script.steps:
        lines.append(f"  step {step}")
    lines.append("end")
    return "\n".join(lines)


def print_model(model: TDLModel) -> str:
    """Render a whole design (round-trips through the parser)."""
    parts: List[str] = []
    for cls in model.classes.values():
        parts.append(print_entity_class(cls))
    for txn in model.transactions.values():
        parts.append(print_transaction_class(txn))
    for script in model.scripts.values():
        parts.append(print_script(script))
    return "\n\n".join(parts)
