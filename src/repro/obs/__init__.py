"""Observability layer: metrics registry, span tracer, EXPLAIN.

One substrate for every number this reproduction reports about itself:

- :mod:`repro.obs.metrics` — typed, named, thread-safe counters /
  gauges / histograms in per-component-instance namespaces, with
  snapshot/diff (the replacement for the aliased ``stats`` dicts);
- :mod:`repro.obs.tracing` — nested context-manager spans with an
  injectable clock and JSONL export, disabled by default;
- :mod:`repro.obs.logging` — structured log sinks so library code
  never writes to stdout uninvited;
- :mod:`repro.obs.explain` — ``QueryExplain``: per-query span trees
  with cache-hit / probe / expansion attribution from registry deltas;
- ``python -m repro.obs`` — dump/diff/check exported traces and metric
  snapshots, and run the traced smoke workload CI gates on.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    Namespace,
    StatsView,
    diff_snapshots,
    dump_snapshot,
    load_snapshot,
)
from repro.obs.tracing import (
    Span,
    TraceError,
    Tracer,
    disable,
    enable,
    get_tracer,
    load_jsonl,
    render_tree,
    set_tracer,
    span_tree,
)
from repro.obs.logging import (
    CollectingSink,
    LogRecord,
    LogSink,
    NullSink,
    StreamSink,
    get_sink,
    log,
    set_sink,
)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricError", "MetricsRegistry",
    "Namespace", "StatsView", "diff_snapshots", "dump_snapshot",
    "load_snapshot",
    "Span", "TraceError", "Tracer", "disable", "enable", "get_tracer",
    "load_jsonl", "render_tree", "set_tracer", "span_tree",
    "CollectingSink", "LogRecord", "LogSink", "NullSink", "StreamSink",
    "get_sink", "log", "set_sink",
    "QueryExplain", "ExplainReport",
]


def __getattr__(name):
    # QueryExplain imports processor modules; lazy import avoids cycles
    # (processor -> obs.metrics -> obs -> explain -> processor).
    if name in ("QueryExplain", "ExplainReport"):
        from repro.obs import explain

        return getattr(explain, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
