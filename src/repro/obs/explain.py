"""Query EXPLAIN: span trees plus before/after metric attribution.

``QueryExplain`` wraps any piece of work — an ``ask``, a ``query``, a
telling — and produces an :class:`ExplainReport`: the spans the work
emitted (closure computations, semi-naive rounds, constraint sweeps,
WAL appends) arranged as a tree, and the exact registry counter deltas
it caused.  Because the numbers come from the same
:class:`~repro.obs.metrics.MetricsRegistry` the benchmarks read, an
EXPLAIN of the PR 2 workloads reproduces their headline ratios (isa
expansions saved by the closure caches, join probes saved by the
compiled plans) from registry data alone.

Cache attribution falls out of the span protocol: a closure cache *hit*
never opens a span (it only bumps ``proposition.closure_hits``), so a
warm query's EXPLAIN shows counter movement with no ``proposition.closure``
spans — the visible signature of a cache-served query — while a cold
query shows one span per computed closure with ``cache="miss"``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional

from repro.obs.metrics import MetricsRegistry, diff_snapshots
from repro.obs.tracing import Tracer, render_tree, set_tracer, span_tree


class ExplainReport:
    """What one captured piece of work did: spans + metric deltas."""

    def __init__(self, label: str) -> None:
        self.label = label
        self.before: Dict[str, Any] = {}
        self.after: Dict[str, Any] = {}
        self.span_records: List[Dict[str, Any]] = []
        #: Return value of the captured callable (``explain(fn)`` only).
        self.result: Any = None

    # -- metrics -----------------------------------------------------------

    @property
    def metrics(self) -> Dict[str, Any]:
        """Per-name counter deltas between entry and exit snapshots."""
        return diff_snapshots(self.before, self.after)

    def delta(self, name: str) -> int:
        """The delta of one counter (0 if it never moved)."""
        value = self.metrics.get(name, 0)
        return value if isinstance(value, (int, float)) else 0

    def changed(self) -> Dict[str, Any]:
        """Only the metrics that actually moved."""
        out: Dict[str, Any] = {}
        for name, value in self.metrics.items():
            if isinstance(value, Mapping):
                if value.get("count"):
                    out[name] = value
            elif value:
                out[name] = value
        return out

    # -- spans -------------------------------------------------------------

    def tree(self) -> List[Dict[str, Any]]:
        """The captured spans as a forest (see :func:`span_tree`)."""
        return span_tree(self.span_records)

    def subsystems(self) -> Dict[str, int]:
        """Captured spans per subsystem (name prefix before the dot)."""
        counts: Dict[str, int] = {}
        for record in self.span_records:
            subsystem = str(record.get("name", "")).split(".", 1)[0]
            counts[subsystem] = counts.get(subsystem, 0) + 1
        return counts

    def spans_named(self, name: str) -> List[Dict[str, Any]]:
        """Captured span records with exactly this name."""
        return [r for r in self.span_records if r.get("name") == name]

    # -- attribution -------------------------------------------------------

    def headline(self) -> Dict[str, Any]:
        """The attribution summary: cache, expansion and probe work.

        ``closure_spans`` counts actual closure *computations* (cache
        misses open spans; hits do not), so ``closure_hits`` moving
        while ``closure_spans`` stays 0 is a fully cache-served query.

        Cache *pathology* is the invalidation/delta split:
        ``closure_invalidations`` is rebuild-the-world churn (an epoch
        bump emptied a family), ``closure_delta_applied`` is in-place
        maintenance that kept the family warm.  A mutation-heavy
        workload whose invalidations dwarf its delta applications is
        throwing derived state away instead of patching it.
        """
        hits = self.delta("proposition.closure_hits")
        misses = self.delta("proposition.closure_misses")
        total = hits + misses
        return {
            "closure_hits": hits,
            "closure_misses": misses,
            "cache_hit_rate": (hits / total) if total else None,
            "closure_spans": len(self.spans_named("proposition.closure")),
            "closure_invalidations":
                self.delta("proposition.closure_invalidations"),
            "closure_delta_applied":
                self.delta("proposition.closure_delta_applied"),
            "closure_delta_evictions":
                self.delta("proposition.closure_delta_evictions"),
            "idb_delta_applies": self.delta("deduction.delta_applies"),
            "idb_delta_fallbacks": self.delta("deduction.delta_fallbacks"),
            "rule_firings": self.delta("deduction.rule_firings"),
            "isa_expansions": self.delta("proposition.isa_expansions"),
            "join_probes": self.delta("deduction.join_probes"),
            "index_probes": self.delta("deduction.index_probes"),
            "evaluations": self.delta("consistency.evaluations"),
            "constraints_skipped": self.delta("consistency.skipped"),
            "wal_records": self.delta("wal.wal_records"),
            "store_retrievals": self.delta("store.retrievals"),
        }

    def render(self) -> str:
        """The EXPLAIN display: span tree, headline, changed counters."""
        lines = [f"EXPLAIN {self.label}"]
        tree = self.tree()
        if tree:
            lines.append(render_tree(tree))
        else:
            lines.append("  (no spans recorded — all work served by caches"
                         " or tracing disabled)")
        lines.append("-- attribution --")
        for key, value in self.headline().items():
            if value is None:
                continue
            if key == "cache_hit_rate":
                lines.append(f"  {key} = {value:.2f}")
            elif value:
                lines.append(f"  {key} = {value}")
        changed = self.changed()
        if changed:
            lines.append("-- counters moved --")
            for name in sorted(changed):
                value = changed[name]
                if isinstance(value, Mapping):
                    value = f"count+{value.get('count', 0)}"
                lines.append(f"  {name} = {value}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<ExplainReport {self.label!r} spans={len(self.span_records)}"
                f" changed={len(self.changed())}>")


class QueryExplain:
    """EXPLAIN facade over one registry (usually a facade's).

    ``tracer`` pins the tracer the instrumented components already use
    (e.g. one injected into a :class:`~repro.conceptbase.ConceptBase`);
    without it, each capture installs a fresh enabled process-default
    tracer for its duration and restores the previous one after, so
    components that resolve :func:`~repro.obs.tracing.get_tracer` at
    call time are captured automatically.
    """

    def __init__(self, registry: MetricsRegistry,
                 tracer: Optional[Tracer] = None) -> None:
        self.registry = registry
        self._tracer = tracer

    @contextmanager
    def capture(self, label: str = "query") -> Iterator[ExplainReport]:
        """Capture everything run inside the ``with`` block."""
        report = ExplainReport(label)
        tracer = self._tracer if self._tracer is not None \
            else Tracer(enabled=True)
        previous = set_tracer(tracer) if self._tracer is None else None
        baseline = len(tracer.spans)
        report.before = self.registry.snapshot()
        try:
            yield report
        finally:
            report.after = self.registry.snapshot()
            report.span_records = [
                span.to_json() for span in tracer.spans[baseline:]
            ]
            if previous is not None:
                set_tracer(previous)

    def explain(self, fn: Callable[[], Any],
                label: Optional[str] = None) -> ExplainReport:
        """Run ``fn`` under capture; its return value lands on
        ``report.result``."""
        if label is None:
            label = getattr(fn, "__name__", "query") or "query"
        with self.capture(label) as report:
            report.result = fn()
        return report
