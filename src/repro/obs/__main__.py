"""``python -m repro.obs`` — inspect and gate observability artifacts.

Subcommands:

- ``smoke``  — run a small traced workload across every instrumented
  subsystem (propositions, deduction, consistency, WAL, store, models),
  export the span JSONL and a metric snapshot, print the census.  The
  CI ``obs-smoke`` job runs this and then ``check``\\ s the artifact.
- ``check``  — gate a trace file: parse must be clean and each required
  subsystem must have a non-zero span count.  Non-zero exit on failure.
- ``dump``   — render a trace file as span trees + subsystem counts;
  with ``--metrics`` also the closure-cache pathology block
  (hit/miss/invalidation/delta-applied census) of a snapshot.
- ``diff``   — per-counter deltas between two metric snapshots.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from typing import Dict, List, Optional

from repro.obs.logging import StreamSink, log, set_sink
from repro.obs.metrics import (
    MetricsRegistry,
    diff_snapshots,
    dump_snapshot,
    load_snapshot,
)
from repro.obs.tracing import (
    TraceError,
    Tracer,
    load_jsonl,
    render_tree,
    set_tracer,
    span_tree,
)

#: Subsystems the smoke workload must produce spans for.
SMOKE_SUBSYSTEMS = ("proposition", "deduction", "consistency", "wal", "models")


def run_smoke(trace_path: str, metrics_path: str,
              wal_dir: Optional[str] = None) -> Dict[str, int]:
    """Drive every instrumented subsystem once, under one tracer.

    Returns the finished-span census per subsystem after writing the
    JSONL trace and the metric snapshot.
    """
    from repro.conceptbase import ConceptBase
    from repro.models.model import ModelBase
    from repro.propositions.wal import WalStore

    registry = MetricsRegistry()
    tracer = Tracer(enabled=True)
    previous = set_tracer(tracer)
    try:
        if wal_dir is None:
            wal_dir = tempfile.mkdtemp(prefix="obs-smoke-")
        store = WalStore(os.path.join(wal_dir, "smoke.wal"),
                         registry=registry)
        cb = ConceptBase(store=store, registry=registry)
        cb.define_metaclass("TDL_EntityClass")
        cb.tell(
            """
            TELL Person IN TDL_EntityClass END

            TELL Invitation IN TDL_EntityClass WITH
              attribute sender : Person
            END
            """
        )
        with cb.transaction():
            cb.tell("TELL bob IN Person END")
            cb.tell("TELL alice IN Person END")
        cb.tell(
            """
            TELL inv1 IN Invitation WITH
              sender sender : bob
            END
            """
        )
        cb.add_rule("attr(?x, informed, ?y) :- attr(?x, sender, ?y).",
                    name="informs")
        cb.add_constraint("Invitation", "HasSender", "Known(self.sender)")
        answers = cb.query("attr(?x, informed, ?y)")
        violations = cb.check()
        cb.query("attr(?x, informed, ?y)")  # warm pass: cache-served
        store.checkpoint()

        models = ModelBase(registry=registry)
        models.define_model("world")
        models.define_model("system", submodels=["world"])
        with models.in_model("world"):
            models.processor.tell_individual("Meeting")
        models.configure(["system"])
        models.configure(["world"])

        log("info", "smoke workload done", logger="repro.obs",
            answers=len(answers), violations=len(violations))
    finally:
        set_tracer(previous)
    exported = tracer.export_jsonl(trace_path)
    dump_snapshot(metrics_path, registry.snapshot())
    log("info", "smoke artifacts written", logger="repro.obs",
        trace=trace_path, metrics=metrics_path, spans=exported)
    return tracer.subsystem_counts()


def _cmd_smoke(args: argparse.Namespace) -> int:
    counts = run_smoke(args.trace_out, args.metrics_out, args.wal_dir)
    for subsystem in sorted(counts):
        log("info", f"{subsystem}: {counts[subsystem]} spans",
            logger="repro.obs")
    missing = [s for s in SMOKE_SUBSYSTEMS if not counts.get(s)]
    if missing:
        log("error", f"FAIL: no spans from {', '.join(missing)}",
            logger="repro.obs")
        return 1
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    try:
        records = load_jsonl(args.trace)
    except (TraceError, OSError) as exc:
        log("error", f"FAIL: {exc}", logger="repro.obs")
        return 1
    counts: Dict[str, int] = {}
    for record in records:
        subsystem = str(record.get("name", "")).split(".", 1)[0]
        counts[subsystem] = counts.get(subsystem, 0) + 1
    required = args.require or list(SMOKE_SUBSYSTEMS)
    missing = [s for s in required if not counts.get(s)]
    log("info", f"{len(records)} spans, subsystems: "
        + (", ".join(f"{s}={counts[s]}" for s in sorted(counts)) or "none"),
        logger="repro.obs")
    if missing:
        log("error", f"FAIL: no spans from {', '.join(missing)}",
            logger="repro.obs")
        return 1
    log("info", "OK", logger="repro.obs")
    return 0


def _counter(snapshot: Dict[str, object], name: str) -> int:
    value = snapshot.get(name, 0)
    if isinstance(value, dict):
        return int(value.get("count", 0))
    return int(value) if isinstance(value, (int, float)) else 0


def closure_cache_report(snapshot: Dict[str, object]) -> List[str]:
    """Render the closure-cache pathology block of a metric snapshot.

    The hit/miss/invalidation/delta-applied census makes the cache
    regime legible at a glance: invalidations rebuilding whole closure
    families versus deltas patching them in place (the PR 2 headline
    ratio — e.g. 538 isa expansions cached vs 702 uncached — shows up
    here as the hit rate; PR 7's maintenance shows up as deltas
    replacing invalidations).
    """
    hits = _counter(snapshot, "proposition.closure_hits")
    misses = _counter(snapshot, "proposition.closure_misses")
    total = hits + misses
    lines = ["-- closure cache --",
             f"  hits = {hits}  misses = {misses}"
             + (f"  hit_rate = {hits / total:.2f}" if total else ""),
             f"  invalidations = "
             f"{_counter(snapshot, 'proposition.closure_invalidations')}"
             f"  delta_applied = "
             f"{_counter(snapshot, 'proposition.closure_delta_applied')}"
             f"  delta_evictions = "
             f"{_counter(snapshot, 'proposition.closure_delta_evictions')}",
             f"  isa_expansions = "
             f"{_counter(snapshot, 'proposition.isa_expansions')}",
             "-- idb maintenance --",
             f"  delta_applies = {_counter(snapshot, 'deduction.delta_applies')}"
             f"  delta_fallbacks = "
             f"{_counter(snapshot, 'deduction.delta_fallbacks')}"
             f"  rule_firings = {_counter(snapshot, 'deduction.rule_firings')}",
             f"  rederivations = "
             f"{_counter(snapshot, 'deduction.rederivations')}"
             f"  overdeletions = "
             f"{_counter(snapshot, 'deduction.overdeletions')}"]
    return lines


def _cmd_dump(args: argparse.Namespace) -> int:
    try:
        records = load_jsonl(args.trace)
    except (TraceError, OSError) as exc:
        log("error", f"FAIL: {exc}", logger="repro.obs")
        return 1
    log("info", render_tree(span_tree(records), max_depth=args.max_depth),
        logger="repro.obs")
    if args.metrics:
        try:
            snapshot = load_snapshot(args.metrics)
        except OSError as exc:
            log("error", f"FAIL: {exc}", logger="repro.obs")
            return 1
        log("info", "\n".join(closure_cache_report(snapshot)),
            logger="repro.obs")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    try:
        before = load_snapshot(args.before)
        after = load_snapshot(args.after)
    except OSError as exc:
        log("error", f"FAIL: {exc}", logger="repro.obs")
        return 1
    deltas = diff_snapshots(before, after)
    for name in sorted(deltas):
        value = deltas[name]
        if isinstance(value, dict):
            if value.get("count"):
                log("info", f"{name} count+{value['count']}", logger="repro.obs")
        elif value or args.all:
            log("info", f"{name} {value:+}", logger="repro.obs")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect and gate trace/metric artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    smoke = sub.add_parser("smoke", help="run the traced smoke workload")
    smoke.add_argument("--trace-out", default="obs-trace.jsonl")
    smoke.add_argument("--metrics-out", default="obs-metrics.json")
    smoke.add_argument("--wal-dir", default=None)
    smoke.set_defaults(fn=_cmd_smoke)

    check = sub.add_parser("check", help="gate a trace file")
    check.add_argument("trace")
    check.add_argument("--require", action="append", default=None,
                       metavar="SUBSYSTEM")
    check.set_defaults(fn=_cmd_check)

    dump = sub.add_parser("dump", help="render a trace file")
    dump.add_argument("trace")
    dump.add_argument("--max-depth", type=int, default=12)
    dump.add_argument("--metrics", default=None,
                      help="metric snapshot to render the closure-cache"
                           " pathology block from")
    dump.set_defaults(fn=_cmd_dump)

    diff = sub.add_parser("diff", help="diff two metric snapshots")
    diff.add_argument("before")
    diff.add_argument("after")
    diff.add_argument("--all", action="store_true",
                      help="include zero deltas")
    diff.set_defaults(fn=_cmd_diff)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    # A CLI is an application: route structured logs to the console for
    # the duration of the run (restored so in-process callers — tests —
    # do not change the process default).
    previous = set_sink(StreamSink())
    try:
        return args.fn(args)
    finally:
        set_sink(previous)


if __name__ == "__main__":
    sys.exit(main())
