"""A process-wide metrics registry: named, typed, zero-dependency.

The paper's claims — set-oriented consistency checking, lemma-generating
deduction, "as fast as the hardware allows" — are only claims until they
are measured, and until PR 4 every component measured itself through an
ad-hoc ``stats`` dict.  Those dicts were aliased between layers (a
processor adopting its store's dict), reset by benchmarks mid-flight,
and carried no types or naming discipline.  This module replaces them:

- :class:`Counter` — monotone-by-convention integer (``inc``), with a
  guarded ``set``/``reset`` for view compatibility;
- :class:`Gauge` — a level (``set``/``inc``/``dec``), e.g. live sizes;
- :class:`Histogram` — observations summarised as count/sum/min/max
  plus a *bounded reservoir* (uniform sample, deterministic per-metric
  RNG) for quantiles without unbounded memory;
- :class:`MetricsRegistry` — a thread-safe name → metric table with
  dotted-name :class:`Namespace` views, point-in-time :meth:`snapshot`
  and :func:`diff_snapshots` for before/after attribution.

**Metric name schema.**  ``<component>.<counter>`` with dots separating
namespace segments: ``proposition.closure_hits``,
``deduction.join_probes``, ``consistency.evaluations``, ``wal.fsyncs``,
``store.retrievals``, ``models.configurations``.  The component prefix
is the *subsystem* key the trace tooling groups by; everything after it
is free-form but stable — BENCH_*.json files and the
``python -m repro.obs`` snapshot differ rely on these names not moving.

Every component instance owns its *own* namespace (usually on its own
private registry), which is what structurally rules out the
shared-mutable-dict aliasing class of bugs: two processors opened on
the same store can no longer double-count each other's closures,
because there is no shared dict left to adopt.
"""

from __future__ import annotations

import json
import random
import threading
from typing import Any, Callable, Dict, Iterator, List, Mapping, MutableMapping, Optional, Tuple

from repro.errors import ReproError


class MetricError(ReproError):
    """Metric misuse: type conflicts, writes to read-only views."""


class Counter:
    """A locked integer counter."""

    kind = "counter"
    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        # Metric locks stay *bare* threading primitives deliberately:
        # the lockdep sanitizer records held times into histograms, so
        # tracked metric locks would recurse.  They are leaf locks —
        # nothing is ever acquired under them.
        self._value = 0  # guarded-by: _lock
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        return self._value  # unguarded: torn reads of one int are benign

    def inc(self, amount: int = 1) -> int:
        """Add ``amount``; returns the new value."""
        with self._lock:
            self._value += amount
            return self._value

    def set(self, value: int) -> None:
        """Overwrite the value (used by dict-style stats views and
        :meth:`MetricsRegistry.reset`; prefer :meth:`inc`)."""
        with self._lock:
            self._value = int(value)

    def reset(self) -> None:
        self.set(0)

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self._value})"  # unguarded: debug repr


class Gauge:
    """A locked level: goes up and down."""

    kind = "gauge"
    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0  # guarded-by: _lock
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return self._value  # unguarded: torn reads of one float are benign

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    def reset(self) -> None:
        self.set(0.0)

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self._value})"  # unguarded: debug repr


class Histogram:
    """Observation summary with a bounded uniform reservoir.

    The reservoir holds at most ``reservoir_size`` observations; once
    full, observation *i* replaces a random slot with probability
    ``size/i`` (Vitter's algorithm R), so the sample stays uniform over
    the whole stream while memory stays bounded.  The RNG is seeded from
    the metric name, so identical runs produce identical snapshots.
    """

    kind = "histogram"
    __slots__ = ("name", "count", "total", "min", "max",
                 "_reservoir", "_size", "_rng", "_lock")

    def __init__(self, name: str, reservoir_size: int = 256) -> None:
        if reservoir_size < 1:
            raise MetricError(f"histogram {name!r}: reservoir must hold >= 1")
        self.name = name
        self.count = 0   # guarded-by: _lock
        self.total = 0.0  # guarded-by: _lock
        self.min: Optional[float] = None  # guarded-by: _lock
        self.max: Optional[float] = None  # guarded-by: _lock
        self._reservoir: List[float] = []  # guarded-by: _lock
        self._size = reservoir_size
        self._rng = random.Random(name)  # guarded-by: _lock
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if len(self._reservoir) < self._size:
                self._reservoir.append(value)
            else:
                slot = self._rng.randrange(self.count)
                if slot < self._size:
                    self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile (0..1) of the reservoir sample."""
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile {q!r} outside [0, 1]")
        with self._lock:
            if not self._reservoir:
                return None
            ordered = sorted(self._reservoir)
            index = min(len(ordered) - 1, int(q * len(ordered)))
            return ordered[index]

    def summary(self) -> Dict[str, Any]:
        """The snapshot form: count/sum/mean/min/max + p50/p95.

        The whole read happens under the metric's lock so a snapshot
        taken while another thread observes never mixes a new count
        with an old sum.
        """
        with self._lock:
            ordered = sorted(self._reservoir)
            count, total = self.count, self.total
            low, high = self.min, self.max

        def pick(q: float) -> Optional[float]:
            if not ordered:
                return None
            return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

        return {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else 0.0,
            "min": low,
            "max": high,
            "p50": pick(0.5),
            "p95": pick(0.95),
        }

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = None
            self.max = None
            self._reservoir = []
            self._rng = random.Random(self.name)

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"  # unguarded: debug repr


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Thread-safe name → metric table.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same object; asking for an existing
    name as a different type raises :class:`MetricError` (names are the
    contract BENCH files and snapshot diffs are built on).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind: str, factory: Callable[[], Any]):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
            elif metric.kind != kind:
                raise MetricError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"not {kind}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, "counter", lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, "gauge", lambda: Gauge(name))

    def histogram(self, name: str, reservoir_size: int = 256) -> Histogram:
        return self._get_or_create(
            name, "histogram", lambda: Histogram(name, reservoir_size)
        )

    def namespace(self, prefix: str) -> "Namespace":
        """A dotted-prefix view: ``ns.counter("x")`` is
        ``registry.counter(prefix + ".x")``."""
        return Namespace(self, prefix)

    def metrics(self) -> Dict[str, Any]:
        """All registered metric objects by full name."""
        with self._lock:
            return dict(self._metrics)

    def snapshot(self, prefix: str = "") -> Dict[str, Any]:
        """Point-in-time values: counters/gauges as numbers, histograms
        as summary dicts.  ``prefix`` restricts to one namespace."""
        out: Dict[str, Any] = {}
        for name, metric in sorted(self.metrics().items()):
            if prefix and not name.startswith(prefix):
                continue
            if metric.kind == "histogram":
                out[name] = metric.summary()
            else:
                out[name] = metric.value
        return out

    def reset(self, prefix: str = "") -> None:
        """Zero every metric (optionally only under ``prefix``)."""
        for name, metric in self.metrics().items():
            if prefix and not name.startswith(prefix):
                continue
            metric.reset()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


class Namespace:
    """A prefixed view of a registry (one per component instance)."""

    __slots__ = ("registry", "prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self.registry = registry
        self.prefix = prefix

    def _full(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def counter(self, name: str) -> Counter:
        return self.registry.counter(self._full(name))

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(self._full(name))

    def histogram(self, name: str, reservoir_size: int = 256) -> Histogram:
        return self.registry.histogram(self._full(name), reservoir_size)

    def namespace(self, prefix: str) -> "Namespace":
        return Namespace(self.registry, self._full(prefix))

    def snapshot(self) -> Dict[str, Any]:
        """Snapshot of this namespace with the prefix *stripped*."""
        skip = len(self.prefix) + 1 if self.prefix else 0
        return {
            name[skip:]: value
            for name, value in self.registry.snapshot(
                self.prefix + "." if self.prefix else ""
            ).items()
        }

    def reset(self) -> None:
        self.registry.reset(self.prefix + "." if self.prefix else "")


class StatsView(MutableMapping):
    """Dict-compatible view over a namespace's counters.

    The legacy ``component.stats`` dicts survive as these views: reads
    and ``+=`` writes go straight to the underlying registry counters,
    so the same numbers surface through both the old dict idiom and the
    registry snapshot.  Optional *read-only* backing mappings merge in
    counters owned by another component (a processor showing its durable
    store's recovery counters) without making them writable — writing to
    a read-only key raises :class:`MetricError`, which is exactly the
    aliasing bug class this replaces.
    """

    __slots__ = ("_namespace", "_readonly")

    def __init__(self, namespace: Namespace,
                 readonly: Tuple[Mapping, ...] = ()) -> None:
        self._namespace = namespace
        self._readonly = tuple(readonly)

    def _own_counters(self) -> Dict[str, Counter]:
        prefix = self._namespace.prefix + "." if self._namespace.prefix else ""
        skip = len(prefix)
        return {
            name[skip:]: metric
            for name, metric in self._namespace.registry.metrics().items()
            if name.startswith(prefix) and metric.kind == "counter"
        }

    def __getitem__(self, key: str) -> int:
        own = self._own_counters()
        if key in own:
            return own[key].value
        for backing in self._readonly:
            if key in backing:
                return backing[key]
        raise KeyError(key)

    def __setitem__(self, key: str, value: int) -> None:
        if key not in self._own_counters():
            for backing in self._readonly:
                if key in backing:
                    raise MetricError(
                        f"stats key {key!r} is read-only here: it is owned "
                        f"by another component's namespace"
                    )
        self._namespace.counter(key).set(value)

    def __delitem__(self, key: str) -> None:
        raise MetricError("registry-backed stats cannot drop counters")

    def __iter__(self) -> Iterator[str]:
        seen = set(self._own_counters())
        yield from sorted(seen)
        for backing in self._readonly:
            for key in backing:
                if key not in seen:
                    seen.add(key)
                    yield key

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __repr__(self) -> str:
        return f"StatsView({dict(self)!r})"

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy, detached from the live counters — what
        benchmarks should compare instead of mutating live stats."""
        return dict(self)

    def reset(self) -> None:
        """Zero the *owned* counters (read-only backings untouched)."""
        for metric in self._own_counters().values():
            metric.reset()


def diff_snapshots(before: Mapping[str, Any],
                   after: Mapping[str, Any]) -> Dict[str, Any]:
    """Per-name deltas between two :meth:`MetricsRegistry.snapshot`\\ s.

    Numeric values subtract; histogram summaries subtract count/sum and
    keep the after-side quantiles.  Names present on one side only are
    reported against an implicit zero.
    """
    out: Dict[str, Any] = {}
    for name in sorted(set(before) | set(after)):
        b, a = before.get(name), after.get(name)
        if isinstance(a, Mapping) or isinstance(b, Mapping):
            a = a or {}
            b = b or {}
            entry = dict(a)
            entry["count"] = a.get("count", 0) - b.get("count", 0)
            entry["sum"] = a.get("sum", 0.0) - b.get("sum", 0.0)
            out[name] = entry
        else:
            out[name] = (a or 0) - (b or 0)
    return out


def dump_snapshot(path: str, snapshot: Mapping[str, Any]) -> None:
    """Write a snapshot as sorted JSON (the ``repro.obs diff`` input)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(dict(snapshot), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_snapshot(path: str) -> Dict[str, Any]:
    """Read a snapshot written by :func:`dump_snapshot`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise MetricError(f"{path}: snapshot must be a JSON object")
    return payload
