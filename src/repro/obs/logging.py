"""Structured logging sinks: library code never prints uninvited.

Before PR 4 a handful of ``print(`` calls sat inside importable modules
(the shell loop, the analysis CLI); anything embedding those modules got
stdout noise it never asked for.  This module is the replacement: code
emits :class:`LogRecord`\\ s to a *sink*, and only a process entry point
decides whether that sink is a terminal stream, a collecting buffer for
tests, or nothing at all.

The process-default sink is :class:`NullSink` — silence — exactly
because importing a library must not produce output.  CLIs
(``python -m repro.analysis``, ``python -m repro.obs``, the GKBMS
shell) install :class:`StreamSink`\\ s explicitly; that is the "invited"
write.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TextIO

LEVELS = ("debug", "info", "warning", "error")


@dataclass
class LogRecord:
    """One structured event: a level, a message, and typed fields."""

    level: str
    message: str
    logger: str = "repro"
    fields: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """Human form: ``message key=value ...`` (level elided for
        ``info`` so CLI output reads like plain text)."""
        suffix = "".join(
            f" {key}={self.fields[key]}" for key in sorted(self.fields)
        )
        prefix = "" if self.level == "info" else f"{self.level}: "
        return f"{prefix}{self.message}{suffix}"

    def to_json(self) -> str:
        return json.dumps(
            {"level": self.level, "logger": self.logger,
             "message": self.message, **self.fields},
            sort_keys=True,
        )


class LogSink:
    """Sink interface; also usable as a no-op base."""

    def emit(self, record: LogRecord) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class NullSink(LogSink):
    """Swallow everything (the library default)."""

    def emit(self, record: LogRecord) -> None:
        pass


class StreamSink(LogSink):
    """Write rendered records to a text stream (a CLI's choice).

    ``structured=True`` writes JSON lines instead of the human form.
    ``stream=None`` resolves ``sys.stdout``/``sys.stderr`` *at emit
    time* (by ``error_stream`` routing), so capsys-style stream
    swapping in tests keeps working.
    """

    def __init__(self, stream: Optional[TextIO] = None,
                 structured: bool = False,
                 route_errors: bool = True) -> None:
        self._stream = stream
        self._structured = structured
        self._route_errors = route_errors

    def _target(self, record: LogRecord) -> TextIO:
        if self._stream is not None:
            return self._stream
        if self._route_errors and record.level in ("warning", "error"):
            return sys.stderr
        return sys.stdout

    def emit(self, record: LogRecord) -> None:
        text = record.to_json() if self._structured else record.render()
        target = self._target(record)
        target.write(text + "\n")


class CollectingSink(LogSink):
    """Buffer records in memory (tests, EXPLAIN transcripts)."""

    def __init__(self) -> None:
        self.records: List[LogRecord] = []

    def emit(self, record: LogRecord) -> None:
        self.records.append(record)

    def messages(self, level: Optional[str] = None) -> List[str]:
        return [r.message for r in self.records
                if level is None or r.level == level]


_DEFAULT: LogSink = NullSink()


def get_sink() -> LogSink:
    """The process-default sink (a :class:`NullSink` unless a CLI or a
    test installed something)."""
    return _DEFAULT


def set_sink(sink: LogSink) -> LogSink:
    """Install a process-default sink; returns the previous one."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = sink
    return previous


def log(level: str, message: str, logger: str = "repro",
        sink: Optional[LogSink] = None, **fields: Any) -> LogRecord:
    """Emit one structured record to ``sink`` (default: process sink)."""
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r} (choose from {LEVELS})")
    record = LogRecord(level=level, message=message, logger=logger,
                       fields=dict(fields))
    (sink if sink is not None else _DEFAULT).emit(record)
    return record
