"""Span tracing: nested, clock-injectable, JSONL-exportable.

A *span* is one timed unit of work with a name, attributes and a parent
— ``proposition.retract`` inside ``consistency.check_batch`` inside
``gkbms.execute``.  Spans form per-thread trees (a thread-local stack
supplies the parent), wall time comes from an injectable clock (tests
pass a fake and get deterministic durations), and finished spans export
as one JSON object per line — the trace artifact the ``obs-smoke`` CI
job uploads and ``python -m repro.obs`` parses.

The module default tracer is **disabled**: every instrumented call site
in the processors costs one attribute check and a shared no-op context
manager until somebody turns tracing on (:func:`enable`, or installing
an enabled :class:`Tracer` on the component).  Subsystem attribution is
by name prefix: the segment before the first dot (``proposition``,
``deduction``, ``consistency``, ``wal``, ``store``, ``models``) is the
subsystem, mirroring the metric name schema of
:mod:`repro.obs.metrics`.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, TextIO, Union

from repro.errors import ReproError


class TraceError(ReproError):
    """Malformed trace files or span misuse."""


class Span:
    """One timed unit of work; use via ``with tracer.span(...)``."""

    __slots__ = ("tracer", "name", "span_id", "parent_id", "start", "end",
                 "attrs", "status")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int], start: float,
                 attrs: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs
        self.status = "ok"

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    @property
    def subsystem(self) -> str:
        return self.name.split(".", 1)[0]

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes mid-span (counts, cache verdicts, sizes)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._pop(self)
        return False

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        return (f"<Span {self.name} id={self.span_id} "
                f"parent={self.parent_id} {self.status}>")


class _NoopSpan:
    """Shared do-nothing span for disabled tracers (zero allocation)."""

    __slots__ = ()
    name = ""
    attrs: Dict[str, Any] = {}

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Produces spans and records the finished ones, in start order.

    ``clock`` is any zero-argument callable returning a float; the
    default is :func:`time.perf_counter`.  ``max_spans`` bounds memory:
    past it the tracer keeps timing (nesting still works) but drops the
    records and counts them in :attr:`dropped`.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 enabled: bool = True, max_spans: int = 100_000) -> None:
        self.clock = clock if clock is not None else time.perf_counter
        self.enabled = enabled
        self.max_spans = max_spans
        # A bare leaf lock (like the metric locks): span finish runs
        # under it from every serving thread and must never feed back
        # into the sanitizer's own bookkeeping.
        self.spans: List[Span] = []  # guarded-by: _lock
        self.dropped = 0  # guarded-by: _lock
        self._next_id = 1  # guarded-by: _lock
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- span lifecycle ----------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _allocate_id(self) -> int:
        # Locked allocation: server worker threads open spans
        # concurrently, and span ids must stay unique for the parent
        # links in exported trees to resolve.
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    def span(self, name: str, **attrs: Any) -> Union[Span, _NoopSpan]:
        """A context-manager span; nests under the current span."""
        if not self.enabled:
            return _NOOP_SPAN
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        return Span(self, name, self._allocate_id(), parent_id,
                    self.clock(), attrs)

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        span.end = self.clock()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # out-of-order exit: recover rather than corrupt the stack
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            if len(self.spans) < self.max_spans:
                self.spans.append(span)
            else:
                self.dropped += 1

    # -- inspection and export ---------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self.spans = []
            self.dropped = 0

    def subsystem_counts(self) -> Dict[str, int]:
        """Finished spans per subsystem (name prefix before the dot)."""
        counts: Dict[str, int] = {}
        with self._lock:
            for span in self.spans:
                counts[span.subsystem] = counts.get(span.subsystem, 0) + 1
        return counts

    def export_jsonl(self, target: Union[str, TextIO]) -> int:
        """Write finished spans, one JSON object per line; returns the
        span count.  ``target`` is a path or an open text stream."""
        with self._lock:
            records = [span.to_json() for span in self.spans]
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as handle:
                for record in records:
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
        else:
            for record in records:
                target.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)


def load_jsonl(source: Union[str, Iterable[str]]) -> List[Dict[str, Any]]:
    """Parse a JSONL trace back into span records (dicts).

    Raises :class:`TraceError` on unparsable lines or records missing
    the required fields — the ``repro.obs check`` gate depends on a
    malformed trace failing loudly, not half-loading.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = list(source)
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"trace line {lineno}: not JSON ({exc})") from exc
        if not isinstance(record, dict) or "name" not in record \
                or "span_id" not in record:
            raise TraceError(
                f"trace line {lineno}: not a span record (need name/span_id)"
            )
        records.append(record)
    return records


def span_tree(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Arrange span records into forests: each record gains a
    ``children`` list; the returned list holds the roots, in start
    order.  Orphans (parent outside the record set) become roots."""
    by_id: Dict[Any, Dict[str, Any]] = {}
    for record in records:
        copy = dict(record)
        copy["children"] = []
        by_id[copy["span_id"]] = copy
    roots: List[Dict[str, Any]] = []
    for record in by_id.values():
        parent = by_id.get(record.get("parent_id"))
        if parent is None:
            roots.append(record)
        else:
            parent["children"].append(record)
    def start_key(rec: Dict[str, Any]) -> float:
        start = rec.get("start")
        return start if isinstance(start, (int, float)) else 0.0
    for record in by_id.values():
        record["children"].sort(key=start_key)
    roots.sort(key=start_key)
    return roots


def render_tree(roots: List[Dict[str, Any]], max_depth: int = 12) -> str:
    """ASCII rendering of a span forest (the EXPLAIN display form)."""
    lines: List[str] = []

    def visit(record: Dict[str, Any], depth: int) -> None:
        duration = record.get("duration")
        timing = f" {duration * 1000:.3f}ms" if isinstance(
            duration, (int, float)) else ""
        attrs = record.get("attrs") or {}
        detail = "".join(
            f" {key}={attrs[key]}" for key in sorted(attrs)
        )
        marker = "" if depth == 0 else "└─ "
        lines.append(f"{'   ' * depth}{marker}{record['name']}"
                     f"{timing}{detail}")
        if depth + 1 < max_depth:
            for child in record["children"]:
                visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return "\n".join(lines)


#: The process-default tracer: off until someone enables it, so the
#: instrumented hot paths cost a predicate and a shared no-op object.
_DEFAULT = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-default tracer (disabled until :func:`enable`)."""
    return _DEFAULT


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-default tracer; returns the previous one."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = tracer
    return previous


def enable(clock: Optional[Callable[[], float]] = None,
           max_spans: int = 100_000) -> Tracer:
    """Install and return a fresh enabled process-default tracer."""
    tracer = Tracer(clock=clock, enabled=True, max_spans=max_spans)
    set_tracer(tracer)
    return tracer


def disable() -> None:
    """Restore the disabled default (instrumentation back to no-ops)."""
    set_tracer(Tracer(enabled=False))
