"""Selector (integrity constraint) checking.

Two constraint forms exist in the DBPL subset:

- :class:`~repro.languages.dbpl.ast.ForeignKey` — referential
  integrity, the paper's normalisation selector;
- :class:`~repro.languages.dbpl.ast.Predicate` — row predicates given
  as ``field op literal`` conjunctions/disjunctions, compiled by
  :func:`compile_predicate`.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List

from repro.errors import DBPLError, IntegrityError
from repro.languages.dbpl.ast import ForeignKey, Predicate, SelectorDecl

Row = Dict[str, object]

_COMPARISON_RE = re.compile(
    r"^\s*(?P<field>\w+)\s*(?P<op>!=|=|<=|>=|<|>)\s*"
    r"(?P<value>'[^']*'|-?\d+(?:\.\d+)?|\w+)\s*$"
)

_OPS: Dict[str, Callable[[object, object], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _parse_literal(text: str) -> object:
    if text.startswith("'") and text.endswith("'"):
        return text[1:-1]
    try:
        return float(text) if "." in text else int(text)
    except ValueError:
        return text


def compile_predicate(text: str) -> Callable[[Row], bool]:
    """Compile ``a = 'x' and b > 3 or c != d``-style predicates.

    ``or`` binds weaker than ``and``; no parentheses (the DBPL subset
    keeps selector predicates flat).
    """

    def compile_comparison(part: str) -> Callable[[Row], bool]:
        match = _COMPARISON_RE.match(part)
        if match is None:
            raise DBPLError(f"bad selector predicate component: {part!r}")
        field = match.group("field")
        op = _OPS[match.group("op")]
        literal = _parse_literal(match.group("value"))

        def test(row: Row) -> bool:
            value = row.get(field)
            left, right = value, literal
            if isinstance(right, (int, float)) and not isinstance(left, (int, float)):
                try:
                    left = float(str(left)) if "." in str(left) else int(str(left))
                except (TypeError, ValueError):
                    return False
            try:
                return op(left, right)
            except TypeError:
                return op(str(left), str(right))

        return test

    disjuncts = []
    for clause in re.split(r"\s+or\s+", text, flags=re.IGNORECASE):
        tests = [
            compile_comparison(part)
            for part in re.split(r"\s+and\s+", clause, flags=re.IGNORECASE)
        ]
        disjuncts.append(tests)

    def predicate(row: Row) -> bool:
        return any(all(test(row) for test in tests) for tests in disjuncts)

    return predicate


def check_selector(
    selector: SelectorDecl,
    rows_of: Callable[[str], List[Row]],
) -> List[Row]:
    """Rows of the selector's relation violating the constraint."""
    rows = rows_of(selector.relation)
    constraint = selector.constraint
    if isinstance(constraint, ForeignKey):
        target_keys = {
            tuple(row.get(c) for c in constraint.target_columns)
            for row in rows_of(constraint.target)
        }
        return [
            row
            for row in rows
            if tuple(row.get(c) for c in constraint.columns) not in target_keys
        ]
    if isinstance(constraint, Predicate):
        predicate = compile_predicate(constraint.text)
        return [row for row in rows if not predicate(row)]
    raise DBPLError(f"unknown constraint kind {constraint!r}")


def enforce_selector(
    selector: SelectorDecl, rows_of: Callable[[str], List[Row]]
) -> None:
    """Like :func:`check_selector`, but raise on any violation."""
    violations = check_selector(selector, rows_of)
    if violations:
        raise IntegrityError(
            f"selector {selector.name!r} violated by {len(violations)} row(s): "
            f"{violations[:3]}"
        )
