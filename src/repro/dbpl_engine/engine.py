"""The DBPL database engine: relations, transactions, views.

A :class:`Database` is loaded from a :class:`~repro.languages.dbpl.ast.
DBPLModule`; data manipulation runs inside (possibly nested)
:class:`Transaction` contexts.  Keys are enforced immediately; selectors
are *deferred* to commit so a transaction may pass through temporarily
inconsistent states (insert child rows before the parent), exactly like
deferred integrity checking in real database transactions — which the
paper explicitly parallels for decision execution (section 3.2).
"""

from __future__ import annotations

import copy
from typing import Dict, Iterable, List, Optional

from repro.errors import DBPLError, IntegrityError, TransactionError
from repro.dbpl_engine.algebra import Row, evaluate_algebra
from repro.dbpl_engine.constraints import check_selector
from repro.dbpl_engine.types import SurrogateGenerator, coerce_value
from repro.languages.dbpl.ast import (
    ConstructorDecl,
    DBPLModule,
    RelationDecl,
    SelectorDecl,
)


class RelationInstance:
    """Stored extension of one relation, with key enforcement."""

    def __init__(self, decl: RelationDecl) -> None:
        self.decl = decl
        self._rows: Dict[tuple, Row] = {}  # key tuple -> row

    def _key_of(self, row: Row) -> tuple:
        return tuple(row.get(part) for part in self.decl.key)

    def _normalise(self, values: Row) -> Row:
        unknown = set(values) - set(self.decl.field_names())
        if unknown:
            raise DBPLError(
                f"unknown field(s) {sorted(unknown)} for relation "
                f"{self.decl.name!r}"
            )
        row: Row = {}
        for f in self.decl.fields:
            if f.name in values:
                row[f.name] = coerce_value(values[f.name], f.type_name)
            else:
                row[f.name] = None
        for part in self.decl.key:
            if row[part] is None:
                raise IntegrityError(
                    f"key component {part!r} of {self.decl.name!r} is null"
                )
        return row

    def insert(self, values: Row) -> Row:
        """Insert a row; enforce field domains and key uniqueness."""
        row = self._normalise(values)
        key = self._key_of(row)
        if key in self._rows:
            raise IntegrityError(
                f"duplicate key {key} in relation {self.decl.name!r}"
            )
        self._rows[key] = row
        return dict(row)

    def delete(self, key_values: Iterable[object]) -> Row:
        """Delete the row with the given key values."""
        key = tuple(key_values)
        if key not in self._rows:
            raise DBPLError(f"no row with key {key} in {self.decl.name!r}")
        return self._rows.pop(key)

    def update(self, key_values: Iterable[object], changes: Row) -> Row:
        """Update a row; re-key safely."""
        key = tuple(key_values)
        if key not in self._rows:
            raise DBPLError(f"no row with key {key} in {self.decl.name!r}")
        updated = dict(self._rows[key])
        for field_name, value in changes.items():
            if field_name not in updated:
                raise DBPLError(
                    f"unknown field {field_name!r} in {self.decl.name!r}"
                )
            updated[field_name] = coerce_value(
                value, self.decl.field_type(field_name)
            )
        new_key = self._key_of(updated)
        if new_key != key and new_key in self._rows:
            raise IntegrityError(
                f"key update collides with existing key {new_key} "
                f"in {self.decl.name!r}"
            )
        del self._rows[key]
        self._rows[new_key] = updated
        return dict(updated)

    def rows(self) -> List[Row]:
        """Copies of all stored rows."""
        return [dict(row) for row in self._rows.values()]

    def lookup(self, key_values: Iterable[object]) -> Optional[Row]:
        """The row with the given key, or None."""
        row = self._rows.get(tuple(key_values))
        return dict(row) if row is not None else None

    def __len__(self) -> int:
        return len(self._rows)


class Database:
    """All relations, selectors and constructors of loaded modules."""

    def __init__(self) -> None:
        self.relations: Dict[str, RelationInstance] = {}
        self.selectors: Dict[str, SelectorDecl] = {}
        self.constructors: Dict[str, ConstructorDecl] = {}
        self.surrogates = SurrogateGenerator()
        self._transaction_depth = 0

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def load_module(self, module: DBPLModule) -> None:
        """Create everything a DBPL module declares."""
        for decl in module.relations.values():
            self.create_relation(decl)
        for decl in module.selectors.values():
            self.create_selector(decl)
        for decl in module.constructors.values():
            self.create_constructor(decl)

    def create_relation(self, decl: RelationDecl) -> RelationInstance:
        """Instantiate a relation declaration."""
        if decl.name in self.relations or decl.name in self.constructors:
            raise DBPLError(f"duplicate relation name {decl.name!r}")
        instance = RelationInstance(decl)
        self.relations[decl.name] = instance
        return instance

    def create_selector(self, decl: SelectorDecl) -> SelectorDecl:
        """Register an integrity constraint."""
        if decl.name in self.selectors:
            raise DBPLError(f"duplicate selector name {decl.name!r}")
        if decl.relation not in self.relations:
            raise DBPLError(
                f"selector {decl.name!r} guards unknown relation {decl.relation!r}"
            )
        self.selectors[decl.name] = decl
        return decl

    def create_constructor(self, decl: ConstructorDecl) -> ConstructorDecl:
        """Register a view over known relations."""
        if decl.name in self.constructors or decl.name in self.relations:
            raise DBPLError(f"duplicate constructor name {decl.name!r}")
        for base in decl.expression.relations():
            if base not in self.relations and base not in self.constructors:
                raise DBPLError(
                    f"constructor {decl.name!r} reads unknown relation {base!r}"
                )
        self.constructors[decl.name] = decl
        return decl

    def drop(self, name: str) -> None:
        """Remove a relation, selector or constructor by name."""
        for registry in (self.relations, self.selectors, self.constructors):
            if name in registry:
                del registry[name]
                return
        raise DBPLError(f"nothing named {name!r} to drop")

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------

    def rows(self, name: str) -> List[Row]:
        """Rows of a base relation or a constructor."""
        if name in self.relations:
            return self.relations[name].rows()
        if name in self.constructors:
            return evaluate_algebra(
                self.constructors[name].expression, self.rows
            )
        raise DBPLError(f"unknown relation or constructor {name!r}")

    def relation(self, name: str) -> RelationInstance:
        """The stored instance of a base relation."""
        try:
            return self.relations[name]
        except KeyError:
            raise DBPLError(f"unknown base relation {name!r}") from None

    def fresh_surrogate(self, relation: str = "") -> str:
        """Mint a surrogate value (per-relation namespace)."""
        return self.surrogates.fresh(relation)

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def violations(self) -> Dict[str, List[Row]]:
        """All selector violations in the current state."""
        out: Dict[str, List[Row]] = {}
        for name, selector in self.selectors.items():
            bad = check_selector(selector, self.rows)
            if bad:
                out[name] = bad
        return out

    def check_integrity(self) -> None:
        """Raise IntegrityError when any selector is violated."""
        violations = self.violations()
        if violations:
            details = "; ".join(
                f"{name}: {len(rows)} row(s)" for name, rows in violations.items()
            )
            raise IntegrityError(f"integrity violated - {details}")

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def transaction(self) -> "Transaction":
        """Open a (nestable) transaction context."""
        return Transaction(self)

    def _snapshot(self) -> Dict[str, Dict[tuple, Row]]:
        return {
            name: copy.deepcopy(instance._rows)
            for name, instance in self.relations.items()
        }

    def _restore(self, snapshot: Dict[str, Dict[tuple, Row]]) -> None:
        for name, rows in snapshot.items():
            if name in self.relations:
                self.relations[name]._rows = copy.deepcopy(rows)
        for name in set(self.relations) - set(snapshot):
            self.relations[name]._rows = {}


class Transaction:
    """Nested transaction with deferred integrity checking.

    Inner transactions act as savepoints: aborting one restores the
    state at its start without touching the outer work; integrity is
    checked when the *outermost* transaction commits.
    """

    def __init__(self, database: Database) -> None:
        self._db = database
        self._snapshot: Optional[Dict] = None
        self._active = False

    def __enter__(self) -> "Transaction":
        self._snapshot = self._db._snapshot()
        self._db._transaction_depth += 1
        self._active = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._active:
            return False
        self._active = False
        self._db._transaction_depth -= 1
        if exc_type is not None:
            self._db._restore(self._snapshot or {})
            return False
        if self._db._transaction_depth == 0:
            try:
                self._db.check_integrity()
            except IntegrityError:
                self._db._restore(self._snapshot or {})
                raise
        return False

    def abort(self) -> None:
        """Explicitly roll back to the transaction's start."""
        if not self._active:
            raise TransactionError("transaction is not active")
        self._db._restore(self._snapshot or {})
