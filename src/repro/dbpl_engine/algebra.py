"""Evaluation of constructor (view) expressions.

Rows are plain ``dict``s keyed by column name; relations come from a
*resolver* mapping relation names to row lists, so the evaluator works
for both base relations and nested constructors.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import DBPLError
from repro.languages.dbpl.ast import (
    AlgebraExpr,
    Join,
    Project,
    RelationRef,
    Rename,
    Select,
    Union,
)

Row = Dict[str, object]
Resolver = Callable[[str], List[Row]]


def evaluate_algebra(expr: AlgebraExpr, resolve: Resolver) -> List[Row]:
    """Evaluate ``expr``; duplicate rows are eliminated (set semantics)."""
    rows = _evaluate(expr, resolve)
    seen = set()
    out: List[Row] = []
    for row in rows:
        key = tuple(sorted(row.items()))
        if key not in seen:
            seen.add(key)
            out.append(row)
    return out


def _evaluate(expr: AlgebraExpr, resolve: Resolver) -> List[Row]:
    if isinstance(expr, RelationRef):
        return [dict(row) for row in resolve(expr.name)]
    if isinstance(expr, Project):
        rows = _evaluate(expr.source, resolve)
        out = []
        for row in rows:
            missing = [c for c in expr.columns if c not in row]
            if missing:
                raise DBPLError(f"projection on unknown column(s) {missing}")
            out.append({c: row[c] for c in expr.columns})
        return out
    if isinstance(expr, Select):
        rows = _evaluate(expr.source, resolve)
        out = []
        for row in rows:
            if all(str(row.get(c)) == v for c, v in expr.equalities):
                out.append(row)
        return out
    if isinstance(expr, Join):
        left = _evaluate(expr.left, resolve)
        right = _evaluate(expr.right, resolve)
        # hash join on the ON columns
        index: Dict[tuple, List[Row]] = {}
        for row in right:
            key = tuple(row.get(c) for c in expr.on)
            index.setdefault(key, []).append(row)
        out = []
        for row in left:
            key = tuple(row.get(c) for c in expr.on)
            for match in index.get(key, ()):
                merged = dict(match)
                merged.update(row)
                out.append(merged)
        return out
    if isinstance(expr, Union):
        left = _evaluate(expr.left, resolve)
        right = _evaluate(expr.right, resolve)
        columns = set()
        for row in left + right:
            columns |= set(row)
        # pad to a common heading so union is well-defined
        return [
            {c: row.get(c) for c in sorted(columns)} for row in left + right
        ]
    if isinstance(expr, Rename):
        rows = _evaluate(expr.source, resolve)
        mapping = dict(expr.mapping)
        out = []
        for row in rows:
            out.append({mapping.get(c, c): v for c, v in row.items()})
        return out
    raise DBPLError(f"unknown algebra node {expr!r}")
