"""Value domains for the DBPL engine.

The engine is deliberately loosely typed — DBPL field types mostly
document intent — but two domains get real behaviour:

- ``Surrogate``: system-generated identifiers.  The paper's mapping
  introduces an "artificial paperkey attribute (initially required to
  map the object-oriented TaxisDL model which does not have keys)";
  :class:`SurrogateGenerator` mints those values deterministically.
- ``INT`` / ``REAL``: numeric coercion so comparisons behave.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.errors import DBPLError


class SurrogateGenerator:
    """Mints unique surrogate values, one namespace per relation."""

    def __init__(self, prefix: str = "S") -> None:
        self._prefix = prefix
        self._counters: dict = {}

    def fresh(self, namespace: str = "") -> str:
        """A new unique surrogate in a namespace."""
        counter = self._counters.setdefault(
            namespace, itertools.count(1)
        )
        stem = f"{namespace}:" if namespace else ""
        return f"{stem}{self._prefix}{next(counter)}"

    def reset(self) -> None:
        """Restart all counters (tests only)."""
        self._counters.clear()


_NUMERIC_TYPES = {"INT", "INTEGER", "REAL", "NUMBER"}


def coerce_value(value: Any, type_name: str) -> Any:
    """Coerce a raw value into the declared field domain."""
    upper = (type_name or "").upper()
    if upper in _NUMERIC_TYPES:
        if isinstance(value, (int, float)):
            return value
        try:
            text = str(value)
            return float(text) if "." in text else int(text)
        except (TypeError, ValueError) as exc:
            raise DBPLError(
                f"value {value!r} does not fit numeric domain {type_name}"
            ) from exc
    if upper == "BOOL":
        if isinstance(value, bool):
            return value
        return str(value).lower() in ("true", "yes", "1")
    return value if isinstance(value, (int, float, bool)) else str(value)
