"""The DBPL execution engine (S10).

An in-memory relational engine that executes the DBPL modules generated
by the mapping assistants: relations with enforced keys, selectors
(integrity constraints) checked at transaction commit, constructors
(views) evaluated over a small relational algebra, and nested
transactions with rollback — "the decision instance defining a,
possibly nested, transaction" (section 3.2).

Having an executable target matters for the reproduction: mapping
correctness is asserted by *running* the generated code (inserting
tuples, querying constructors, watching selectors fire), not just by
inspecting code frames.
"""

from repro.dbpl_engine.types import SurrogateGenerator, coerce_value
from repro.dbpl_engine.algebra import evaluate_algebra
from repro.dbpl_engine.constraints import check_selector, compile_predicate
from repro.dbpl_engine.engine import Database, RelationInstance, Transaction

__all__ = [
    "SurrogateGenerator",
    "coerce_value",
    "evaluate_algebra",
    "check_selector",
    "compile_predicate",
    "Database",
    "RelationInstance",
    "Transaction",
]
