"""Query classes: queries as classes with computed extents.

Section 3.1: "Queries are built using (open or closed) first-order
logic expressions over CML objects."  In the ConceptBase tradition, an
*open* query is packaged as a **query class**: a class whose membership
is defined by a first-order condition over a base class.  Its extent is
computed on demand; materialising it asserts the classification links
so downstream consumers (relational views, constraints, decisions) can
treat the answers like any other class extent.

Example::

    qc = QueryCatalog(conceptbase)
    qc.define("UnsentInvitations", "i", "Invitation",
              "not A(i, sent, yes)")
    qc.extent("UnsentInvitations")        # computed
    qc.materialise("UnsentInvitations")   # asserted as instanceof links
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ReproError
from repro.assertions.ast import Expression
from repro.assertions.evaluator import Evaluator
from repro.assertions.parser import parse_assertion
from repro.propositions.processor import PropositionProcessor
from repro.propositions.proposition import Pattern


@dataclass(frozen=True)
class QueryClass:
    """A class whose extent is defined by a membership condition."""

    name: str
    variable: str
    base_class: str
    condition: Expression
    source: str

    def __repr__(self) -> str:
        return (
            f"QueryClass({self.name}: {self.variable}/{self.base_class} "
            f"| {self.source})"
        )


class QueryCatalog:
    """Defines, evaluates and materialises query classes."""

    def __init__(self, processor: PropositionProcessor,
                 include_deduced: bool = True) -> None:
        self.processor = processor
        self.evaluator = Evaluator(processor, include_deduced=include_deduced)
        self._queries: Dict[str, QueryClass] = {}

    # ------------------------------------------------------------------

    def define(self, name: str, variable: str, base_class: str,
               condition: str, document: bool = True) -> QueryClass:
        """Define a query class over ``base_class``.

        ``condition`` is an assertion whose free variable ``variable``
        ranges over the base class's extent.
        """
        if name in self._queries:
            raise ReproError(f"duplicate query class {name!r}")
        if not self.processor.is_class(base_class):
            raise ReproError(f"{base_class!r} is not a class")
        expression = parse_assertion(condition)
        free = expression.free_variables()
        if variable not in free and free:
            raise ReproError(
                f"condition of {name!r} never uses variable {variable!r} "
                f"(free: {sorted(free)})"
            )
        query = QueryClass(name, variable, base_class, expression, condition)
        self._queries[name] = query
        if document:
            # the query class is itself a class, specialising its base
            if not self.processor.exists(name):
                self.processor.define_class(name, isa=[base_class])
            holder = f"Assertion_query_{name}"
            if not self.processor.exists(holder):
                self.processor.tell_individual(holder,
                                               in_class="AssertionObject")
            self.processor.tell_link(name, "constraint", holder,
                                     of_class="ConstraintAttribute")
        return query

    def get(self, name: str) -> QueryClass:
        """Look a query class up by name."""
        try:
            return self._queries[name]
        except KeyError:
            raise ReproError(f"unknown query class {name!r}") from None

    def names(self) -> List[str]:
        """The defined query class names."""
        return list(self._queries)

    # ------------------------------------------------------------------

    def extent(self, name: str) -> List[str]:
        """Compute the query class's extent (no side effects)."""
        query = self.get(name)
        members = []
        for candidate in sorted(self.processor.instances_of(query.base_class)):
            if candidate == query.name:
                continue
            if self.evaluator.evaluate(query.condition,
                                       {query.variable: candidate}):
                members.append(candidate)
        return members

    def ask(self, name: str, candidate: str) -> bool:
        """Membership test for one object."""
        query = self.get(name)
        if not self.processor.is_instance_of(candidate, query.base_class):
            return False
        return self.evaluator.evaluate(query.condition,
                                       {query.variable: candidate})

    def materialise(self, name: str) -> Dict[str, int]:
        """Assert the computed extent as classification links; stale
        members (asserted earlier, no longer satisfying the condition)
        are retracted.  Returns change counts."""
        query = self.get(name)
        if not self.processor.exists(query.name):
            raise ReproError(
                f"query class {name!r} was defined with document=False; "
                f"materialisation needs the class in the base"
            )
        current = self.extent(name)
        asserted = {
            prop.source: prop.pid
            for prop in self.processor.store.retrieve(
                Pattern(label="instanceof", destination=query.name)
            )
        }
        added = 0
        for member in current:
            if member not in asserted:
                self.processor.tell_instanceof(member, query.name)
                added += 1
        removed = 0
        wanted = set(current)
        for member, pid in asserted.items():
            if member not in wanted:
                self.processor.retract(pid)
                removed += 1
        return {"added": added, "removed": removed}
