"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors.
The sub-hierarchy mirrors the ConceptBase/GKBMS layering described in
DESIGN.md: proposition-level errors, language errors, engine errors and
GKBMS (decision-level) errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TimeError(ReproError):
    """Invalid temporal value, interval or relation."""


class PropositionError(ReproError):
    """Malformed proposition or illegal proposition-base operation."""


class UnknownPropositionError(PropositionError):
    """A proposition id or name was referenced but is not in the base."""


class AxiomViolation(PropositionError):
    """A CML axiom rejected a proposition (e.g. dangling instanceof)."""

    def __init__(self, axiom: str, message: str) -> None:
        super().__init__(f"[{axiom}] {message}")
        self.axiom = axiom


class PersistenceError(ReproError):
    """A durable representation (snapshot, WAL, dump file) is missing,
    malformed, truncated or failed a checksum — the on-disk counterpart
    of :class:`PropositionError`."""


class AssertionSyntaxError(ReproError):
    """The assertion-language parser rejected an expression."""

    def __init__(self, message: str, position: int = -1) -> None:
        suffix = f" (at offset {position})" if position >= 0 else ""
        super().__init__(message + suffix)
        self.position = position


class EvaluationError(ReproError):
    """The assertion evaluator met an unbound variable or bad operand."""


class DeductionError(ReproError):
    """Rule compilation or evaluation failed (e.g. unstratified negation)."""


class AnalysisError(ReproError):
    """Static analysis found error-level diagnostics; carries them.

    Raised by strict mode (``ConceptBase(strict=True)``) when a rule,
    constraint or frame would be committed despite error diagnostics.
    """

    def __init__(self, diagnostics: list | None = None) -> None:
        self.diagnostics = list(diagnostics or [])
        codes = ", ".join(
            sorted({getattr(d, "code", "?") for d in self.diagnostics})
        )
        detail = f" [{codes}]" if codes else ""
        super().__init__(
            f"static analysis found {len(self.diagnostics)} "
            f"error-level diagnostic(s){detail}"
        )


class ConsistencyError(ReproError):
    """A constraint was violated; carries the violating objects."""

    def __init__(self, constraint: str, violations: list | None = None) -> None:
        self.constraint = constraint
        self.violations = list(violations or [])
        detail = f": {self.violations}" if self.violations else ""
        super().__init__(f"constraint {constraint!r} violated{detail}")


class LanguageError(ReproError):
    """Error in one of the DAIDA language substrates (TaxisDL, DBPL)."""


class DBPLError(ReproError):
    """Error raised by the DBPL execution engine."""


class IntegrityError(DBPLError):
    """A DBPL selector (integrity constraint) or key was violated."""


class TransactionError(DBPLError):
    """Illegal transaction usage (nesting, commit/abort state)."""


class ModelError(ReproError):
    """Error in model lattice construction or configuration."""


class GKBMSError(ReproError):
    """Base class for decision-level errors."""


class DecisionError(GKBMSError):
    """A design decision could not be executed or documented."""


class NotApplicableError(DecisionError):
    """Decision class preconditions do not hold for the given inputs."""


class ObligationError(GKBMSError):
    """A verification obligation is unsatisfied (no proof, no signature)."""


class BacktrackError(GKBMSError):
    """Selective backtracking was impossible (e.g. unknown decision)."""


class VersionError(GKBMSError):
    """Version or configuration management failure."""


class RMSError(ReproError):
    """Reason-maintenance failure (e.g. contradictory premises)."""


class ServerError(ReproError):
    """Base class for GKBMS service-layer errors: anything that makes a
    request fail without implying the knowledge base itself is wrong."""


class ServerOverloaded(ServerError):
    """Admission control shed the request: the in-flight cap, waiting
    queue or commit queue is full.  Retry later; nothing was applied."""


class ServerRestarting(ServerError):
    """The service is recovering from a durability fault (the supervisor
    is reopening the store and rebuilding state).  Retryable: nothing
    this request asked for was applied, and a write re-submitted with
    its idempotency token applies exactly once even if the original
    attempt reached the commit log before the fault."""


class ServerReadOnly(ServerError):
    """The supervisor exhausted its restart budget (a crash loop) and
    degraded the service to read-only instead of flapping.  Reads still
    work against the last recovered state; writes are refused until an
    operator intervenes."""


class ConnectionLost(ServerError):
    """The client's transport died mid-request: connection refused,
    reset, closed, or a per-request socket timeout expired.  The request
    outcome is unknown — safe to retry only for reads or for writes
    carrying an idempotency token."""


class DeadlineExceeded(ServerError):
    """The request's deadline passed before it could be admitted or
    committed.  Nothing was applied."""


class LockTimeout(ServerError):
    """A lock acquisition budget expired: the serving lock's writer (or
    a queue of writers) held it past the caller's deadline.  Nothing was
    applied; the caller still holds nothing and may retry."""


class SessionError(ServerError):
    """Unknown or misused session (bad id, nested begin, commit without
    begin, session cap reached)."""


class CommitConflict(ServerError):
    """First-committer-wins validation rejected a commit: a proposition
    key in its write-set was committed by another session after this
    session pinned its read epoch.  Re-pin (begin again) and retry."""


class ProtocolError(ServerError):
    """A malformed wire frame: not JSON, not an object, missing required
    fields, or oversized."""
