"""repro — reproduction of Jarke & Rose (SIGMOD 1988), "Managing
Knowledge about Information System Evolution".

Top-level entry points:

- :class:`repro.ConceptBase` — the conceptual model base management
  system (proposition/object/model processors, inference engines,
  consistency checker; fig 3-1);
- :class:`repro.GKBMS` — the Global Knowledge Base Management System:
  decision-based documentation of information system evolution built on
  the ConceptBase kernel (sections 2 and 3.2/3.3);
- :mod:`repro.scenario` — the paper's meeting-organisation running
  example.

See README.md for a tour and DESIGN.md for the system inventory.
"""

from repro.conceptbase import ConceptBase
from repro.core.gkbms import GKBMS
from repro.queries import QueryCatalog, QueryClass

__version__ = "1.0.0"

__all__ = ["ConceptBase", "GKBMS", "QueryCatalog", "QueryClass",
           "__version__"]
