"""Dependency graphs over the decision documentation (figs 2-2 to 2-4).

"The graph in fig 2-2 shows dependencies created by the decision for
move-down, relating the new objects to existing ones and to a
representation of the applied tool."

The graph is *derived* from the documented decision instances — exactly
what the paper means by using lemma generation to create "dependency
graph objects" — and supports zooming (radius-bounded subgraphs around
a focus, cf. the remark at the end of section 2.1 that "the GKBMS must
have some kind of zooming facility for both design objects and design
decisions").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.decisions import DecisionRecord
from repro.models.display.graph_dag import Edge, GraphDAGRenderer


class DependencyGraph:
    """Typed dependency edges derived from decision records."""

    def __init__(self, records: Iterable[DecisionRecord],
                 include_retracted: bool = False) -> None:
        self.edges: List[Edge] = []
        self._retracted_nodes: Set[str] = set()
        for record in records:
            if record.is_retracted and not include_retracted:
                continue
            if record.is_retracted:
                self._retracted_nodes.add(record.did)
            for role, value in record.inputs.items():
                self._add((value, role, record.did))
            for role, names in record.outputs.items():
                for name in names:
                    self._add((record.did, role, name))
            if record.tool:
                self._add((record.did, "by", record.tool))
            for assumption in record.assumptions:
                self._add((record.did, "assumes", assumption))

    def _add(self, edge: Edge) -> None:
        if edge not in self.edges:
            self.edges.append(edge)

    # ------------------------------------------------------------------

    def nodes(self) -> List[str]:
        """All node names in edge order."""
        seen: Dict[str, None] = {}
        for source, _label, destination in self.edges:
            seen.setdefault(source, None)
            seen.setdefault(destination, None)
        return list(seen)

    def successors(self, node: str) -> List[Tuple[str, str]]:
        """Outgoing (label, target) pairs."""
        return [(label, dst) for src, label, dst in self.edges if src == node]

    def predecessors(self, node: str) -> List[Tuple[str, str]]:
        """Incoming (label, source) pairs."""
        return [(label, src) for src, label, dst in self.edges if dst == node]

    def downstream(self, node: str) -> Set[str]:
        """Everything transitively derived from ``node``."""
        out: Set[str] = set()
        frontier = [node]
        while frontier:
            current = frontier.pop()
            for _label, nxt in self.successors(current):
                if nxt not in out:
                    out.add(nxt)
                    frontier.append(nxt)
        return out

    def upstream(self, node: str) -> Set[str]:
        """Everything ``node`` transitively derives from."""
        out: Set[str] = set()
        frontier = [node]
        while frontier:
            current = frontier.pop()
            for _label, prv in self.predecessors(current):
                if prv not in out:
                    out.add(prv)
                    frontier.append(prv)
        return out

    # ------------------------------------------------------------------
    # Zooming
    # ------------------------------------------------------------------

    def zoom(self, focus: str, radius: int = 1) -> "DependencyGraph":
        """Subgraph within ``radius`` edges of ``focus`` (both ways)."""
        keep: Set[str] = {focus}
        frontier = {focus}
        for _step in range(radius):
            next_frontier: Set[str] = set()
            for node in frontier:
                for _label, other in self.successors(node):
                    next_frontier.add(other)
                for _label, other in self.predecessors(node):
                    next_frontier.add(other)
            next_frontier -= keep
            keep |= next_frontier
            frontier = next_frontier
        sub = DependencyGraph([])
        sub.edges = [
            edge for edge in self.edges if edge[0] in keep and edge[2] in keep
        ]
        sub._retracted_nodes = self._retracted_nodes & keep
        return sub

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def renderer(self, highlight: Optional[Iterable[str]] = None) -> GraphDAGRenderer:
        """A GraphDAGRenderer over these edges."""
        renderer = GraphDAGRenderer()
        renderer.extend(self.edges)
        renderer.highlight |= set(highlight or ())
        renderer.highlight |= self._retracted_nodes
        return renderer

    def to_ascii(self, highlight: Optional[Iterable[str]] = None) -> str:
        """Layered ASCII rendering."""
        return self.renderer(highlight).to_ascii()

    def to_dot(self) -> str:
        """Graphviz DOT rendering."""
        return self.renderer().to_dot()
