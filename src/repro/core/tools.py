"""Design tool specifications (S12).

Section 2.2: "Design tools assist the user in executing design
decisions.  Therefore, each design decision class is linked to a set of
tool specifications.  A decision class may be fully supported by a
tool, or the tool may just aid manual decision execution.  In the
latter case, verification obligations are defined by the decision class
for those constraints not guaranteed by the tool."

A :class:`ToolSpec` wraps an executable *apply* function (the actual
transformation), an optional *undo* function (used by selective
backtracking to remove language-level artefacts), and the set of
obligation names the tool *guarantees* — obligations it guarantees need
no proof when the decision is executed by this tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional

from repro.errors import DecisionError
from repro.propositions.processor import PropositionProcessor

#: apply(gkbms, inputs: dict[str, str], params: dict) -> outputs: dict[str, list[str]]
ApplyFn = Callable[..., Dict[str, List[str]]]
#: undo(gkbms, record) -> None
UndoFn = Callable[..., None]

AUTOMATION_LEVELS = ("automatic", "semi-automatic", "manual")


@dataclass(frozen=True)
class ToolSpec:
    """An executable design tool specification."""

    name: str
    description: str = ""
    automation: str = "semi-automatic"
    guarantees: FrozenSet[str] = frozenset()
    apply: Optional[ApplyFn] = None
    undo: Optional[UndoFn] = None

    def __post_init__(self) -> None:
        if self.automation not in AUTOMATION_LEVELS:
            raise DecisionError(
                f"tool {self.name!r}: automation must be one of "
                f"{AUTOMATION_LEVELS}, got {self.automation!r}"
            )

    @property
    def is_manual(self) -> bool:
        """Only aids manual execution?"""
        return self.automation == "manual"

    def guarantees_obligation(self, obligation_name: str) -> bool:
        """Does the tool discharge this obligation by construction?"""
        return obligation_name in self.guarantees


class ToolRegistry:
    """Registered tools, reflected into the knowledge base.

    Each tool becomes an instance of the ``DesignTool`` metaclass...
    strictly, of a simple class ``ToolSpecification`` that instantiates
    it — tools in the paper live at the class/specification level
    (fig 2-6 associates decision *classes* with tool specifications).
    """

    def __init__(self, processor: PropositionProcessor) -> None:
        self.processor = processor
        self._tools: Dict[str, ToolSpec] = {}

    def register(self, tool: ToolSpec) -> ToolSpec:
        """Register a tool and reflect it into the base."""
        if tool.name in self._tools:
            raise DecisionError(f"duplicate tool name {tool.name!r}")
        self._tools[tool.name] = tool
        if not self.processor.exists(tool.name):
            # Each tool specification is a class (an instance of the
            # DesignTool metaclass) whose tokens are the tool
            # *applications* documented by executed decisions.
            self.processor.define_class(tool.name, level="SimpleClass")
            self.processor.tell_instanceof(tool.name, "DesignTool")
        return tool

    def get(self, name: str) -> ToolSpec:
        """Look a tool up by name."""
        try:
            return self._tools[name]
        except KeyError:
            raise DecisionError(f"unknown tool {name!r}") from None

    def names(self) -> List[str]:
        """All registered tool names."""
        return list(self._tools)

    def __contains__(self, name: str) -> bool:
        return name in self._tools
