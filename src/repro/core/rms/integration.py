"""RMS integration with the GKBMS decision structure (section 3.3.3).

Two constructions:

- :class:`DecisionRMS` — the straightforward encoding: every decision
  instance is a JTMS *assumption*; every design object it produced is
  justified by (decision + its inputs).  Retracting the decision's
  assumption makes all its consequences OUT automatically — "automatic
  propagation of the consequences of high-level changes".
- :class:`PartitionedDecisionRMS` — the paper's proposed combination
  with GKBMS abstraction: one small JTMS per decision *scope* (e.g.
  per mapped hierarchy or per module), with interface nodes linking
  scopes.  A retraction relabels only the affected partition and the
  partitions reachable through its interface — bounding the dependency
  network each RMS run touches, which is the whole point given that
  "current RMS can handle only fairly small dependency networks
  efficiently".
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.core.decisions import DecisionRecord
from repro.core.rms.jtms import JTMS


class DecisionRMS:
    """One flat JTMS over the whole decision history."""

    def __init__(self) -> None:
        self.jtms = JTMS()
        self._objects: Set[str] = set()

    def load(self, records: Iterable[DecisionRecord]) -> None:
        """Encode a decision history into the JTMS."""
        for record in records:
            self.add_decision(record)

    def add_decision(self, record: DecisionRecord) -> None:
        """Encode one decision: assumption + justifications."""
        self.jtms.add_assumption(record.did)
        if record.is_retracted:
            self.jtms.retract(record.did)
        for value in set(record.inputs.values()):
            if value not in self.jtms.nodes():
                self.jtms.add_premise(value)
        in_list = [record.did] + sorted(set(record.inputs.values()))
        for output in record.all_outputs():
            self._objects.add(output)
            self.jtms.justify(output, in_list=in_list,
                              informant=record.decision_class)

    def retract_decision(self, did: str) -> Set[str]:
        """Retract; returns the design objects that fell OUT."""
        before = self.jtms.believed()
        self.jtms.retract(did)
        return (before - self.jtms.believed()) & self._objects

    def believed_objects(self) -> Set[str]:
        """Design objects currently IN."""
        return self.jtms.believed() & self._objects

    def is_current(self, name: str) -> bool:
        """Is the design object currently believed?"""
        return self.jtms.is_in(name)


def suggest_retractions(records: Iterable[DecisionRecord],
                        conflicting_objects: Iterable[str]) -> List[str]:
    """Dependency-directed backtracking advice (Doyle [DOYL79]).

    Given design objects that cannot coexist (e.g. the associative-key
    implementation and the Minutes relation of fig 2-4), load the
    history into a JTMS, assert a contradiction justified by their
    conjunction, and return the decision ids underlying it — retracting
    any one resolves the conflict.  Ordered least-damage-first: the
    latest culprit (fewest consequents to undo) leads, which in the
    scenario makes the key decision the recommended retraction.
    """
    rms = DecisionRMS()
    records = list(records)
    rms.load(records)
    conflict = list(conflicting_objects)
    rms.jtms.justify("conflict!", in_list=conflict,
                     informant="dependency-directed backtracking")
    rms.jtms.mark_contradiction("conflict!")
    culprits: Set[str] = set()
    for assumption_set in rms.jtms.diagnose():
        culprits |= assumption_set
    ticks = {record.did: record.tick for record in records}
    return sorted(culprits, key=lambda did: (-ticks.get(did, 0), did))


class PartitionedDecisionRMS:
    """One JTMS per decision scope, linked by interface premises.

    ``scope_of`` maps a decision record to its partition key (default:
    the decision class — a coarse but effective abstraction; callers
    can partition by mapped hierarchy, module, developer, ...).

    An object produced in scope A and consumed in scope B becomes an
    *interface node*: scope B sees it as a premise whose truth is
    synchronised from scope A on demand.  Retraction relabels the home
    scope and then only propagates across interfaces whose value
    actually changed.
    """

    def __init__(self, scope_of: Optional[Callable[[DecisionRecord], str]] = None) -> None:
        self._scope_of = scope_of or (lambda record: record.decision_class)
        self.partitions: Dict[str, JTMS] = {}
        self._home: Dict[str, str] = {}  # object -> producing scope
        self._imports: Dict[str, Set[str]] = {}  # scope -> imported objects
        self._decision_scope: Dict[str, str] = {}

    def _partition(self, scope: str) -> JTMS:
        if scope not in self.partitions:
            self.partitions[scope] = JTMS()
            self._imports[scope] = set()
        return self.partitions[scope]

    def load(self, records: Iterable[DecisionRecord]) -> None:
        """Encode a decision history across partitions."""
        for record in records:
            self.add_decision(record)

    def add_decision(self, record: DecisionRecord) -> None:
        """Encode one decision in its scope's JTMS."""
        scope = self._scope_of(record)
        jtms = self._partition(scope)
        self._decision_scope[record.did] = scope
        jtms.add_assumption(record.did)
        if record.is_retracted:
            jtms.retract(record.did)
        for value in set(record.inputs.values()):
            home = self._home.get(value)
            if home is None or home == scope:
                if value not in jtms.nodes():
                    jtms.add_premise(value)
            else:
                # interface: import the foreign object as a premise
                # whose truth mirrors the home partition
                if value not in jtms.nodes():
                    jtms.add_premise(value)
                self._imports[scope].add(value)
                if not self.partitions[home].is_in(value):
                    jtms.retract(value)
        in_list = [record.did] + sorted(set(record.inputs.values()))
        for output in record.all_outputs():
            jtms.justify(output, in_list=in_list,
                         informant=record.decision_class)
            self._home.setdefault(output, scope)

    # ------------------------------------------------------------------

    def retract_decision(self, did: str) -> Set[str]:
        """Retract in the home partition, then propagate only through
        interfaces whose objects changed truth value."""
        scope = self._decision_scope.get(did)
        if scope is None:
            from repro.errors import RMSError

            raise RMSError(f"unknown decision {did!r}")
        fell_out: Set[str] = set()
        jtms = self.partitions[scope]
        before = jtms.believed()
        jtms.retract(did)
        wave = (before - jtms.believed()) & set(self._home)
        fell_out |= wave
        # Propagate across interfaces wave by wave, with one batched
        # relabelling per affected partition per wave.
        while wave:
            per_scope: Dict[str, Set[str]] = {}
            for obj in wave:
                for other_scope, imports in self._imports.items():
                    if obj in imports and self.partitions[other_scope].is_in(obj):
                        per_scope.setdefault(other_scope, set()).add(obj)
            wave = set()
            for other_scope, objs in per_scope.items():
                other = self.partitions[other_scope]
                other_before = other.believed()
                other.retract_many(objs)
                newly_out = (other_before - other.believed()) & set(self._home)
                fell_out |= newly_out
                wave |= newly_out
        return fell_out

    def is_current(self, name: str) -> bool:
        """Is the object believed in its home partition?"""
        home = self._home.get(name)
        if home is not None:
            return self.partitions[home].is_in(name)
        return any(j.is_in(name) for j in self.partitions.values())

    def believed_objects(self) -> Set[str]:
        """Design objects believed in their home partitions."""
        believed: Set[str] = set()
        for name, home in self._home.items():
            if self.partitions[home].is_in(name):
                believed.add(name)
        return believed

    def partition_sizes(self) -> Dict[str, int]:
        """Node count per partition (the abstraction payoff)."""
        return {scope: len(jtms) for scope, jtms in self.partitions.items()}

    def total_visits(self) -> int:
        """Justification visits summed over partitions."""
        return sum(j.stats["visits"] for j in self.partitions.values())
