"""An assumption-based truth maintenance system after de Kleer [DEKL86].

Each node carries a *label*: the set of minimal consistent assumption
environments under which it holds.  Justifications propagate labels
(cross-product union of antecedent environments); *nogoods* prune
inconsistent environments from every label.  The ATMS answers
"under which assumption sets does X hold?" without relabelling on each
context switch — the trade-off against the JTMS the paper's RMS
discussion is about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.errors import RMSError

Environment = FrozenSet[str]


@dataclass(frozen=True)
class _Justification:
    consequent: str
    antecedents: Tuple[str, ...]
    informant: str = ""


class ATMS:
    """Assumption-based TMS with minimal-environment labels."""

    def __init__(self) -> None:
        self._assumptions: Set[str] = set()
        self._labels: Dict[str, Set[Environment]] = {}
        self._justifications: List[_Justification] = []
        self._nogoods: Set[Environment] = set()

    # ------------------------------------------------------------------

    def add_assumption(self, name: str) -> None:
        """A node holding in its own singleton environment."""
        self._assumptions.add(name)
        self._labels.setdefault(name, set()).add(frozenset({name}))
        self._propagate()

    def add_premise(self, name: str) -> None:
        """A premise holds in the empty environment."""
        self._labels.setdefault(name, set()).add(frozenset())
        self._propagate()

    def justify(self, consequent: str, antecedents: Iterable[str],
                informant: str = "") -> None:
        """Propagate antecedent labels to the consequent."""
        justification = _Justification(consequent, tuple(antecedents), informant)
        self._labels.setdefault(consequent, set())
        for name in justification.antecedents:
            self._labels.setdefault(name, set())
        self._justifications.append(justification)
        self._propagate()

    def declare_nogood(self, environment: Iterable[str]) -> None:
        """Mark an assumption combination as inconsistent."""
        self._nogoods.add(frozenset(environment))
        self._propagate()

    # ------------------------------------------------------------------

    def _is_nogood(self, environment: Environment) -> bool:
        return any(bad <= environment for bad in self._nogoods)

    @staticmethod
    def _minimise(environments: Set[Environment]) -> Set[Environment]:
        minimal: Set[Environment] = set()
        for env in sorted(environments, key=len):
            if not any(other < env for other in minimal):
                # also drop any previously-added superset
                minimal = {m for m in minimal if not env < m}
                minimal.add(env)
        return minimal

    def _propagate(self) -> None:
        changed = True
        guard = 0
        bound = (len(self._justifications) + len(self._labels) + 2) ** 2
        while changed:
            guard += 1
            if guard > bound:
                raise RMSError("ATMS propagation failed to converge")
            changed = False
            for justification in self._justifications:
                antecedent_labels = [
                    self._labels.get(name, set())
                    for name in justification.antecedents
                ]
                if not justification.antecedents:
                    combined = {frozenset()}
                elif any(not label for label in antecedent_labels):
                    continue
                else:
                    combined = {frozenset()}
                    for label in antecedent_labels:
                        combined = {
                            env | extra
                            for env in combined
                            for extra in label
                        }
                combined = {
                    env for env in combined if not self._is_nogood(env)
                }
                target = self._labels.setdefault(justification.consequent, set())
                merged = self._minimise(target | combined)
                if merged != target:
                    self._labels[justification.consequent] = merged
                    changed = True
        # prune nogoods from every label
        for name, label in self._labels.items():
            pruned = {env for env in label if not self._is_nogood(env)}
            self._labels[name] = self._minimise(pruned)

    # ------------------------------------------------------------------

    def label(self, name: str) -> Set[Environment]:
        """Minimal consistent environments of a node."""
        return set(self._labels.get(name, set()))

    def holds_in(self, name: str, environment: Iterable[str]) -> bool:
        """Does ``name`` hold under the given assumptions?"""
        env = frozenset(environment)
        if self._is_nogood(env):
            return False
        return any(required <= env for required in self.label(name))

    def is_believed_somewhere(self, name: str) -> bool:
        """Non-empty label?"""
        return bool(self.label(name))

    def consistent_environments(self, names: Iterable[str]) -> Set[Environment]:
        """Minimal environments under which all ``names`` hold."""
        result: Set[Environment] = {frozenset()}
        for name in names:
            label = self.label(name)
            if not label:
                return set()
            result = {
                env | extra for env in result for extra in label
            }
        result = {env for env in result if not self._is_nogood(env)}
        return self._minimise(result)

    def assumptions(self) -> Set[str]:
        """All declared assumptions."""
        return set(self._assumptions)

    def nogoods(self) -> Set[Environment]:
        """All declared inconsistent environments."""
        return set(self._nogoods)
