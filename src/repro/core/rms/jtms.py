"""A justification-based truth maintenance system after Doyle [DOYL79].

Nodes are believed (IN) or not (OUT).  A justification supports its
consequent when every node of its in-list is IN and every node of its
out-list is OUT.  Assumptions are nodes justified by an empty in-list
with a non-empty out-list against their own retraction node; premises
are nodes with an unconditional justification.  Retracting an
assumption relabels the network by fixpoint propagation.  Contradiction
nodes trigger dependency-directed backtracking: the TMS reports the
assumption sets underlying the contradiction so one can be retracted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.errors import RMSError


@dataclass(frozen=True)
class Justification:
    """``consequent`` holds if all of ``in_list`` IN and ``out_list`` OUT."""

    consequent: str
    in_list: Tuple[str, ...] = ()
    out_list: Tuple[str, ...] = ()
    informant: str = ""


class JTMS:
    """Justification-based TMS with IN/OUT labelling."""

    def __init__(self) -> None:
        self._nodes: Dict[str, bool] = {}  # name -> IN?
        self._justifications: List[Justification] = []
        self._retracted: Set[str] = set()  # explicitly disabled premises
        self._premises: Set[str] = set()
        self._assumptions: Set[str] = set()
        self._contradictions: Set[str] = set()
        self.stats = {"relabels": 0, "visits": 0}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(self, name: str) -> None:
        """Ensure a node exists (initially OUT)."""
        self._nodes.setdefault(name, False)

    def add_premise(self, name: str) -> None:
        """A node believed unconditionally (until retracted)."""
        self.add_node(name)
        self._premises.add(name)
        self._relabel()

    def add_assumption(self, name: str) -> None:
        """An assumption is believed unless explicitly retracted."""
        self.add_node(name)
        self._assumptions.add(name)
        self._relabel()

    def justify(self, consequent: str, in_list: Iterable[str] = (),
                out_list: Iterable[str] = (), informant: str = "") -> Justification:
        """Add a justification and relabel."""
        justification = Justification(
            consequent, tuple(in_list), tuple(out_list), informant
        )
        self.add_node(consequent)
        for name in justification.in_list + justification.out_list:
            self.add_node(name)
        self._justifications.append(justification)
        self._relabel()
        return justification

    def mark_contradiction(self, name: str) -> None:
        """Flag a node as a contradiction."""
        self.add_node(name)
        self._contradictions.add(name)

    # ------------------------------------------------------------------
    # Belief revision
    # ------------------------------------------------------------------

    def retract(self, name: str) -> None:
        """Disbelieve an assumption or premise."""
        self.retract_many([name])

    def retract_many(self, names: Iterable[str]) -> None:
        """Disbelieve several assumptions/premises in one relabelling —
        the batched form partitioned reason maintenance depends on."""
        for name in names:
            if name not in self._assumptions and name not in self._premises:
                raise RMSError(f"{name!r} is not an assumption or premise")
            self._retracted.add(name)
        self._relabel()

    def reinstate(self, name: str) -> None:
        """Re-believe a retracted assumption/premise."""
        self._retracted.discard(name)
        self._relabel()

    # ------------------------------------------------------------------
    # Labelling
    # ------------------------------------------------------------------

    def _relabel(self) -> None:
        """Compute the well-founded labelling by fixpoint iteration.

        Out-lists are handled by iterating the monotone operator over
        a two-pass scheme: nodes start OUT, then rules fire until no
        change; out-list conditions consult the *previous* pass, which
        converges for the acyclic-through-negation networks the GKBMS
        produces.
        """
        self.stats["relabels"] += 1
        labels: Dict[str, bool] = {name: False for name in self._nodes}
        for name in self._premises | self._assumptions:
            if name not in self._retracted:
                labels[name] = True
        changed = True
        guard = 0
        while changed:
            guard += 1
            if guard > len(self._nodes) + len(self._justifications) + 2:
                break
            changed = False
            for justification in self._justifications:
                self.stats["visits"] += 1
                if labels.get(justification.consequent, False):
                    continue
                ins_ok = all(labels.get(n, False) for n in justification.in_list)
                outs_ok = all(not labels.get(n, False) for n in justification.out_list)
                if ins_ok and outs_ok:
                    labels[justification.consequent] = True
                    changed = True
        self._nodes = labels

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def is_in(self, name: str) -> bool:
        """Is the node currently believed (IN)?"""
        return self._nodes.get(name, False)

    def nodes(self) -> List[str]:
        """All node names."""
        return list(self._nodes)

    def believed(self) -> Set[str]:
        """The set of IN nodes."""
        return {name for name, label in self._nodes.items() if label}

    def justifications_of(self, name: str) -> List[Justification]:
        """Justifications whose consequent is the node."""
        return [j for j in self._justifications if j.consequent == name]

    def supporting_assumptions(self, name: str) -> Set[str]:
        """Assumptions underlying the belief in ``name``."""
        if not self.is_in(name):
            return set()
        support: Set[str] = set()
        seen: Set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            if current in self._assumptions:
                support.add(current)
                continue
            for justification in self.justifications_of(current):
                if all(self.is_in(n) for n in justification.in_list) and all(
                    not self.is_in(n) for n in justification.out_list
                ):
                    frontier.extend(justification.in_list)
                    break
        return support

    def active_contradictions(self) -> List[str]:
        """Contradiction nodes currently IN."""
        return sorted(n for n in self._contradictions if self.is_in(n))

    def diagnose(self) -> List[Set[str]]:
        """Dependency-directed backtracking aid: for each active
        contradiction, the assumption set underlying it — retracting
        any member resolves that contradiction."""
        return [
            self.supporting_assumptions(name)
            for name in self.active_contradictions()
        ]

    def __len__(self) -> int:
        return len(self._nodes)
