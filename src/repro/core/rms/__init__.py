"""Reason maintenance (S18, section 3.3.3).

"The representation of decision structures supports the storage of
redundant dependency information as the basis of a reason maintenance
system [DOYL79, DJ88] which can contribute to the automatic propagation
of the consequences of high-level changes.  However, since current RMS
can handle only fairly small dependency networks efficiently [DEKL86],
we are studying their combination with the abstraction mechanisms of
the GKBMS."

- :mod:`repro.core.rms.jtms` — a Doyle-style justification-based TMS;
- :mod:`repro.core.rms.atms` — a de Kleer assumption-based TMS;
- :mod:`repro.core.rms.integration` — decisions as assumptions, design
  objects justified by (decision + inputs); plus the
  *abstraction-partitioned* RMS that keeps one small JTMS per decision
  scope, which is the combination the paper proposes and benchmark
  Perf-3 measures.
"""

from repro.core.rms.jtms import JTMS, Justification
from repro.core.rms.atms import ATMS
from repro.core.rms.integration import (
    DecisionRMS,
    PartitionedDecisionRMS,
    suggest_retractions,
)

__all__ = ["JTMS", "Justification", "ATMS", "DecisionRMS",
           "PartitionedDecisionRMS", "suggest_retractions"]
