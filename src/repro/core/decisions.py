"""Decision classes, applicability matching and documented execution.

This implements the core loop of fig 2-6:

1. "The class of a selected object is matched against the input classes
   of decision classes; by testing the other input objects and
   preconditions of these classes, possible decisions applicable to
   this object are determined."
2. "A tool is now applicable to the initial object if it can execute
   (i.e., is associated with) one of these decision classes, normally
   the most specific one."
3. After execution, a *decision instance* is created whose small-letter
   ``from`` / ``to`` / ``by`` links instantiate the class-level
   ``FROM`` / ``TO`` / ``BY`` links, and every produced design object
   gets a ``justification`` link back to the decision (fig 3-3).

Verification obligations (section 3.2): "only those parts of the
constraints not guaranteed by tool specifications have to be tested
[...] the 'proof' may be either formal or by 'signature' of the
decision maker."
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import DecisionError, NotApplicableError, ObligationError
from repro.assertions.evaluator import Evaluator
from repro.assertions.parser import parse_assertion
from repro.core.tools import ToolRegistry, ToolSpec
from repro.propositions.processor import PropositionProcessor
from repro.timecalc.interval import Interval


@dataclass
class Obligation:
    """A verification obligation attached to an executed decision."""

    oid: str
    name: str
    decision_id: str
    assertion: Optional[str]  # None: only dischargeable by signature
    status: str = "open"  # open | guaranteed | signed | proved
    signer: Optional[str] = None

    @property
    def discharged(self) -> bool:
        """True once guaranteed, signed or proved."""
        return self.status != "open"


@dataclass(frozen=True)
class DecisionClass:
    """A class of design decisions (a task to be solved).

    ``inputs`` and ``outputs`` map role labels to design object class
    names; ``precondition`` / ``postcondition`` are assertion-language
    texts whose free variables are the role labels; ``obligations``
    maps obligation names to assertion texts (``None`` = signature
    only); ``tools`` names the registered tools that can execute the
    class; ``parts`` decomposes composite decisions (the PART links
    used for configuration control); ``isa`` places the class in the
    decision specialization hierarchy (``DecNormalize`` isa
    ``TDL_MappingDec`` in fig 3-3).
    """

    name: str
    description: str = ""
    inputs: Tuple[Tuple[str, str], ...] = ()
    outputs: Tuple[Tuple[str, str], ...] = ()
    precondition: Optional[str] = None
    postcondition: Optional[str] = None
    obligations: Tuple[Tuple[str, Optional[str]], ...] = ()
    tools: Tuple[str, ...] = ()
    parts: Tuple[str, ...] = ()
    isa: Tuple[str, ...] = ()
    #: 'mapping' (between levels), 'refinement' (within a level),
    #: 'choice' (creates an alternative version) or 'other' — the three
    #: decision kinds section 3.3.2 builds versioning/configuration on.
    kind: str = "other"

    def input_class(self, role: str) -> str:
        """The design object class of one input role."""
        for r, cls in self.inputs:
            if r == role:
                return cls
        raise DecisionError(f"decision class {self.name!r} has no input role {role!r}")

    def input_roles(self) -> List[str]:
        """The input role labels."""
        return [r for r, _cls in self.inputs]

    def output_roles(self) -> List[str]:
        """The output role labels."""
        return [r for r, _cls in self.outputs]


@dataclass
class DecisionRecord:
    """One executed (documented) design decision."""

    did: str
    decision_class: str
    inputs: Dict[str, str]
    outputs: Dict[str, List[str]] = field(default_factory=dict)
    params: Dict = field(default_factory=dict)
    tool: Optional[str] = None
    actor: str = "developer"
    tick: int = 0
    status: str = "done"  # done | retracted
    obligations: List[Obligation] = field(default_factory=list)
    assumptions: List[str] = field(default_factory=list)
    rationale: str = ""
    retracted_at: Optional[int] = None

    @property
    def is_retracted(self) -> bool:
        """True after selective backtracking."""
        return self.status == "retracted"

    def all_outputs(self) -> List[str]:
        """Every produced design object name."""
        out: List[str] = []
        for names in self.outputs.values():
            out.extend(names)
        return out

    def open_obligations(self) -> List[Obligation]:
        """Obligations not yet discharged."""
        return [o for o in self.obligations if not o.discharged]


class DecisionEngine:
    """Registers decision classes, matches, executes, documents."""

    def __init__(self, gkbms) -> None:
        self.gkbms = gkbms
        self.processor: PropositionProcessor = gkbms.processor
        self.tools: ToolRegistry = gkbms.tools
        self._classes: Dict[str, DecisionClass] = {}
        self.records: Dict[str, DecisionRecord] = {}
        self.order: List[str] = []  # execution order of decision ids
        self._decision_ids = itertools.count(1)
        self._obligation_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Registration (builds the middle layer of fig 3-3)
    # ------------------------------------------------------------------

    def register(self, dc: DecisionClass) -> DecisionClass:
        """Register a decision class and reflect it into the base."""
        if dc.name in self._classes:
            raise DecisionError(f"duplicate decision class {dc.name!r}")
        for tool_name in dc.tools:
            if tool_name not in self.tools:
                raise DecisionError(
                    f"decision class {dc.name!r} names unregistered tool "
                    f"{tool_name!r}"
                )
        for parent in dc.isa:
            if parent not in self._classes:
                raise DecisionError(
                    f"decision class {dc.name!r} specialises unknown {parent!r}"
                )
        proc = self.processor
        proc.define_class(dc.name, level="SimpleClass", isa=dc.isa)
        proc.tell_instanceof(dc.name, "DesignDecision")
        for role, cls in dc.inputs:
            proc.tell_link(dc.name, role, cls, pid=f"{dc.name}.{role}",
                           of_class="FROM")
        for role, cls in dc.outputs:
            proc.tell_link(dc.name, role, cls, pid=f"{dc.name}.{role}",
                           of_class="TO")
            # class-level justification link: output class -> decision class
            proc.tell_link(cls, f"justified_by_{dc.name}", dc.name,
                           pid=f"{cls}.justified_by.{dc.name}",
                           of_class="JUSTIFICATION")
        for tool_name in dc.tools:
            proc.tell_link(dc.name, "supported_by", tool_name,
                           pid=f"{dc.name}.by.{tool_name}", of_class="BY")
        for part in dc.parts:
            if part in self._classes:
                proc.tell_link(dc.name, "part", part,
                               pid=f"{dc.name}.part.{part}", of_class="PART")
        self._classes[dc.name] = dc
        return dc

    def get(self, name: str) -> DecisionClass:
        """Look a decision class up by name."""
        try:
            return self._classes[name]
        except KeyError:
            raise DecisionError(f"unknown decision class {name!r}") from None

    def classes(self) -> List[str]:
        """Registered decision class names."""
        return list(self._classes)

    # ------------------------------------------------------------------
    # Applicability matching (fig 2-6, fig 2-1's menu)
    # ------------------------------------------------------------------

    def matching_roles(self, dc: DecisionClass, focus: str) -> List[str]:
        """Input roles of ``dc`` the focus object could fill."""
        return [
            role
            for role, cls in dc.inputs
            if self.processor.is_instance_of(focus, cls)
        ]

    def _specificity(self, dc: DecisionClass) -> int:
        """Depth in the decision specialization hierarchy (more
        generalizations = more specific)."""
        return len(self.processor.generalizations(dc.name, strict=True))

    def applicable_decisions(
        self, focus: str
    ) -> List[Tuple[DecisionClass, List[str], List[str]]]:
        """Decision classes applicable to ``focus``, most specific
        first, each with the roles the focus can fill and the tools
        that could execute it."""
        matches: List[Tuple[DecisionClass, List[str], List[str]]] = []
        for dc in self._classes.values():
            roles = self.matching_roles(dc, focus)
            if not roles:
                continue
            matches.append((dc, roles, list(dc.tools)))
        matches.sort(key=lambda m: (-self._specificity(m[0]), m[0].name))
        return matches

    def check_applicability(self, dc: DecisionClass, inputs: Dict[str, str]) -> None:
        """Raise :class:`NotApplicableError` unless ``inputs`` satisfy
        the decision class's roles and precondition."""
        for role, cls in dc.inputs:
            if role not in inputs:
                raise NotApplicableError(
                    f"{dc.name}: missing input role {role!r}"
                )
            value = inputs[role]
            if not self.processor.is_instance_of(value, cls):
                raise NotApplicableError(
                    f"{dc.name}: input {value!r} is no instance of {cls!r} "
                    f"(role {role!r})"
                )
        if dc.precondition:
            evaluator = Evaluator(self.processor)
            if not evaluator.evaluate(parse_assertion(dc.precondition), dict(inputs)):
                raise NotApplicableError(
                    f"{dc.name}: precondition {dc.precondition!r} fails "
                    f"for {inputs}"
                )

    # ------------------------------------------------------------------
    # Execution + documentation (bottom layer of fig 3-3)
    # ------------------------------------------------------------------

    def execute(
        self,
        decision_class: str,
        inputs: Dict[str, str],
        tool: Optional[str] = None,
        params: Optional[Dict] = None,
        outputs: Optional[Dict[str, List[str]]] = None,
        actor: str = "developer",
        rationale: str = "",
        assumptions: Sequence[str] = (),
    ) -> DecisionRecord:
        """Execute and document one design decision.

        With ``tool`` given, the tool's apply function performs the
        transformation; otherwise ``outputs`` must name the design
        objects the developer created manually (which must already be
        told to the knowledge base).
        """
        dc = self.get(decision_class)
        self.check_applicability(dc, inputs)
        tool_spec: Optional[ToolSpec] = None
        if tool is not None:
            if tool not in dc.tools:
                raise DecisionError(
                    f"tool {tool!r} is not associated with decision class "
                    f"{dc.name!r}"
                )
            tool_spec = self.tools.get(tool)
        tick = self.gkbms.tick()
        did = f"dec{next(self._decision_ids)}"

        # A decision executes as a transaction (section 3.2: "the
        # decision instance defining a, possibly nested, transaction"):
        # the knowledge-base telling and the artefact stores roll back
        # together when the tool fails or the postcondition does not
        # hold, so a failed decision leaves no trace.
        artefact_snapshot = self.gkbms.snapshot_artifacts()
        try:
            with self.processor.telling():
                if tool_spec is not None and tool_spec.apply is not None:
                    produced = tool_spec.apply(
                        self.gkbms, dict(inputs), dict(params or {})
                    )
                elif outputs is not None:
                    produced = {
                        role: list(names) for role, names in outputs.items()
                    }
                else:
                    raise DecisionError(
                        f"{dc.name}: manual execution requires explicit outputs"
                    )
                missing_roles = [
                    r for r in dc.output_roles() if r not in produced
                ]
                if missing_roles:
                    raise DecisionError(
                        f"{dc.name}: execution produced no output for "
                        f"role(s) {missing_roles}"
                    )

                record = DecisionRecord(
                    did=did,
                    decision_class=dc.name,
                    inputs=dict(inputs),
                    outputs=produced,
                    params=dict(params or {}),
                    tool=tool,
                    actor=actor,
                    tick=tick,
                    rationale=rationale,
                )
                self._document(dc, record, list(assumptions))
                self._raise_obligations(dc, record, tool_spec)
                if dc.postcondition:
                    env = dict(inputs)
                    for role, names in produced.items():
                        if names:
                            env.setdefault(role, names[0])
                    evaluator = Evaluator(self.processor)
                    if not evaluator.evaluate(
                        parse_assertion(dc.postcondition), env
                    ):
                        raise DecisionError(
                            f"{dc.name}: postcondition "
                            f"{dc.postcondition!r} fails after execution "
                            f"of {did}"
                        )
        except Exception:
            self.gkbms.restore_artifacts(artefact_snapshot)
            raise
        self.records[did] = record
        self.order.append(did)
        return record

    def _document(self, dc: DecisionClass, record: DecisionRecord,
                  assumptions: List[str]) -> None:
        proc = self.processor
        validity = Interval.since(record.tick)
        proc.tell_individual(record.did, in_class=dc.name, time=validity)
        for role, value in record.inputs.items():
            if any(r == role for r, _c in dc.inputs):
                proc.tell_link(record.did, role, value,
                               of_class=f"{dc.name}.{role}", time=validity)
        for role, names in record.outputs.items():
            output_class = dict(dc.outputs).get(role)
            for name in names:
                if not proc.exists(name):
                    raise DecisionError(
                        f"{dc.name}: output {name!r} was never told to the "
                        f"knowledge base"
                    )
                if output_class is not None:
                    proc.tell_link(record.did, role, name,
                                   of_class=f"{dc.name}.{role}", time=validity)
                    proc.tell_link(
                        name, "justification", record.did,
                        of_class=f"{output_class}.justified_by.{dc.name}",
                        time=validity,
                    )
        if record.tool is not None:
            # document the tool *application* as a token of the tool
            # specification class, linked by a small-letter `by` link
            application = f"{record.did}.app"
            proc.tell_individual(application, in_class=record.tool,
                                 time=validity)
            proc.tell_link(record.did, "by", application,
                           of_class=f"{dc.name}.by.{record.tool}", time=validity)
        for assumption in assumptions:
            if not proc.exists(assumption):
                proc.tell_individual(assumption, in_class="Assumption")
            proc.tell_link(record.did, "assumes", assumption, time=validity)
            record.assumptions.append(assumption)

    def _raise_obligations(self, dc: DecisionClass, record: DecisionRecord,
                           tool_spec: Optional[ToolSpec]) -> None:
        for name, assertion in dc.obligations:
            oid = f"obl{next(self._obligation_ids)}"
            obligation = Obligation(oid, name, record.did, assertion)
            if tool_spec is not None and tool_spec.guarantees_obligation(name):
                obligation.status = "guaranteed"
            else:
                self.processor.tell_individual(oid, in_class="ProofObligation")
                self.processor.tell_link(record.did, "obliges", oid)
            record.obligations.append(obligation)

    # ------------------------------------------------------------------
    # Obligation discharge
    # ------------------------------------------------------------------

    def _find_obligation(self, oid: str) -> Tuple[DecisionRecord, Obligation]:
        for record in self.records.values():
            for obligation in record.obligations:
                if obligation.oid == oid:
                    return record, obligation
        raise ObligationError(f"unknown obligation {oid!r}")

    def sign(self, oid: str, signer: str) -> Obligation:
        """Discharge by signature of the decision maker."""
        _record, obligation = self._find_obligation(oid)
        if obligation.discharged:
            raise ObligationError(f"obligation {oid!r} already discharged")
        obligation.status = "signed"
        obligation.signer = signer
        return obligation

    def prove(self, oid: str) -> Obligation:
        """Discharge formally: evaluate the obligation's assertion."""
        record, obligation = self._find_obligation(oid)
        if obligation.discharged:
            raise ObligationError(f"obligation {oid!r} already discharged")
        if obligation.assertion is None:
            raise ObligationError(
                f"obligation {oid!r} has no formal assertion; use sign()"
            )
        env = dict(record.inputs)
        for role, names in record.outputs.items():
            if names:
                env.setdefault(role, names[0])
        evaluator = Evaluator(self.processor)
        if not evaluator.evaluate(parse_assertion(obligation.assertion), env):
            raise ObligationError(
                f"obligation {oid!r}: assertion {obligation.assertion!r} "
                f"does not hold"
            )
        obligation.status = "proved"
        return obligation

    def open_obligations(self) -> List[Obligation]:
        """Open obligations of all active decisions."""
        out: List[Obligation] = []
        for did in self.order:
            record = self.records[did]
            if not record.is_retracted:
                out.extend(record.open_obligations())
        return out

    # ------------------------------------------------------------------
    # History access
    # ------------------------------------------------------------------

    def active_records(self) -> List[DecisionRecord]:
        """Non-retracted records in execution order."""
        return [
            self.records[did]
            for did in self.order
            if not self.records[did].is_retracted
        ]

    def producers_of(self, name: str) -> List[DecisionRecord]:
        """Decisions that produced design object ``name``."""
        return [
            record
            for record in self.records.values()
            if name in record.all_outputs()
        ]

    def consumers_of(self, name: str) -> List[DecisionRecord]:
        """Decisions that used ``name`` as an input."""
        return [
            record
            for record in self.records.values()
            if name in record.inputs.values()
        ]
