"""The GKBMS conceptual process model (figs 2-5, 2-6, 3-3).

Section 3.2: "At the conceptual level, the GKBMS introduces metaclasses
to express design object and design decision classes.  Formally,
metaclass DesignDecision provides the expressive facilities to build
design decision classes upon input (FROM) and output (TO) relationships
[...]  Attributes of concrete decision classes must be instances of
these properties."

And section 2.2 (fig 2-6): tool associations are ``BY`` links; at the
instance level the small-letter links ``from`` / ``to`` / ``by`` must be
instances of the class-level capitals — the instantiation principle the
kernel's ``attribute_typing`` axiom enforces for free.

The module also installs the *design object class* layer used by the
scenario: the abstract-syntax classes of the three DAIDA languages
(``TDL_EntityClass``, ``DBPL_Rel``, ``NormalizedDBPL_Rel``, ...), each
an instance of ``DesignObject``.
"""

from __future__ import annotations

from typing import List

from repro.propositions.processor import PropositionProcessor
from repro.propositions.proposition import Proposition

#: The three conceptual-process metaclasses.
METACLASSES = ("DesignObject", "DesignDecision", "DesignTool")

#: Attribute metaclasses (capital-letter links of fig 2-6 / fig 3-3).
LINK_METACLASSES = {
    # pid               source            label            destination
    "FROM": ("DesignDecision", "FROM", "DesignObject"),
    "TO": ("DesignDecision", "TO", "DesignObject"),
    "BY": ("DesignDecision", "BY", "DesignTool"),
    "PART": ("DesignDecision", "PART", "DesignDecision"),
    "JUSTIFICATION": ("DesignObject", "JUSTIFICATION", "DesignDecision"),
    "SOURCE": ("DesignObject", "SOURCE", "ExternalSource"),
}

#: Design object classes for the DAIDA language levels, as
#: (name, isa-parents).  All are instances of DesignObject.
LANGUAGE_OBJECT_CLASSES = (
    # CML / requirements level
    ("CML_Object", ()),
    ("CML_WorldClass", ("CML_Object",)),
    ("CML_SystemClass", ("CML_Object",)),
    ("CML_Activity", ("CML_Object",)),
    # TaxisDL / design level
    ("TDL_Object", ()),
    ("TDL_EntityClass", ("TDL_Object",)),
    ("TDL_TransactionClass", ("TDL_Object",)),
    ("TDL_Script", ("TDL_Object",)),
    # DBPL / implementation level
    ("DBPL_Object", ()),
    ("DBPL_Rel", ("DBPL_Object",)),
    ("NormalizedDBPL_Rel", ("DBPL_Rel",)),
    ("DBPL_Selector", ("DBPL_Object",)),
    ("DBPL_Constructor", ("DBPL_Object",)),
    ("DBPL_Transaction", ("DBPL_Object",)),
    ("DBPL_Module", ("DBPL_Object",)),
)

#: Status / life-cycle levels for navigation (section 3.3.1).
LEVEL_OF_CLASS = {
    "CML_Object": "requirements",
    "TDL_Object": "design",
    "DBPL_Object": "implementation",
}


def install_gkbms_metamodel(proc: PropositionProcessor) -> List[Proposition]:
    """Install the conceptual process model into ``proc``.

    Idempotent: installing twice is a no-op.  Returns the created
    propositions.
    """
    created: List[Proposition] = []
    if proc.exists("DesignObject"):
        return created

    # -- metaclass layer ---------------------------------------------------
    for name in METACLASSES:
        created.append(proc.define_class(name, level="MetaClass"))
    created.append(proc.define_class("ExternalSource", level="SimpleClass"))
    created.append(proc.define_class("Assumption", level="SimpleClass"))
    created.append(proc.define_class("ProofObligation", level="SimpleClass"))
    created.append(proc.define_class("RetractedDecision", level="SimpleClass"))

    for pid, (source, label, destination) in LINK_METACLASSES.items():
        created.append(
            proc.tell_link(source, label, destination, pid=pid,
                           of_class="Attribute")
        )
    # Token-level source references instantiate this class-level
    # attribute (the SOURCE metaclass link connects the metaclasses).
    created.append(
        proc.tell_link("Proposition", "source", "ExternalSource",
                       pid="SourceRef", of_class="Attribute")
    )

    # -- design object class layer (abstract language syntax) ---------------
    for name, parents in LANGUAGE_OBJECT_CLASSES:
        created.append(proc.define_class(name, level="SimpleClass"))
        proc.tell_instanceof(name, "DesignObject")
        for parent in parents:
            proc.tell_isa(name, parent)
    return created


def level_of(proc: PropositionProcessor, name: str) -> str:
    """Life-cycle level of a design object: requirements / design /
    implementation / unknown (the status dimension of navigation)."""
    classes = proc.classes_of(name)
    for root, level in LEVEL_OF_CLASS.items():
        if root in classes:
            return level
    return "unknown"


def is_design_object(proc: PropositionProcessor, name: str) -> bool:
    """Is ``name`` an instance of some design object class?"""
    classes = proc.classes_of(name)
    return any(root in classes for root in LEVEL_OF_CLASS)
