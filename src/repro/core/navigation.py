"""Navigation in decision histories (section 3.3.1).

"the GKBMS enables browsing along and arbitrary switching between
several dimensions:

- status-oriented, by browsing requirements, designs, implementations,
  and their interrelationships,
- process-oriented, by following mapping and refinement relationships
  and their causal ordering,
- temporal, by focusing on system versions and following the history of
  design objects and design decisions."

:class:`Navigator` provides the three dimensions over a GKBMS, plus the
interactive :meth:`browser` whose context menus combine applicable
decision classes (fig 2-6 matching) with the exploration directions
that are applicable to the current focus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.metamodel import LEVEL_OF_CLASS, level_of
from repro.models.interaction import Browser, MenuItem


@dataclass(frozen=True)
class HistoryEvent:
    """One event in an object's or the system's timeline."""

    tick: int
    kind: str  # created | used | retracted
    decision: str
    decision_class: str
    subject: str

    def __repr__(self) -> str:
        return f"t{self.tick}: {self.subject} {self.kind} by {self.decision}"


class Navigator:
    """Status / process / temporal browsing over the documentation."""

    def __init__(self, gkbms) -> None:
        self.gkbms = gkbms

    # ------------------------------------------------------------------
    # Status dimension
    # ------------------------------------------------------------------

    def levels(self) -> List[str]:
        """The life-cycle level names."""
        return sorted(set(LEVEL_OF_CLASS.values()))

    def status_view(self, level: str, at: Optional[object] = None) -> List[str]:
        """Design objects at a life-cycle level; with ``at`` given, the
        as-of view — only objects whose classification was valid at that
        tick (so the design *as it stood* at any point of the history
        can be browsed)."""
        proc = self.gkbms.processor
        roots = [root for root, lvl in LEVEL_OF_CLASS.items() if lvl == level]
        names: set = set()
        for root in roots:
            names |= proc.instances_of(root, at=at)
        return sorted(names)

    def interrelations(self, name: str) -> Dict[str, List[str]]:
        """Cross-level links of an object: what it implements and what
        implements it."""
        proc = self.gkbms.processor
        out = {"implements": [], "implemented_by": [], "revises": [],
               "revised_by": []}
        for prop in proc.attributes_of(name, label="implements"):
            out["implements"].append(prop.destination)
        for prop in proc.attributes_of(name, label="revises"):
            out["revises"].append(prop.destination)
        from repro.propositions.proposition import Pattern

        for prop in proc.store.retrieve(Pattern(label="implements",
                                                destination=name)):
            out["implemented_by"].append(prop.source)
        for prop in proc.store.retrieve(Pattern(label="revises",
                                                destination=name)):
            out["revised_by"].append(prop.source)
        return {k: sorted(v) for k, v in out.items()}

    # ------------------------------------------------------------------
    # Process dimension
    # ------------------------------------------------------------------

    def justification_of(self, name: str) -> Optional[str]:
        """The decision that produced (justifies) ``name``."""
        producers = self.gkbms.decisions.producers_of(name)
        active = [r for r in producers if not r.is_retracted]
        chosen = active or producers
        return chosen[-1].did if chosen else None

    def causal_chain(self, name: str) -> List[Tuple[str, str]]:
        """(decision, object) pairs from ``name`` back to its origins —
        following mapping/refinement relationships against their causal
        ordering."""
        chain: List[Tuple[str, str]] = []
        seen = set()
        frontier = [name]
        while frontier:
            current = frontier.pop(0)
            did = self.justification_of(current)
            if did is None:
                continue
            record = self.gkbms.decisions.records[did]
            for value in record.inputs.values():
                pair = (did, value)
                if pair not in seen:
                    seen.add(pair)
                    chain.append(pair)
                    frontier.append(value)
        return chain

    def derived_from(self, name: str) -> List[str]:
        """Objects downstream of ``name`` in the dependency graph."""
        graph = self.gkbms.dependency_graph()
        return sorted(
            node for node in graph.downstream(name)
            if node not in self.gkbms.decisions.records
        )

    # ------------------------------------------------------------------
    # Temporal dimension
    # ------------------------------------------------------------------

    def timeline(self) -> List[HistoryEvent]:
        """All documented events ordered by tick."""
        events: List[HistoryEvent] = []
        for did in self.gkbms.decisions.order:
            record = self.gkbms.decisions.records[did]
            for output in record.all_outputs():
                events.append(HistoryEvent(record.tick, "created", did,
                                           record.decision_class, output))
            for value in record.inputs.values():
                events.append(HistoryEvent(record.tick, "used", did,
                                           record.decision_class, value))
            if record.is_retracted and record.retracted_at is not None:
                events.append(HistoryEvent(record.retracted_at, "retracted",
                                           did, record.decision_class, did))
        events.sort(key=lambda e: (e.tick, e.decision, e.kind))
        return events

    def history_of(self, name: str) -> List[HistoryEvent]:
        """The history of one design object."""
        return [e for e in self.timeline() if e.subject == name]

    # ------------------------------------------------------------------
    # Interactive browsing (fig 2-1)
    # ------------------------------------------------------------------

    def menu_for(self, focus: str) -> List[MenuItem]:
        """Context menu: applicable decision classes (with their tools
        as submenus) plus the exploration directions."""
        items: List[MenuItem] = []
        for dc, _roles, tools in self.gkbms.decisions.applicable_decisions(focus):
            submenu = tuple(
                MenuItem(tool, action=self._tool_action(dc.name, focus, tool))
                for tool in tools
            )
            items.append(MenuItem(dc.name, submenu=submenu))
        explorations = [
            MenuItem("history", action=lambda f=focus: self.history_of(f)),
            MenuItem("causal chain", action=lambda f=focus: self.causal_chain(f)),
            MenuItem("interrelations",
                     action=lambda f=focus: self.interrelations(f)),
        ]
        items.append(MenuItem("explore", submenu=tuple(explorations)))
        return items

    def _tool_action(self, decision_class: str, focus: str, tool: str):
        def action():
            dc = self.gkbms.decisions.get(decision_class)
            roles = self.gkbms.decisions.matching_roles(dc, focus)
            if not roles:
                raise ValueError(f"{focus} no longer fits {decision_class}")
            return self.gkbms.execute(
                decision_class, {roles[0]: focus}, tool=tool
            )

        return action

    def browser(self) -> Browser:
        """An interactive browser with GKBMS menus."""
        return Browser(
            menu_provider=self.menu_for,
            exists=self.gkbms.processor.exists,
        )

    def level_of(self, name: str) -> str:
        """Life-cycle level of a design object."""
        return level_of(self.gkbms.processor, name)
