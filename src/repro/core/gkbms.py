"""The GKBMS facade (S11): one object wiring the whole system together.

"Ex ante, the GKBMS can be seen as an integrative tool server which
helps users in selecting tasks and tools within a large development
project; ex post, it plays the role of a documentation service in which
development objects are related to the decisions and tools that created
or changed them (i.e., justify their current status)."  (section 1)

A :class:`GKBMS` owns:

- a ConceptBase kernel (proposition processor + object processor +
  rule engine + consistency checker) with the conceptual process model
  installed;
- the language-level artefact stores: the TaxisDL design
  (:attr:`design`), the DBPL module (:attr:`module`) and, on demand, an
  executable DBPL database (:meth:`build_database`);
- the decision machinery: tool registry, decision engine, selective
  backtracker, replayer;
- the derived services: dependency graphs, navigation, versioning &
  configuration, explanation — created lazily, all reading the same
  documentation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.errors import GKBMSError
from repro.assertions.evaluator import Evaluator
from repro.assertions.parser import parse_assertion
from repro.consistency.checker import ConsistencyChecker
from repro.core.backtracking import Backtracker
from repro.core.decisions import DecisionEngine
from repro.core.dependency import DependencyGraph
from repro.core.metamodel import install_gkbms_metamodel, level_of
from repro.core.replay import Replayer
from repro.core.tools import ToolRegistry
from repro.dbpl_engine.engine import Database
from repro.deduction.kb import RuleEngine
from repro.languages.dbpl.ast import DBPLModule
from repro.languages.taxisdl.ast import TDLModel
from repro.languages.taxisdl.parser import parse_taxisdl
from repro.objects.object_processor import ObjectProcessor
from repro.propositions.processor import PropositionProcessor
from repro.timecalc.interval import Interval


class GKBMS:
    """The Global Knowledge Base Management System."""

    def __init__(self, name: str = "gkbms",
                 processor: Optional[PropositionProcessor] = None) -> None:
        self.name = name
        self.processor = processor if processor is not None else PropositionProcessor()
        install_gkbms_metamodel(self.processor)
        self.objects = ObjectProcessor(self.processor)
        self.rules = RuleEngine(self.processor)
        self.consistency = ConsistencyChecker(self.processor)
        self.consistency.set_rule_source(self.rules.rules)
        self.tools = ToolRegistry(self.processor)
        self.decisions = DecisionEngine(self)
        self.backtracker = Backtracker(self)
        self.replayer = Replayer(self)

        self.design = TDLModel(f"{name}-design")
        self.module = DBPLModule(f"{name}-module")
        self._clock = 0
        self._artifact_meta: Dict[str, Dict[str, Optional[str]]] = {}
        self._retired: Dict[str, List[object]] = {}
        self._assumptions: Dict[str, Optional[str]] = {}

    # ------------------------------------------------------------------
    # Clock (the version/time dimension)
    # ------------------------------------------------------------------

    @property
    def clock(self) -> int:
        """The current version tick."""
        return self._clock

    def tick(self) -> int:
        """Advance and return the version clock."""
        self._clock += 1
        return self._clock

    # ------------------------------------------------------------------
    # Standard kernel knowledge
    # ------------------------------------------------------------------

    def register_standard_library(self) -> None:
        """Install the prototype's kernel tools and decision classes."""
        from repro.core.mapping.registry import (
            standard_decision_classes,
            standard_tools,
        )

        for tool in standard_tools():
            if tool.name not in self.tools:
                self.tools.register(tool)
        for dc in standard_decision_classes():
            if dc.name not in self.decisions.classes():
                self.decisions.register(dc)

    # ------------------------------------------------------------------
    # Design import (TaxisDL level)
    # ------------------------------------------------------------------

    def import_design(self, design: Union[str, TDLModel]) -> TDLModel:
        """Load a TaxisDL design and mirror it into the knowledge base
        as design objects (instances of ``TDL_EntityClass`` etc.)."""
        if isinstance(design, str):
            design = parse_taxisdl(design)
        proc = self.processor
        for cls in design.classes.values():
            if not proc.exists(cls.name):
                proc.tell_individual(cls.name, in_class="TDL_EntityClass")
            for sup in cls.isa:
                proc.tell_isa(cls.name, sup)
            self.design.add_class(cls)
        for txn in design.transactions.values():
            if not proc.exists(txn.name):
                proc.tell_individual(txn.name, in_class="TDL_TransactionClass")
            self.design.add_transaction(txn)
        for script in design.scripts.values():
            if not proc.exists(script.name):
                proc.tell_individual(script.name, in_class="TDL_Script")
            self.design.add_script(script)
        return self.design

    def extend_design(self, source: str) -> List[str]:
        """Add further TaxisDL blocks to the current design (the 'add
        Minutes later' move of the scenario)."""
        before_classes = set(self.design.classes)
        before_txns = set(self.design.transactions)
        parse_taxisdl(source, model=self.design)
        added: List[str] = []
        proc = self.processor
        for name in self.design.classes:
            if name in before_classes:
                continue
            cls = self.design.classes[name]
            if not proc.exists(name):
                proc.tell_individual(name, in_class="TDL_EntityClass")
            for sup in cls.isa:
                proc.tell_isa(name, sup)
            added.append(name)
        for name in self.design.transactions:
            if name not in before_txns:
                if not proc.exists(name):
                    proc.tell_individual(name, in_class="TDL_TransactionClass")
                added.append(name)
        return added

    # ------------------------------------------------------------------
    # Artefact management (DBPL level)
    # ------------------------------------------------------------------

    def add_artifact(self, decl, kb_class: str,
                     mapped_from: Optional[str] = None) -> str:
        """Register a DBPL declaration as a design object."""
        self.module.add(decl)
        validity = Interval.since(self._clock)
        if not self.processor.exists(decl.name):
            self.processor.tell_individual(decl.name, in_class=kb_class,
                                           time=validity)
        if mapped_from is not None and self.processor.exists(mapped_from):
            self.processor.tell_link(decl.name, "implements", mapped_from,
                                     time=validity)
        self._artifact_meta[decl.name] = {
            "kb_class": kb_class, "mapped_from": mapped_from,
        }
        return decl.name

    def drop_artifact(self, name: str) -> None:
        """Remove an artefact from the current module (KB retraction is
        the backtracker's business)."""
        try:
            self.module.remove(name)
        except Exception:
            pass

    def retire_artifact(self, name: str) -> None:
        """Take an artefact out of the current module, keeping it
        restorable (used when a decision replaces it)."""
        decl = self.module.get(name)
        self.module.remove(name)
        self._retired.setdefault(name, []).append(decl)

    def restore_artifact(self, name: str) -> None:
        """Put the latest retired version back into the module."""
        stack = self._retired.get(name)
        if not stack:
            raise GKBMSError(f"no retired version of artefact {name!r}")
        self.module.add(stack.pop())

    def revise_artifact(self, base: str, new_decl) -> str:
        """Replace ``base`` in the module by ``new_decl`` (same name)
        and document the revision as a versioned design object
        ``base~<tick>`` in the knowledge base."""
        old = self.module.get(base)
        self.module.remove(base)
        self._retired.setdefault(base, []).append(old)
        self.module.add(new_decl)
        versioned = f"{base}~{self._clock}"
        validity = Interval.since(self._clock)
        meta = self._artifact_meta.get(base, {})
        kb_class = meta.get("kb_class") or "DBPL_Object"
        if not self.processor.exists(versioned):
            self.processor.tell_individual(versioned, in_class=kb_class,
                                           time=validity)
            if self.processor.exists(base):
                self.processor.tell_link(versioned, "revises", base,
                                         time=validity)
        return versioned

    def unrevise_artifact(self, base: str) -> None:
        """Undo the latest revision of ``base`` in the module."""
        stack = self._retired.get(base)
        if not stack:
            raise GKBMSError(f"no earlier version of artefact {base!r}")
        self.module.remove(base)
        self.module.add(stack.pop())

    def snapshot_artifacts(self) -> Dict:
        """Copy the artefact-store state (module + retired stacks +
        metadata) so a failing decision can roll it back."""
        import copy

        return {
            "relations": dict(self.module.relations),
            "selectors": dict(self.module.selectors),
            "constructors": dict(self.module.constructors),
            "transactions": dict(self.module.transactions),
            "retired": {k: list(v) for k, v in self._retired.items()},
            "meta": copy.deepcopy(self._artifact_meta),
        }

    def restore_artifacts(self, snapshot: Dict) -> None:
        """Restore a snapshot taken by :meth:`snapshot_artifacts`."""
        self.module.relations = dict(snapshot["relations"])
        self.module.selectors = dict(snapshot["selectors"])
        self.module.constructors = dict(snapshot["constructors"])
        self.module.transactions = dict(snapshot["transactions"])
        self._retired = {k: list(v) for k, v in snapshot["retired"].items()}
        self._artifact_meta = dict(snapshot["meta"])

    def mapped_from(self, name: str) -> Optional[str]:
        """The design object an artefact implements, if known."""
        return self._artifact_meta.get(name, {}).get("mapped_from")

    def artifact_kb_class(self, name: str) -> Optional[str]:
        """The design object class an artefact was told as."""
        return self._artifact_meta.get(name, {}).get("kb_class")

    # ------------------------------------------------------------------
    # Assumptions (the fig 2-4 mechanism)
    # ------------------------------------------------------------------

    def assume(self, name: str, assertion: Optional[str] = None) -> str:
        """Register a (checkable) assumption design decisions can rest
        on; pass its name in ``execute(..., assumptions=[name])``."""
        if not self.processor.exists(name):
            self.processor.tell_individual(name, in_class="Assumption")
        self._assumptions[name] = assertion
        return name

    def violated_assumptions(self, active_only: bool = True) -> List[str]:
        """Assumptions whose assertion no longer holds.

        With ``active_only`` (the default) an assumption only counts
        while some *active* decision rests on it — once the offending
        decision has been backtracked, the stale assumption no longer
        taints configurations.
        """
        evaluator = Evaluator(self.processor)
        resting: Dict[str, bool] = {}
        used_anywhere: Dict[str, bool] = {}
        for record in self.decisions.records.values():
            for assumption in record.assumptions:
                used_anywhere[assumption] = True
                if not record.is_retracted:
                    resting[assumption] = True
        violated = []
        for name, assertion in self._assumptions.items():
            if assertion is None:
                continue
            if active_only and used_anywhere.get(name) and not resting.get(name):
                continue
            if not evaluator.evaluate(parse_assertion(assertion)):
                violated.append(name)
        return violated

    # ------------------------------------------------------------------
    # External sources (fig 2-5's bottom layer)
    # ------------------------------------------------------------------

    def register_source(self, design_object: str, reference: str) -> str:
        """Record that a design object abstracts an external source
        ("tokens of the GKBMS only represent characteristic features of
        sources recorded outside the GKB")."""
        if not self.processor.exists(design_object):
            raise GKBMSError(f"unknown design object {design_object!r}")
        token = f"src:{reference}"
        if not self.processor.exists(token):
            self.processor.tell_individual(token, in_class="ExternalSource")
        self.processor.tell_link(design_object, "source", token,
                                 of_class="SourceRef")
        return token

    # ------------------------------------------------------------------
    # Derived services
    # ------------------------------------------------------------------

    def dependency_graph(self, include_retracted: bool = False) -> DependencyGraph:
        """The derived dependency graph (figs 2-2..2-4)."""
        return DependencyGraph(
            [self.decisions.records[did] for did in self.decisions.order],
            include_retracted=include_retracted,
        )

    def build_database(self, populate: bool = True) -> Database:
        """An executable database for the current module state."""
        database = Database()
        for decl in self.module.relations.values():
            database.create_relation(decl)
        for decl in self.module.selectors.values():
            database.create_selector(decl)
        # constructors may reference each other regardless of their
        # declaration order: insert in dependency order
        pending = list(self.module.constructors.values())
        while pending:
            progressed = False
            for decl in list(pending):
                known = set(database.relations) | set(database.constructors)
                if set(decl.expression.relations()) <= known:
                    database.create_constructor(decl)
                    pending.remove(decl)
                    progressed = True
            if not progressed:
                # let the engine raise its descriptive error
                database.create_constructor(pending[0])
        return database

    def navigator(self):
        """Status/process/temporal browsing service."""
        from repro.core.navigation import Navigator

        return Navigator(self)

    def versions(self):
        """Version & configuration management service."""
        from repro.core.versioning import VersionManager

        return VersionManager(self)

    def explainer(self):
        """The design explanation facility."""
        from repro.core.explanation import Explainer

        return Explainer(self)

    def level_of(self, name: str) -> str:
        """Life-cycle level of a design object."""
        return level_of(self.processor, name)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def execute(self, decision_class: str, inputs: Dict[str, str], **kwargs):
        """Shorthand for :meth:`DecisionEngine.execute`."""
        return self.decisions.execute(decision_class, inputs, **kwargs)

    def code_frames(self) -> str:
        """The current implementation's code frames (figs 2-2 to 2-4)."""
        from repro.languages.dbpl.printer import print_module

        return print_module(self.module)
