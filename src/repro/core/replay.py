"""Decision replay / revision support (section 3.3).

"decision processing — besides pure backtracking of decisions, tool
specifications enable some kind of revision support; for instance,
adding an attribute in the design could be processed by the GKBMS by
replaying decisions (GKBMS tests their re-applicability)."

:class:`Replayer` takes retracted (or historical) decision records,
tests whether their decision class is still applicable in the *current*
state, and re-executes the applicable ones with the same tool, inputs
and parameters.  Decisions that are no longer applicable are reported,
not silently skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import DecisionError, NotApplicableError
from repro.core.decisions import DecisionEngine, DecisionRecord


@dataclass
class ReplayOutcome:
    """Result of attempting to replay one decision."""

    original: str
    status: str  # replayed | not_applicable | failed
    new_decision: Optional[str] = None
    reason: str = ""


@dataclass
class ReplayReport:
    """Aggregated outcomes of a replay run."""
    outcomes: List[ReplayOutcome] = field(default_factory=list)

    @property
    def replayed(self) -> List[ReplayOutcome]:
        """Outcomes that re-executed successfully."""
        return [o for o in self.outcomes if o.status == "replayed"]

    @property
    def rejected(self) -> List[ReplayOutcome]:
        """Outcomes that did not replay."""
        return [o for o in self.outcomes if o.status != "replayed"]


class Replayer:
    """Re-applies documented decisions after upstream changes."""

    def __init__(self, gkbms) -> None:
        self.gkbms = gkbms
        self.engine: DecisionEngine = gkbms.decisions

    def is_reapplicable(self, record: DecisionRecord) -> bool:
        """Would the decision's class accept its inputs right now?"""
        try:
            dc = self.engine.get(record.decision_class)
            self.engine.check_applicability(dc, record.inputs)
        except (DecisionError, NotApplicableError):
            return False
        return True

    def replay(self, record: DecisionRecord,
               params: Optional[Dict] = None) -> ReplayOutcome:
        """Re-execute one historical decision in the current state."""
        dc_name = record.decision_class
        try:
            dc = self.engine.get(dc_name)
            self.engine.check_applicability(dc, record.inputs)
        except (DecisionError, NotApplicableError) as exc:
            return ReplayOutcome(record.did, "not_applicable", reason=str(exc))
        if record.tool is None:
            return ReplayOutcome(
                record.did, "not_applicable",
                reason="manual decisions cannot be replayed automatically",
            )
        try:
            new_record = self.engine.execute(
                dc_name,
                dict(record.inputs),
                tool=record.tool,
                params=params if params is not None else dict(record.params),
                actor=f"replay({record.actor})",
                rationale=f"replay of {record.did}",
                assumptions=list(record.assumptions),
            )
        except Exception as exc:  # tool failure is a reportable outcome
            return ReplayOutcome(record.did, "failed", reason=str(exc))
        return ReplayOutcome(record.did, "replayed", new_decision=new_record.did)

    def replay_all(self, records: Sequence[DecisionRecord],
                   stop_on_failure: bool = False) -> ReplayReport:
        """Replay a sequence of decisions in order."""
        report = ReplayReport()
        for record in records:
            outcome = self.replay(record)
            report.outcomes.append(outcome)
            if stop_on_failure and outcome.status != "replayed":
                break
        return report

    def replay_retracted(self, since_tick: int = 0) -> ReplayReport:
        """Try to re-apply every retracted decision (oldest first)."""
        victims = [
            self.engine.records[did]
            for did in self.engine.order
            if self.engine.records[did].is_retracted
            and self.engine.records[did].tick >= since_tick
        ]
        return self.replay_all(victims)
