"""Transaction mapping: TaxisDL transaction classes to DBPL transactions.

The conceptual design holds *declarative* transaction classes
(parameters, pre- and postconditions); the implementation needs DBPL
transaction programs.  This assistant generates the skeletons: one
parameterised DBPL transaction per TaxisDL transaction class, with one
update operation per relation that implements a parameter's entity
class — including the detail relations produced by normalisation, so a
``SendInvitation(inv : Invitations)`` becomes inserts on both
``InvitationRel2`` and ``InvReceivRel``.

The scenario's key-substitution step notes that the change "also
implies adaption of the corresponding constructor, selector, and
possibly transaction definitions"; the generated operations record the
key fields they use in their detail text, and
:func:`adapt_transactions_to_key` rewrites them when a key decision
fires (wired into :mod:`repro.core.mapping.keys`).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import DecisionError
from repro.languages.dbpl.ast import TransactionDecl, TransactionOp
from repro.languages.taxisdl.ast import TDLTransactionClass


def _relations_implementing(gkbms, entity_class: str) -> List[str]:
    """Current module relations that implement ``entity_class`` or one
    of its generalizations (normalisation splits count: both halves)."""
    proc = gkbms.processor
    accepted: List[str] = []
    targets = proc.generalizations(entity_class)
    for name in gkbms.module.relations:
        source = gkbms.mapped_from(name)
        if source is not None and source in targets:
            accepted.append(name)
        elif source is not None and entity_class in proc.generalizations(source):
            accepted.append(name)
    return accepted


def map_transaction_apply(gkbms, inputs: Dict[str, str],
                          params: Dict) -> Dict[str, List[str]]:
    """Generate a DBPL transaction for ``inputs['transaction']``."""
    txn_name = inputs["transaction"]
    design_txn: TDLTransactionClass | None = gkbms.design.transactions.get(
        txn_name
    )
    if design_txn is None:
        raise DecisionError(
            f"no transaction class {txn_name!r} in the current design"
        )
    operations: List[TransactionOp] = []
    for param_name, param_class in design_txn.parameters:
        relations = _relations_implementing(gkbms, param_class)
        if not relations:
            raise DecisionError(
                f"parameter {param_name!r} of {txn_name!r}: no relation "
                f"implements {param_class!r} yet — map the hierarchy first"
            )
        for relation in sorted(relations):
            decl = gkbms.module.relations[relation]
            detail = f"VALUES {param_name} KEY {', '.join(decl.key)}"
            operations.append(TransactionOp("insert", relation, detail))
    dbpl_name = params.get("name", f"T{txn_name}")
    decl = TransactionDecl(
        dbpl_name,
        parameters=list(design_txn.parameters),
        operations=operations,
    )
    gkbms.add_artifact(decl, kb_class="DBPL_Transaction",
                       mapped_from=txn_name)
    return {"program": [dbpl_name]}


def map_transaction_undo(gkbms, record) -> None:
    """Drop the generated transaction program from the module."""
    for name in record.all_outputs():
        gkbms.drop_artifact(name)


def adapt_transactions_to_key(gkbms, relation: str, drop: str,
                              new_key: Tuple[str, ...]) -> List[str]:
    """Rewrite transaction operations on ``relation`` whose detail text
    used the dropped key field; returns versioned artefact names."""
    revised: List[str] = []
    for txn in list(gkbms.module.transactions.values()):
        changed = False
        operations: List[TransactionOp] = []
        for op in txn.operations:
            if op.relation == relation and drop in op.detail:
                detail = op.detail.replace(drop, ", ".join(new_key))
                operations.append(TransactionOp(op.kind, op.relation, detail))
                changed = True
            else:
                operations.append(op)
        if changed:
            new_txn = TransactionDecl(txn.name, list(txn.parameters),
                                      operations)
            revised.append(gkbms.revise_artifact(txn.name, new_txn))
    return revised
