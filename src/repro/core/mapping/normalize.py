"""The normalisation assistant (fig 2-3, left side).

"InvitationType contains a set-valued attribute; a normalization
decision is therefore offered in the menu [...]  The new selector
expresses the referential integrity constraint among the two relations,
whereas the new constructor allows the reconstruction of the initial,
unnormalized invitation relation."

Given a relation with a ``SET OF T`` field, the assistant produces:

- a base relation (scenario: ``InvitationRel2``) without the set field;
- a detail relation (``InvReceivRel``) of (key, member) pairs;
- a referential-integrity selector (``InvitationsPaperIC``) from the
  detail back to the base;
- a constructor (``ConsInvitation``) joining the two back together.

The original unnormalised relation is retired from the current module
(but kept in the knowledge base as the decision's input); undo restores
it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import DecisionError
from repro.languages.dbpl.ast import (
    ConstructorDecl,
    Field,
    ForeignKey,
    Join,
    Project,
    RelationDecl,
    RelationRef,
    Rename,
    Select,
    SelectorDecl,
    Union,
)


def _replace_ref(expr, old: str, new: str):
    """Rewrite an algebra expression, renaming one base relation."""
    if isinstance(expr, RelationRef):
        return RelationRef(new) if expr.name == old else expr
    if isinstance(expr, Project):
        return Project(_replace_ref(expr.source, old, new), expr.columns)
    if isinstance(expr, Select):
        return Select(_replace_ref(expr.source, old, new), expr.equalities)
    if isinstance(expr, Rename):
        return Rename(_replace_ref(expr.source, old, new), expr.mapping)
    if isinstance(expr, Join):
        return Join(_replace_ref(expr.left, old, new),
                    _replace_ref(expr.right, old, new), expr.on)
    if isinstance(expr, Union):
        return Union(_replace_ref(expr.left, old, new),
                     _replace_ref(expr.right, old, new))
    return expr


def _set_fields(decl: RelationDecl) -> List[Field]:
    return [f for f in decl.fields if f.type_name.upper().startswith("SET OF ")]


def normalize_apply(gkbms, inputs: Dict[str, str], params: Dict) -> Dict[str, List[str]]:
    """Normalise ``inputs['relation']``; see module docstring."""
    original_name = inputs["relation"]
    decl = gkbms.module.relations.get(original_name)
    if decl is None:
        raise DecisionError(f"no relation {original_name!r} in the current module")
    set_fields = _set_fields(decl)
    if not set_fields:
        raise DecisionError(f"relation {original_name!r} has no set-valued field")
    if len(set_fields) > 1 and "field" not in params:
        raise DecisionError(
            f"relation {original_name!r} has several set-valued fields; "
            f"pass params['field']"
        )
    target_field = params.get("field", set_fields[0].name)
    set_field = next((f for f in decl.fields if f.name == target_field), None)
    if set_field is None or not set_field.type_name.upper().startswith("SET OF "):
        raise DecisionError(
            f"field {target_field!r} of {original_name!r} is not set-valued"
        )
    member_type = set_field.type_name[len("SET OF "):]

    base_name = params.get("base_name", f"{original_name}2")
    stem = original_name[:-3] if original_name.endswith("Rel") else original_name
    detail_name = params.get(
        "detail_name", f"{stem[:3]}{target_field[:6].capitalize()}Rel"
    )
    selector_name = params.get("selector_name", f"{stem}sPaperIC")
    constructor_name = params.get("constructor_name", f"Cons{stem}")

    base_decl = RelationDecl(
        base_name,
        [f for f in decl.fields if f.name != target_field],
        key=decl.key,
        of_type=decl.of_type,
    )
    detail_decl = RelationDecl(
        detail_name,
        [Field(part, decl.field_type(part)) for part in decl.key]
        + [Field(target_field, member_type)],
        key=tuple(decl.key) + (target_field,),
        of_type=decl.of_type,
    )
    selector_decl = SelectorDecl(
        selector_name,
        detail_name,
        ForeignKey(tuple(decl.key), base_name, tuple(decl.key)),
    )
    constructor_decl = ConstructorDecl(
        constructor_name,
        Join(RelationRef(base_name), RelationRef(detail_name), tuple(decl.key)),
    )

    gkbms.retire_artifact(original_name)
    mapped_from = gkbms.mapped_from(original_name)
    gkbms.add_artifact(base_decl, kb_class="NormalizedDBPL_Rel",
                       mapped_from=mapped_from)
    gkbms.add_artifact(detail_decl, kb_class="NormalizedDBPL_Rel",
                       mapped_from=mapped_from)
    gkbms.add_artifact(selector_decl, kb_class="DBPL_Selector",
                       mapped_from=mapped_from)
    gkbms.add_artifact(constructor_decl, kb_class="DBPL_Constructor",
                       mapped_from=mapped_from)

    # Constructors that read the retired relation are re-pointed to the
    # reconstruction view, so the module stays executable (e.g. the
    # move-down ConsPapers now projects over ConsInvitation).
    revised: List[str] = []
    for constructor in list(gkbms.module.constructors.values()):
        if constructor.name == constructor_name:
            continue
        if original_name in constructor.expression.relations():
            rewritten = _replace_ref(
                constructor.expression, original_name, constructor_name
            )
            revised.append(
                gkbms.revise_artifact(
                    constructor.name,
                    ConstructorDecl(constructor.name, rewritten),
                )
            )
    # Selectors referencing the retired relation (e.g. the isa selectors
    # a distribute mapping created) move to the key-preserving base
    # relation.
    for selector in list(gkbms.module.selectors.values()):
        if selector.name == selector_name:
            continue
        new_relation = (
            base_name if selector.relation == original_name
            else selector.relation
        )
        constraint = selector.constraint
        if isinstance(constraint, ForeignKey) and constraint.target == original_name:
            constraint = ForeignKey(
                constraint.columns, base_name, constraint.target_columns
            )
        if new_relation != selector.relation or constraint is not selector.constraint:
            revised.append(
                gkbms.revise_artifact(
                    selector.name,
                    SelectorDecl(selector.name, new_relation, constraint),
                )
            )
    return {
        "relations": [base_name, detail_name],
        "selector": [selector_name],
        "constructor": [constructor_name],
        "revised": revised,
    }


def normalize_undo(gkbms, record) -> None:
    """Drop the normalisation products, restore the original relation
    and un-revise the constructors that had been re-pointed."""
    for name in record.all_outputs():
        if "~" in name:
            gkbms.unrevise_artifact(name.split("~", 1)[0])
        else:
            gkbms.drop_artifact(name)
    gkbms.restore_artifact(record.inputs["relation"])
