"""Single-relation mapping strategy.

The third classical option from the design-tool literature the paper
cites ([BGM85]): map the *whole* generalization hierarchy onto one
universal relation with a type discriminator.  Attributes not defined
for a row's class stay null; per-class views select on the
discriminator and project the class's attributes back out.

Trade-offs against move-down/distribute (captured as criteria in the
multicriteria choice example): no joins or unions for any query, but
wide rows, null-heavy storage, and weaker typing.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import DecisionError
from repro.languages.dbpl.ast import (
    ConstructorDecl,
    Field,
    Project,
    RelationDecl,
    RelationRef,
    Select,
    Union,
)
from repro.languages.taxisdl.ast import TDLModel


def single_relation_apply(gkbms, inputs: Dict[str, str],
                          params: Dict) -> Dict[str, List[str]]:
    """Map the hierarchy rooted at ``inputs['hierarchy']`` onto one
    discriminated universal relation."""
    root = inputs["hierarchy"]
    design: TDLModel = gkbms.design
    key_attr = params.get("key_attr", "paperkey")
    type_attr = params.get("type_attr", "kind")
    classes = sorted(design.subclasses(root, strict=False))
    if not classes:
        raise DecisionError(f"unknown hierarchy {root!r}")

    # the universal heading: key + discriminator + every attribute
    fields = [Field(key_attr, "Surrogate"), Field(type_attr, "STRING")]
    seen = {key_attr, type_attr}
    for cls in classes:
        for attr in design.all_attributes(cls):
            if attr.name in seen:
                continue
            seen.add(attr.name)
            type_name = (
                f"SET OF {attr.target}" if attr.set_valued else attr.target
            )
            fields.append(Field(attr.name, type_name))
    rel_name = params.get("name", f"{root}AllRel")
    decl = RelationDecl(rel_name, fields, key=(key_attr,), of_type=root)
    gkbms.add_artifact(decl, kb_class="DBPL_Rel", mapped_from=root)

    # one view per class: select the class's (or its leaves') rows and
    # project its attributes
    constructors: List[str] = []
    for cls in classes:
        concrete = design.leaves(cls) or [cls]
        parts = [
            Select(RelationRef(rel_name), ((type_attr, leaf),))
            for leaf in sorted(set(concrete) | {cls})
        ]
        expr = parts[0]
        for part in parts[1:]:
            expr = Union(expr, part)
        columns = (key_attr,) + tuple(
            a.name for a in design.all_attributes(cls)
        )
        cons_name = f"Only{cls}"
        gkbms.add_artifact(
            ConstructorDecl(cons_name, Project(expr, columns)),
            kb_class="DBPL_Constructor",
            mapped_from=cls,
        )
        constructors.append(cons_name)
    return {"relations": [rel_name], "constructors": constructors}
