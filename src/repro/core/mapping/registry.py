"""Standard tools and decision classes of the first GKBMS prototype.

Section 2.2: "In its first prototype, the GKBMS provides a preliminary
set of rather general design decision classes such as mapping /
refinement.  This kernel knowledge will then be extended based on
improved tool assistants and experience gained during the DAIDA
project."

The hierarchy installed here mirrors fig 3-3: a most-general
``DBPL_MappingDec`` (executable manually with an editor), below it
``TDL_MappingDec`` with the two strategy specialisations, and the
refinement/choice decisions ``DecNormalize`` and ``DecKeySubstitution``.
"""

from __future__ import annotations

from typing import List

from repro.core.decisions import DecisionClass
from repro.core.tools import ToolSpec
from repro.core.mapping.strategies import (
    distribute_apply,
    mapping_undo,
    move_down_apply,
)
from repro.core.mapping.normalize import normalize_apply, normalize_undo
from repro.core.mapping.keys import key_substitution_apply, key_substitution_undo
from repro.core.mapping.transactions import (
    map_transaction_apply,
    map_transaction_undo,
)
from repro.core.mapping.single_relation import single_relation_apply


def standard_tools() -> List[ToolSpec]:
    """The tool specifications of the prototype's kernel knowledge."""
    return [
        ToolSpec(
            name="TDLEditor",
            description="plain editor; aids manual execution of any "
                        "mapping decision, guarantees nothing",
            automation="manual",
        ),
        ToolSpec(
            name="MoveDownMapper",
            description="maps a TaxisDL hierarchy to leaf relations plus "
                        "constructors for the non-leaves",
            automation="semi-automatic",
            guarantees=frozenset({"OutputsWellTyped"}),
            apply=move_down_apply,
            undo=mapping_undo,
        ),
        ToolSpec(
            name="DistributeMapper",
            description="maps a TaxisDL hierarchy to one relation per "
                        "class with isa selectors",
            automation="semi-automatic",
            guarantees=frozenset({"OutputsWellTyped"}),
            apply=distribute_apply,
            undo=mapping_undo,
        ),
        ToolSpec(
            name="Normalizer",
            description="splits a set-valued field into base + detail "
                        "relations with referential integrity",
            automation="automatic",
            guarantees=frozenset({"OutputsWellTyped", "RelationsNormalized"}),
            apply=normalize_apply,
            undo=normalize_undo,
        ),
        ToolSpec(
            name="SingleRelationMapper",
            description="maps a whole hierarchy onto one discriminated "
                        "universal relation with per-class views",
            automation="semi-automatic",
            guarantees=frozenset({"OutputsWellTyped"}),
            apply=single_relation_apply,
            undo=mapping_undo,
        ),
        ToolSpec(
            name="TransactionMapper",
            description="generates DBPL transaction skeletons from "
                        "TaxisDL transaction classes",
            automation="semi-automatic",
            guarantees=frozenset({"OutputsWellTyped"}),
            apply=map_transaction_apply,
            undo=map_transaction_undo,
        ),
        ToolSpec(
            name="KeySubstituter",
            description="replaces a surrogate key by an associative key "
                        "and cascades to selectors/constructors",
            automation="semi-automatic",
            guarantees=frozenset({"OutputsWellTyped"}),
            apply=key_substitution_apply,
            undo=key_substitution_undo,
        ),
    ]


def standard_decision_classes() -> List[DecisionClass]:
    """The preliminary decision class hierarchy (fig 3-3)."""
    return [
        DecisionClass(
            name="DBPL_MappingDec",
            description="most general decision: produce DBPL objects "
                        "from design objects (manual execution by editor)",
            inputs=(("source", "TDL_Object"),),
            outputs=(("result", "DBPL_Object"),),
            tools=("TDLEditor",),
            kind="mapping",
        ),
        DecisionClass(
            name="TDL_MappingDec",
            description="map a TaxisDL entity hierarchy to DBPL",
            inputs=(("hierarchy", "TDL_EntityClass"),),
            outputs=(("relations", "DBPL_Rel"),
                     ("constructors", "DBPL_Constructor")),
            isa=("DBPL_MappingDec",),
            tools=("TDLEditor",),
            kind="mapping",
        ),
        DecisionClass(
            name="DecMoveDown",
            description="move-down: relations for leaves only, views for "
                        "the upper classes",
            inputs=(("hierarchy", "TDL_EntityClass"),),
            outputs=(("relations", "DBPL_Rel"),
                     ("constructors", "DBPL_Constructor")),
            obligations=(("OutputsWellTyped", None),),
            isa=("TDL_MappingDec",),
            tools=("MoveDownMapper", "TDLEditor"),
            kind="mapping",
        ),
        DecisionClass(
            name="DecDistribute",
            description="distribute: one relation per entity class",
            inputs=(("hierarchy", "TDL_EntityClass"),),
            outputs=(("relations", "DBPL_Rel"),
                     ("constructors", "DBPL_Constructor"),
                     ("selectors", "DBPL_Selector")),
            obligations=(("OutputsWellTyped", None),),
            isa=("TDL_MappingDec",),
            tools=("DistributeMapper", "TDLEditor"),
            kind="mapping",
        ),
        DecisionClass(
            name="DecNormalize",
            description="normalize a relation with a set-valued field",
            inputs=(("relation", "DBPL_Rel"),),
            outputs=(("relations", "NormalizedDBPL_Rel"),
                     ("selector", "DBPL_Selector"),
                     ("constructor", "DBPL_Constructor"),
                     ("revised", "DBPL_Object")),
            obligations=(
                ("RelationsNormalized", None),
                ("KeysCorrect", None),
            ),
            isa=("DBPL_MappingDec",),
            tools=("Normalizer", "TDLEditor"),
            kind="refinement",
        ),
        DecisionClass(
            name="DecSingleRelation",
            description="single-relation: one universal relation with a "
                        "type discriminator, views per class",
            inputs=(("hierarchy", "TDL_EntityClass"),),
            outputs=(("relations", "DBPL_Rel"),
                     ("constructors", "DBPL_Constructor")),
            obligations=(("OutputsWellTyped", None),),
            isa=("TDL_MappingDec",),
            tools=("SingleRelationMapper", "TDLEditor"),
            kind="mapping",
        ),
        DecisionClass(
            name="DecMapTransaction",
            description="map a TaxisDL transaction class to a DBPL "
                        "transaction program skeleton",
            inputs=(("transaction", "TDL_TransactionClass"),),
            outputs=(("program", "DBPL_Transaction"),),
            obligations=(("OutputsWellTyped", None),),
            isa=("DBPL_MappingDec",),
            tools=("TransactionMapper", "TDLEditor"),
            kind="mapping",
        ),
        DecisionClass(
            name="DecKeySubstitution",
            description="replace a surrogate key by an associative key "
                        "(creates an alternative implementation version)",
            inputs=(("relation", "NormalizedDBPL_Rel"),),
            outputs=(("revised", "DBPL_Object"),),
            obligations=(("KeysCorrect", None),),
            isa=("DBPL_MappingDec",),
            tools=("KeySubstituter", "TDLEditor"),
            kind="choice",
        ),
    ]
