"""The mapping assistants (S13): TaxisDL to DBPL.

Section 2.1 names the strategies: "There are several possible mapping
strategies [BGM85, WEDD87]: distribute would generate one relation per
TaxisDL entity class, whereas move-down only generates relations for
leaves of the hierarchy and represents the other ones by views (called
constructors in DBPL)."  Plus the two follow-up assistants the scenario
exercises: normalisation of set-valued attributes and key substitution.

Every assistant is packaged as a :class:`~repro.core.tools.ToolSpec`
apply/undo pair by :func:`standard_tools`, and the matching decision
classes by :func:`standard_decision_classes`.
"""

from repro.core.mapping.strategies import (
    distribute_apply,
    mapping_undo,
    move_down_apply,
    relation_name_for,
)
from repro.core.mapping.normalize import normalize_apply, normalize_undo
from repro.core.mapping.keys import key_substitution_apply, key_substitution_undo
from repro.core.mapping.registry import standard_decision_classes, standard_tools

__all__ = [
    "distribute_apply",
    "mapping_undo",
    "move_down_apply",
    "relation_name_for",
    "normalize_apply",
    "normalize_undo",
    "key_substitution_apply",
    "key_substitution_undo",
    "standard_decision_classes",
    "standard_tools",
]
