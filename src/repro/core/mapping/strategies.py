"""Hierarchy-mapping strategies: move-down and distribute (section 2.1).

Both strategies map a TaxisDL generalization hierarchy to DBPL:

- **move-down** generates one relation per *leaf* class, carrying all
  inherited attributes plus an artificial surrogate key (``paperkey``
  in the scenario — "initially required to map the object-oriented
  TaxisDL model which does not have keys"); every non-leaf class
  becomes a constructor: the union of its leaves projected onto the
  non-leaf's attributes.
- **distribute** generates one relation per class carrying only its
  *own* attributes; subclass relations reference their superclass
  relation by key (selectors), and a constructor per class joins the
  chain back together.

Set-valued TaxisDL attributes are carried as ``SET OF T`` fields at
this stage — resolving them is the *normalisation* decision's job,
which is exactly the order of decisions in the paper's scenario.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import DecisionError
from repro.languages.dbpl.ast import (
    ConstructorDecl,
    Field,
    ForeignKey,
    Join,
    Project,
    RelationDecl,
    RelationRef,
    SelectorDecl,
    Union,
)
from repro.languages.taxisdl.ast import TDLAttribute, TDLModel


def relation_name_for(entity_class: str) -> str:
    """Default relation name: Invitations -> InvitationRel."""
    stem = entity_class[:-1] if entity_class.endswith("s") else entity_class
    return f"{stem}Rel"


def _field_for(attr: TDLAttribute) -> Field:
    type_name = f"SET OF {attr.target}" if attr.set_valued else attr.target
    return Field(attr.name, type_name)


def _project_columns(design: TDLModel, cls: str, key_attr: str) -> Tuple[str, ...]:
    return (key_attr,) + tuple(a.name for a in design.all_attributes(cls))


def _union_of(parts: List) -> object:
    expr = parts[0]
    for part in parts[1:]:
        expr = Union(expr, part)
    return expr


def move_down_apply(gkbms, inputs: Dict[str, str], params: Dict) -> Dict[str, List[str]]:
    """Map the hierarchy rooted at ``inputs['hierarchy']`` by move-down."""
    root = inputs["hierarchy"]
    design: TDLModel = gkbms.design
    key_attr = params.get("key_attr", "paperkey")
    only = params.get("only")  # restrict to these leaf classes
    leaves = design.leaves(root)
    if only is not None:
        leaves = [leaf for leaf in leaves if leaf in only]
    if not leaves:
        raise DecisionError(f"hierarchy {root!r} has no (selected) leaves to map")

    relations: List[str] = []
    constructors: List[str] = []
    for leaf in leaves:
        rel_name = params.get("names", {}).get(leaf, relation_name_for(leaf))
        fields = [Field(key_attr, "Surrogate")]
        fields += [_field_for(a) for a in design.all_attributes(leaf)]
        decl = RelationDecl(rel_name, fields, key=(key_attr,), of_type=leaf)
        gkbms.add_artifact(decl, kb_class="DBPL_Rel", mapped_from=leaf)
        relations.append(rel_name)

    # Non-leaf classes above the mapped leaves become constructors.
    non_leaves = [
        cls for cls in design.subclasses(root, strict=False)
        if cls not in leaves and set(design.subclasses(cls)) & set(leaves)
        or cls == root
    ]
    for cls in sorted(set(non_leaves)):
        if cls in leaves:
            continue
        covered = [leaf for leaf in leaves
                   if cls in design.superclasses(leaf, strict=False)]
        if not covered:
            continue
        columns = _project_columns(design, cls, key_attr)
        parts = [
            Project(RelationRef(params.get("names", {}).get(leaf, relation_name_for(leaf))), columns)
            for leaf in covered
        ]
        cons_name = params.get("names", {}).get(f"Cons{cls}", f"Cons{cls}")
        decl = ConstructorDecl(cons_name, _union_of(parts))
        gkbms.add_artifact(decl, kb_class="DBPL_Constructor", mapped_from=cls)
        constructors.append(cons_name)
    return {"relations": relations, "constructors": constructors}


def distribute_apply(gkbms, inputs: Dict[str, str], params: Dict) -> Dict[str, List[str]]:
    """Map the hierarchy rooted at ``inputs['hierarchy']`` by distribute."""
    root = inputs["hierarchy"]
    design: TDLModel = gkbms.design
    key_attr = params.get("key_attr", "paperkey")
    classes = sorted(design.subclasses(root, strict=False))

    relations: List[str] = []
    selectors: List[str] = []
    constructors: List[str] = []
    rel_names = {
        cls: params.get("names", {}).get(cls, relation_name_for(cls))
        for cls in classes
    }
    for cls in classes:
        own = design.get(cls).attributes
        fields = [Field(key_attr, "Surrogate")] + [_field_for(a) for a in own]
        decl = RelationDecl(rel_names[cls], fields, key=(key_attr,), of_type=cls)
        gkbms.add_artifact(decl, kb_class="DBPL_Rel", mapped_from=cls)
        relations.append(rel_names[cls])

    for cls in classes:
        for sup in design.get(cls).isa:
            if sup not in rel_names:
                continue
            name = f"{rel_names[cls]}IsA{sup}"
            decl = SelectorDecl(
                name,
                rel_names[cls],
                ForeignKey((key_attr,), rel_names[sup], (key_attr,)),
            )
            gkbms.add_artifact(decl, kb_class="DBPL_Selector", mapped_from=cls)
            selectors.append(name)

    for cls in classes:
        chain = [rel_names[cls]] + [
            rel_names[sup] for sup in design.superclasses(cls) if sup in rel_names
        ]
        if len(chain) < 2:
            continue
        expr: object = RelationRef(chain[0])
        for upper in chain[1:]:
            expr = Join(expr, RelationRef(upper), (key_attr,))
        cons_name = f"Full{cls}"
        gkbms.add_artifact(
            ConstructorDecl(cons_name, expr),
            kb_class="DBPL_Constructor", mapped_from=cls,
        )
        constructors.append(cons_name)
    return {
        "relations": relations,
        "selectors": selectors,
        "constructors": constructors,
    }


def mapping_undo(gkbms, record) -> None:
    """Undo a hierarchy mapping: drop the produced artefacts."""
    for name in record.all_outputs():
        gkbms.drop_artifact(name)
