"""The key-substitution assistant (fig 2-3 right side, fig 2-4).

"Observing that the system contains only invitations and no other
subclasses of papers, the developer decides to 'make the system more
user-friendly' by replacing the artificial paperkey attribute [...]
with date, author.  This change also implies adaption of the
corresponding constructor, selector, and possibly transaction
definitions."

The assistant rewrites the target relation to use an associative key
(dropping the surrogate field), then cascades: every selector that
referenced the relation through the dropped field is rewritten to the
new key, the detail relations those selectors guard are re-keyed, and
every constructor joining through the dropped field re-joins on the new
key.  The revised artefacts keep their DBPL names (as in the figures)
but become new *versions*: the knowledge base gets fresh versioned
design objects (``InvitationRel2~<tick>``) justified by the choice
decision, which is what makes fig 3-4's alternative-version lattice
fall out of the documentation.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import DecisionError
from repro.languages.dbpl.ast import (
    ConstructorDecl,
    Field,
    ForeignKey,
    Join,
    Project,
    RelationDecl,
    Rename,
    Select,
    SelectorDecl,
    Union,
)


def _substitute_columns(columns: Tuple[str, ...], drop: str,
                        new_key: Tuple[str, ...]) -> Tuple[str, ...]:
    """Replace the dropped surrogate column by the associative key."""
    out = []
    for column in columns:
        if column == drop:
            out.extend(part for part in new_key if part not in out)
        elif column not in out:
            out.append(column)
    return tuple(out)


def _rewrite(expr, old_key: Tuple[str, ...], new_key: Tuple[str, ...],
             drop: str):
    """Adapt an algebra expression to the key substitution: joins on
    the old key re-join on the new one, projections over the dropped
    surrogate project the associative key instead."""
    if isinstance(expr, Join):
        on = new_key if drop in expr.on or tuple(expr.on) == old_key else expr.on
        return Join(
            _rewrite(expr.left, old_key, new_key, drop),
            _rewrite(expr.right, old_key, new_key, drop),
            tuple(on),
        )
    if isinstance(expr, Project):
        return Project(
            _rewrite(expr.source, old_key, new_key, drop),
            _substitute_columns(expr.columns, drop, new_key),
        )
    if isinstance(expr, Select):
        return Select(_rewrite(expr.source, old_key, new_key, drop),
                      expr.equalities)
    if isinstance(expr, Rename):
        return Rename(_rewrite(expr.source, old_key, new_key, drop),
                      expr.mapping)
    if isinstance(expr, Union):
        return Union(_rewrite(expr.left, old_key, new_key, drop),
                     _rewrite(expr.right, old_key, new_key, drop))
    return expr


def key_substitution_apply(gkbms, inputs: Dict[str, str], params: Dict) -> Dict[str, List[str]]:
    """Substitute the surrogate key of ``inputs['relation']`` by the
    associative key ``params['key']``."""
    relation = inputs["relation"]
    decl = gkbms.module.relations.get(relation)
    if decl is None:
        raise DecisionError(f"no relation {relation!r} in the current module")
    new_key = tuple(params["key"])
    drop = params.get("drop", decl.key[0] if len(decl.key) == 1 else None)
    if drop is None:
        raise DecisionError("params['drop'] required for composite surrogate keys")
    field_names = decl.field_names()
    missing = [part for part in new_key if part not in field_names]
    if missing:
        raise DecisionError(
            f"associative key component(s) {missing} are not fields of "
            f"{relation!r}"
        )
    old_key = tuple(decl.key)

    revised: List[str] = []

    # 1. the relation itself: drop the surrogate, re-key
    new_decl = RelationDecl(
        decl.name,
        [f for f in decl.fields if f.name != drop],
        key=new_key,
        of_type=decl.of_type,
    )
    revised.append(gkbms.revise_artifact(decl.name, new_decl))

    # 2. cascade to selectors referencing the relation through `drop`
    rekeyed_relations = [relation]
    key_types = {part: decl.field_type(part) for part in new_key}
    for selector in list(gkbms.module.selectors.values()):
        constraint = selector.constraint
        if not isinstance(constraint, ForeignKey):
            continue
        if constraint.target != relation or drop not in constraint.target_columns:
            continue
        detail = gkbms.module.relations.get(selector.relation)
        if detail is not None:
            detail_fields = [Field(part, key_types[part]) for part in new_key]
            detail_fields += [
                f for f in detail.fields if f.name not in (drop,) + new_key
            ]
            new_detail = RelationDecl(
                detail.name,
                detail_fields,
                key=new_key
                + tuple(f.name for f in detail.fields
                        if f.name in detail.key and f.name != drop),
                of_type=detail.of_type,
            )
            revised.append(gkbms.revise_artifact(detail.name, new_detail))
            rekeyed_relations.append(detail.name)
        new_selector = SelectorDecl(
            selector.name,
            selector.relation,
            ForeignKey(new_key, relation, new_key),
        )
        revised.append(gkbms.revise_artifact(selector.name, new_selector))

    # 3. cascade to constructors joining or projecting through `drop`
    for constructor in list(gkbms.module.constructors.values()):
        rewritten = _rewrite(constructor.expression, old_key, new_key, drop)
        if rewritten != constructor.expression:
            revised.append(
                gkbms.revise_artifact(
                    constructor.name, ConstructorDecl(constructor.name, rewritten)
                )
            )

    # 4. "...and possibly transaction definitions": adapt generated
    # transactions whose operations used the dropped key field — on the
    # target relation and on every re-keyed detail relation
    from repro.core.mapping.transactions import adapt_transactions_to_key

    for rekeyed in rekeyed_relations:
        revised.extend(
            adapt_transactions_to_key(gkbms, rekeyed, drop, new_key)
        )

    return {"revised": revised}


def key_substitution_undo(gkbms, record) -> None:
    """Restore every artefact revised by the key decision."""
    for name in record.outputs.get("revised", []):
        base = name.split("~", 1)[0]
        gkbms.unrevise_artifact(base)
