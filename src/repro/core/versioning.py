"""Version and configuration management (section 3.3.2, fig 3-4).

"The decision structure described in section 3.2 can be exploited for
this kind of version and configuration management:

- Allowable multi-level configurations of world/system models, designs,
  and implementations are those which are interrelated by mapping
  decisions (vertical configuration by means of equivalences).
- Allowable one-level (sub)configurations must be consistent, as
  documented by refinement decisions inside a (sub)configuration and
  mapping decisions on coherent higher-level objects (horizontal
  configuration by means of component configuration).
- Versioning rests upon choice decisions.  An alternative version is
  created each time an object is refined or mapped alternatively
  [...]  In this way, version and configuration management come as a
  natural by-product of the decision-based documentation approach."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import VersionError
from repro.core.metamodel import LEVEL_OF_CLASS, level_of


@dataclass
class Configuration:
    """A derived configuration: one level projected from the history."""

    level: str
    objects: List[str]
    complete: bool
    missing: List[str] = field(default_factory=list)
    consistent: bool = True
    issues: List[str] = field(default_factory=list)

    def __repr__(self) -> str:
        flags = []
        if self.complete:
            flags.append("complete")
        if self.consistent:
            flags.append("consistent")
        return (
            f"Configuration({self.level}, {len(self.objects)} object(s), "
            f"{' '.join(flags) or 'INVALID'})"
        )


@dataclass(frozen=True)
class VersionNode:
    """A version of a design object, created by one decision."""

    name: str
    base: str
    decision: Optional[str]
    tick: int
    active: bool


class VersionManager:
    """Derives versions and configurations from the decision history."""

    def __init__(self, gkbms) -> None:
        self.gkbms = gkbms

    # ------------------------------------------------------------------
    # Versions (choice decisions)
    # ------------------------------------------------------------------

    def base_of(self, name: str) -> str:
        """Strip the ``~tick`` version suffix."""
        return name.split("~", 1)[0]

    def versions_of(self, base: str) -> List[VersionNode]:
        """All documented versions of a design object, oldest first.

        The plain name is version zero; each ``base~tick`` object
        created by a revising (choice) decision is a further version.
        A version is *active* when its creating decision still stands
        (and for the base: when no active revision supersedes it).
        """
        proc = self.gkbms.processor
        if not proc.exists(base) and not self._revisions(base):
            raise VersionError(f"unknown design object {base!r}")
        nodes: List[VersionNode] = []
        revisions = self._revisions(base)
        active_revisions = [
            (name, did, tick) for name, did, tick in revisions
            if did is None or not self.gkbms.decisions.records[did].is_retracted
        ]
        if proc.exists(base):
            creator = self._creator(base)
            base_tick = (
                self.gkbms.decisions.records[creator].tick
                if creator is not None else 0
            )
            nodes.append(VersionNode(
                base, base, creator, base_tick,
                active=not active_revisions,
            ))
        for name, did, tick in revisions:
            active = (name, did, tick) in active_revisions and proc.exists(name)
            nodes.append(VersionNode(name, base, did, tick, active=active))
        nodes.sort(key=lambda n: n.tick)
        return nodes

    def _revisions(self, base: str) -> List[Tuple[str, Optional[str], int]]:
        out = []
        for record in self.gkbms.decisions.records.values():
            for name in record.all_outputs():
                if "~" in name and self.base_of(name) == base:
                    out.append((name, record.did, record.tick))
        return sorted(out, key=lambda item: item[2])

    def _creator(self, name: str) -> Optional[str]:
        producers = self.gkbms.decisions.producers_of(name)
        return producers[0].did if producers else None

    def current(self, base: str) -> str:
        """The active version of a design object."""
        nodes = [n for n in self.versions_of(base) if n.active]
        if not nodes:
            raise VersionError(f"no active version of {base!r}")
        return nodes[-1].name

    def alternatives(self, base: str) -> List[VersionNode]:
        """Versions created by *choice* decisions — the alternative
        implementations fig 3-4 draws as branching arrows."""
        out = []
        for node in self.versions_of(base):
            if node.decision is None:
                continue
            record = self.gkbms.decisions.records[node.decision]
            dc = self.gkbms.decisions.get(record.decision_class)
            if dc.kind == "choice":
                out.append(node)
        return out

    # ------------------------------------------------------------------
    # Configurations
    # ------------------------------------------------------------------

    def _level_objects(self, level: str) -> List[str]:
        proc = self.gkbms.processor
        roots = [root for root, lvl in LEVEL_OF_CLASS.items() if lvl == level]
        names: Set[str] = set()
        for root in roots:
            names |= proc.instances_of(root)
        return sorted(names)

    def vertical_configuration(self, name: str) -> Dict[str, List[str]]:
        """The multi-level configuration ``name`` belongs to: objects
        per level reachable through mapping-decision equivalences."""
        proc = self.gkbms.processor
        reached: Set[str] = {name}
        frontier = [name]
        while frontier:
            current = frontier.pop()
            related: Set[str] = set()
            for record in self.gkbms.decisions.producers_of(current):
                if record.is_retracted:
                    continue
                related |= set(record.inputs.values())
            for record in self.gkbms.decisions.consumers_of(current):
                if record.is_retracted:
                    continue
                related |= set(record.all_outputs())
            for other in related - reached:
                reached.add(other)
                frontier.append(other)
        grouped: Dict[str, List[str]] = {}
        for obj in sorted(reached):
            grouped.setdefault(level_of(proc, obj), []).append(obj)
        grouped.pop("unknown", None)
        return grouped

    def configure(self, level: str = "implementation") -> Configuration:
        """"Configure the latest complete <level> version": project the
        derivation structure onto one level, excluding non-used
        versions, and check completeness and consistency."""
        active_objects = []
        for name in self._level_objects(level):
            if "~" in name:
                continue  # version tokens are bookkeeping, not components
            try:
                self.current(name)  # raises when no version is active
            except VersionError:
                continue
            # the *module-level* artefact keeps the base name; include
            # it when some version of it is active
            active_objects.append(name)

        issues: List[str] = []
        missing: List[str] = []
        if level == "implementation":
            # completeness: every design object that was *ever* input to
            # a mapping decision must still be covered by an active one
            # (a backtracked mapping without replacement leaves a hole)
            ever_mapped: Set[str] = set()
            actively_mapped: Set[str] = set()
            for record in self.gkbms.decisions.records.values():
                dc = self.gkbms.decisions.get(record.decision_class)
                if dc.kind != "mapping":
                    continue
                ever_mapped |= set(record.inputs.values())
                if not record.is_retracted:
                    actively_mapped |= set(record.inputs.values())
            missing.extend(ever_mapped - actively_mapped)
        open_obligations = self.gkbms.decisions.open_obligations()
        if open_obligations:
            issues.append(
                f"{len(open_obligations)} open proof obligation(s): "
                + ", ".join(o.name for o in open_obligations)
            )
        violated = self.gkbms.violated_assumptions()
        if violated:
            issues.append("violated assumption(s): " + ", ".join(violated))
        return Configuration(
            level=level,
            objects=active_objects,
            complete=not missing,
            missing=sorted(set(missing)),
            consistent=not issues,
            issues=issues,
        )

    # ------------------------------------------------------------------
    # The fig 3-4 lattice
    # ------------------------------------------------------------------

    def derivation_lattice(self) -> List[Tuple[str, str, str]]:
        """Edges (source, kind, target) of the decision-based
        version/configuration structure: ``mapping`` and ``refinement``
        edges connect objects through decisions; ``choice`` edges
        connect a base object to its alternative versions."""
        edges: List[Tuple[str, str, str]] = []
        for did in self.gkbms.decisions.order:
            record = self.gkbms.decisions.records[did]
            dc = self.gkbms.decisions.get(record.decision_class)
            kind = dc.kind if dc.kind != "other" else "decision"
            for source in record.inputs.values():
                for target in record.all_outputs():
                    edges.append((source, kind, target))
        return edges

    def render_lattice(self) -> str:
        """ASCII rendering of the derivation lattice."""
        from repro.models.display.graph_dag import GraphDAGRenderer

        renderer = GraphDAGRenderer()
        renderer.extend(self.derivation_lattice())
        return renderer.to_ascii()
