"""The GKBMS: decision-based documentation of system evolution (S11-S20).

This package is the paper's primary contribution: the Global Knowledge
Base Management System that "views the software development and
maintenance process as a history of tool-supported decisions" (section
1, point 4).  It is implemented *as a model in ConceptBase* (section
3.2), i.e. everything below builds exclusively on the kernel packages.

Layout:

- :mod:`repro.core.metamodel` — the conceptual process model: the
  metaclasses ``DesignObject`` / ``DesignDecision`` / ``DesignTool``
  and the ``FROM`` / ``TO`` / ``BY`` / ``PART`` attribute metaclasses
  (figs 2-5, 2-6, 3-3);
- :mod:`repro.core.tools` — design tool specifications with guarantees;
- :mod:`repro.core.decisions` — decision classes, applicability
  matching, tool-aided execution, decision instances and proof
  obligations;
- :mod:`repro.core.dependency` — dependency graphs with zooming
  (figs 2-2 to 2-4);
- :mod:`repro.core.mapping` — the TaxisDL-to-DBPL mapping assistants:
  distribute, move-down, normalisation, key substitution (section 2.1);
- :mod:`repro.core.backtracking` — selective backtracking;
- :mod:`repro.core.replay` — decision replay / re-applicability;
- :mod:`repro.core.versioning` — decision-based versions and
  configurations (section 3.3.2, fig 3-4);
- :mod:`repro.core.navigation` — status / process / temporal browsing
  (section 3.3.1);
- :mod:`repro.core.rms` — reason maintenance (JTMS, ATMS) and its
  integration with GKBMS abstraction (section 3.3.3);
- :mod:`repro.core.group` — argumentation and multicriteria choice
  (section 3.3.3);
- :mod:`repro.core.explanation` — the design explanation facility;
- :mod:`repro.core.gkbms` — the facade wiring it all together.
"""

from repro.core.gkbms import GKBMS
from repro.core.decisions import DecisionClass, DecisionRecord, Obligation
from repro.core.tools import ToolSpec
from repro.core.metamodel import install_gkbms_metamodel

__all__ = [
    "GKBMS",
    "DecisionClass",
    "DecisionRecord",
    "Obligation",
    "ToolSpec",
    "install_gkbms_metamodel",
]
