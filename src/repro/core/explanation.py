"""The design explanation facility (section 3.3.3).

"As an enhancement of the navigation facilities, the predicative
specifications of tool and decision classes together with ConceptBase
rules and constraints will be used to develop a design explanation
facility."

:class:`Explainer` composes textual explanations from the documented
decision structure: why a design object exists (its justifying
decision, the tool application, the inputs it was derived from, the
stated rationale and assumptions, the verification status), and the
full derivation trace back to the design/requirements level.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import GKBMSError


class Explainer:
    """Answers "why does this object exist / have this status?"."""

    def __init__(self, gkbms) -> None:
        self.gkbms = gkbms

    # ------------------------------------------------------------------

    def explain_object(self, name: str) -> str:
        """Why a design object exists: its justifying decisions."""
        proc = self.gkbms.processor
        if not proc.exists(name):
            raise GKBMSError(f"unknown design object {name!r}")
        lines: List[str] = []
        classes = sorted(
            cls for cls in proc.classes_of(name)
            if cls not in ("Proposition",)
        )
        level = self.gkbms.level_of(name)
        lines.append(f"{name} [{level}] in {', '.join(classes)}")
        producers = [
            record for record in self.gkbms.decisions.producers_of(name)
        ]
        if not producers:
            lines.append("  told directly (no justifying decision recorded)")
        for record in producers:
            status = " (RETRACTED)" if record.is_retracted else ""
            lines.append(
                f"  justified by {record.did}{status}: "
                f"{record.decision_class} at t{record.tick}"
            )
            dc = self.gkbms.decisions.get(record.decision_class)
            if dc.description:
                lines.append(f"    task: {dc.description}")
            if record.tool:
                tool = self.gkbms.tools.get(record.tool)
                lines.append(
                    f"    by tool {record.tool} ({tool.automation}): "
                    f"{tool.description}"
                )
            else:
                lines.append(f"    executed manually by {record.actor}")
            for role, value in sorted(record.inputs.items()):
                lines.append(f"    from {role} = {value}")
            if record.rationale:
                lines.append(f"    rationale: {record.rationale}")
            for assumption in record.assumptions:
                marker = (
                    " [VIOLATED]"
                    if assumption in self.gkbms.violated_assumptions(active_only=False)
                    else ""
                )
                lines.append(f"    assumes {assumption}{marker}")
            for obligation in record.obligations:
                detail = f" by {obligation.signer}" if obligation.signer else ""
                lines.append(
                    f"    obligation {obligation.name}: "
                    f"{obligation.status}{detail}"
                )
        return "\n".join(lines)

    def explain_decision(self, did: str) -> str:
        """One decision's task, I/O, tool and rationale."""
        record = self.gkbms.decisions.records.get(did)
        if record is None:
            raise GKBMSError(f"unknown decision {did!r}")
        dc = self.gkbms.decisions.get(record.decision_class)
        lines = [
            f"{did}: execution of decision class {dc.name} "
            f"({dc.kind}) at t{record.tick}"
            + (" — RETRACTED" if record.is_retracted else ""),
        ]
        if dc.description:
            lines.append(f"  task: {dc.description}")
        if dc.precondition:
            lines.append(f"  precondition: {dc.precondition}")
        for role, value in sorted(record.inputs.items()):
            lines.append(f"  from {role} = {value}")
        for role, names in sorted(record.outputs.items()):
            for name in names:
                lines.append(f"  to {role} = {name}")
        if record.tool:
            lines.append(f"  by {record.tool}")
        if record.rationale:
            lines.append(f"  rationale: {record.rationale}")
        return "\n".join(lines)

    # ------------------------------------------------------------------

    def trace(self, name: str, _depth: int = 0, _seen: Optional[set] = None) -> str:
        """Full derivation trace from ``name`` back to underived
        objects (the design/world model the implementation rests on)."""
        seen = _seen if _seen is not None else set()
        indent = "  " * _depth
        if name in seen:
            return f"{indent}{name} (see above)"
        seen.add(name)
        lines = [f"{indent}{name}"]
        producers = self.gkbms.decisions.producers_of(name)
        active = [r for r in producers if not r.is_retracted]
        if active:
            record = active[-1]
            lines.append(
                f"{indent}<- {record.did} ({record.decision_class}"
                + (f", {record.tool}" if record.tool else "")
                + ")"
            )
            for value in sorted(set(record.inputs.values())):
                lines.append(self.trace(value, _depth + 1, seen))
        return "\n".join(lines)

    def explain_constraint(self, checker, name: str,
                           instance: Optional[str] = None) -> str:
        """Trace a constraint's evaluation (§3.3.3: explanation through
        "ConceptBase rules and constraints").

        ``checker`` is the :class:`~repro.consistency.checker.
        ConsistencyChecker` holding the constraint; with ``instance``
        given, the per-instance form is traced for that object.
        """
        definition = checker.constraints().get(name)
        if definition is None:
            raise GKBMSError(f"unknown constraint {name!r}")
        env = {}
        if definition.per_instance:
            if instance is None:
                raise GKBMSError(
                    f"constraint {name!r} is per-instance; pass instance="
                )
            env = {"self": instance}
        header = (
            f"constraint {name} on {definition.attached_to}"
            + (f" for {instance}" if instance else "")
            + f": {definition.source}"
        )
        trace = checker.evaluator.explain(definition.expression, env)
        return header + "\n" + trace

    def explain_assumption(self, name: str) -> str:
        """Trace why an assumption holds or is violated right now."""
        assertion = self.gkbms._assumptions.get(name)
        if assertion is None:
            return f"assumption {name}: informal (no checkable assertion)"
        from repro.assertions.evaluator import Evaluator
        from repro.assertions.parser import parse_assertion

        evaluator = Evaluator(self.gkbms.processor)
        trace = evaluator.explain(parse_assertion(assertion))
        return f"assumption {name}: {assertion}\n{trace}"

    def why_retracted(self, did: str) -> str:
        """Explain a retraction in terms of assumptions and backtracking."""
        record = self.gkbms.decisions.records.get(did)
        if record is None:
            raise GKBMSError(f"unknown decision {did!r}")
        if not record.is_retracted:
            return f"{did} stands (not retracted)"
        lines = [f"{did} was retracted at t{record.retracted_at}"]
        violated = set(self.gkbms.violated_assumptions(active_only=False))
        for assumption in record.assumptions:
            if assumption in violated:
                lines.append(
                    f"  its assumption {assumption!r} no longer holds"
                )
        return "\n".join(lines)
