"""IBIS-style argumentation structures on design decisions.

Issues raise design questions ("how should the Papers hierarchy be
mapped?"); positions answer them (one per candidate decision class or
parameterisation); arguments support or object to positions.  The
structure is reflected into the knowledge base (classes ``Issue``,
``Position``, ``Argument``) so browsing and explanation reach it, and a
position can be *resolved* by pointing at the decision instance that
settled it — closing the loop between group discussion and the
documented history.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import GKBMSError


@dataclass
class Argument:
    """A supporting or objecting argument on a position."""
    aid: str
    position: str
    author: str
    text: str
    supports: bool  # False: objects to


@dataclass
class Position:
    """A candidate answer to an issue, optionally tied to a decision class and resolved by a decision instance."""
    pid: str
    issue: str
    author: str
    text: str
    decision_class: Optional[str] = None
    resolved_by: Optional[str] = None  # decision instance id

    @property
    def is_resolved(self) -> bool:
        """Has a documented decision settled it?"""
        return self.resolved_by is not None


@dataclass
class Issue:
    """A design question raised against the evolving system."""
    iid: str
    author: str
    text: str
    about: Optional[str] = None  # design object the issue concerns
    positions: List[str] = field(default_factory=list)
    status: str = "open"  # open | settled


class ArgumentationBase:
    """Issues/positions/arguments, reflected into the knowledge base."""

    def __init__(self, gkbms) -> None:
        self.gkbms = gkbms
        self.issues: Dict[str, Issue] = {}
        self.positions: Dict[str, Position] = {}
        self.arguments: Dict[str, Argument] = {}
        self._counter = itertools.count(1)
        proc = gkbms.processor
        for cls in ("Issue", "Position", "Argument"):
            if not proc.exists(cls):
                proc.define_class(cls, level="SimpleClass")

    # ------------------------------------------------------------------

    def raise_issue(self, author: str, text: str,
                    about: Optional[str] = None) -> Issue:
        """Open a design question (reflected into the base)."""
        iid = f"issue{next(self._counter)}"
        issue = Issue(iid, author, text, about=about)
        self.issues[iid] = issue
        proc = self.gkbms.processor
        proc.tell_individual(iid, in_class="Issue")
        if about is not None and proc.exists(about):
            proc.tell_link(iid, "about", about)
        return issue

    def take_position(self, issue: str, author: str, text: str,
                      decision_class: Optional[str] = None) -> Position:
        """Answer an issue, optionally naming a decision class."""
        if issue not in self.issues:
            raise GKBMSError(f"unknown issue {issue!r}")
        pid = f"pos{next(self._counter)}"
        position = Position(pid, issue, author, text,
                            decision_class=decision_class)
        self.positions[pid] = position
        self.issues[issue].positions.append(pid)
        proc = self.gkbms.processor
        proc.tell_individual(pid, in_class="Position")
        proc.tell_link(pid, "responds_to", issue)
        if decision_class is not None and proc.exists(decision_class):
            proc.tell_link(pid, "proposes", decision_class)
        return position

    def argue(self, position: str, author: str, text: str,
              supports: bool = True) -> Argument:
        """Support or object to a position."""
        if position not in self.positions:
            raise GKBMSError(f"unknown position {position!r}")
        aid = f"arg{next(self._counter)}"
        argument = Argument(aid, position, author, text, supports)
        self.arguments[aid] = argument
        proc = self.gkbms.processor
        proc.tell_individual(aid, in_class="Argument")
        label = "supports" if supports else "objects_to"
        proc.tell_link(aid, label, position)
        return argument

    # ------------------------------------------------------------------

    def score(self, position: str) -> int:
        """Naive argument balance: supports minus objections."""
        return sum(
            1 if a.supports else -1
            for a in self.arguments.values()
            if a.position == position
        )

    def preferred_position(self, issue: str) -> Optional[Position]:
        """Highest argument balance (ties by id)."""
        candidates = [self.positions[p] for p in self.issues[issue].positions]
        if not candidates:
            return None
        return max(candidates, key=lambda p: (self.score(p.pid), p.pid))

    def resolve(self, position: str, decision_id: str) -> None:
        """Record that a documented decision settled the position's
        issue (and thereby the issue itself)."""
        pos = self.positions.get(position)
        if pos is None:
            raise GKBMSError(f"unknown position {position!r}")
        if decision_id not in self.gkbms.decisions.records:
            raise GKBMSError(f"unknown decision {decision_id!r}")
        pos.resolved_by = decision_id
        self.issues[pos.issue].status = "settled"
        proc = self.gkbms.processor
        proc.tell_link(position, "resolved_by", decision_id)

    def open_issues(self) -> List[Issue]:
        """Issues still lacking a settling decision."""
        return [i for i in self.issues.values() if i.status == "open"]

    def sync_with_history(self) -> List[str]:
        """Reopen issues whose resolving decision was backtracked.

        This is the argumentation-on-derivation-decisions coupling of
        section 3.3.3: a position justified by a decision loses its
        resolution when the decision falls, and the issue returns to
        the open agenda.  Returns the reopened issue ids.
        """
        reopened: List[str] = []
        for position in self.positions.values():
            if position.resolved_by is None:
                continue
            record = self.gkbms.decisions.records.get(position.resolved_by)
            if record is not None and record.is_retracted:
                position.resolved_by = None
                issue = self.issues[position.issue]
                if issue.status != "open":
                    issue.status = "open"
                    reopened.append(issue.iid)
        return reopened

    def render(self, issue: str) -> str:
        """Textual IBIS rendering of one issue thread."""
        iss = self.issues.get(issue)
        if iss is None:
            raise GKBMSError(f"unknown issue {issue!r}")
        lines = [f"ISSUE {iss.iid} [{iss.status}] ({iss.author}): {iss.text}"]
        for pid in iss.positions:
            pos = self.positions[pid]
            resolved = f" -> resolved by {pos.resolved_by}" if pos.resolved_by else ""
            lines.append(
                f"  POSITION {pid} ({pos.author}, score "
                f"{self.score(pid):+d}): {pos.text}{resolved}"
            )
            for arg in self.arguments.values():
                if arg.position == pid:
                    marker = "+" if arg.supports else "-"
                    lines.append(
                        f"    {marker} {arg.aid} ({arg.author}): {arg.text}"
                    )
        return "\n".join(lines)
