"""Group decision support (S19, section 3.3.3 / [HI88]).

"In [HI88], we develop a proposal for enhancing the above mentioned RMS
with mechanisms for multicriteria choice support, argumentation on
derivation decisions, and explicit group work organization in an
object-oriented context."

- :mod:`repro.core.group.argumentation` — IBIS-style issues, positions
  and arguments attached to design decisions, stored in the knowledge
  base like everything else;
- :mod:`repro.core.group.choice` — multicriteria choice support
  (weighted scoring + dominance analysis) for selecting among decision
  alternatives, e.g. move-down vs distribute.
"""

from repro.core.group.argumentation import Argument, ArgumentationBase, Issue, Position
from repro.core.group.choice import Alternative, ChoiceProblem, Criterion

__all__ = [
    "Argument",
    "ArgumentationBase",
    "Issue",
    "Position",
    "Alternative",
    "ChoiceProblem",
    "Criterion",
]
