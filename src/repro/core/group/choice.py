"""Multicriteria choice support for decision alternatives.

Supports the selection among alternative decision classes or
parameterisations (move-down vs distribute, surrogate vs associative
keys) by simple additive weighting over named criteria, plus dominance
analysis: a dominated alternative can be discarded regardless of
weights, which is the robust part of the recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import GKBMSError


@dataclass(frozen=True)
class Criterion:
    """A named criterion with a weight; higher scores are better."""

    name: str
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise GKBMSError(f"criterion {self.name!r} has negative weight")


@dataclass
class Alternative:
    """A candidate (e.g. a decision class) with per-criterion scores."""

    name: str
    scores: Dict[str, float] = field(default_factory=dict)
    decision_class: Optional[str] = None

    def score_for(self, criterion: str) -> float:
        """The score on one criterion (0 when unset)."""
        return self.scores.get(criterion, 0.0)


class ChoiceProblem:
    """A multicriteria selection among alternatives."""

    def __init__(self, criteria: List[Criterion]) -> None:
        if not criteria:
            raise GKBMSError("a choice problem needs at least one criterion")
        names = [c.name for c in criteria]
        if len(names) != len(set(names)):
            raise GKBMSError("duplicate criterion names")
        self.criteria = list(criteria)
        self.alternatives: List[Alternative] = []

    def add_alternative(self, alternative: Alternative) -> Alternative:
        """Register a candidate (validated)."""
        if any(a.name == alternative.name for a in self.alternatives):
            raise GKBMSError(f"duplicate alternative {alternative.name!r}")
        unknown = set(alternative.scores) - {c.name for c in self.criteria}
        if unknown:
            raise GKBMSError(
                f"alternative {alternative.name!r} scores unknown "
                f"criteria {sorted(unknown)}"
            )
        self.alternatives.append(alternative)
        return alternative

    # ------------------------------------------------------------------

    def total(self, alternative: Alternative) -> float:
        """Weighted additive total of one alternative."""
        return sum(
            criterion.weight * alternative.score_for(criterion.name)
            for criterion in self.criteria
        )

    def ranking(self) -> List[Tuple[str, float]]:
        """Alternatives by weighted total, best first."""
        ranked = sorted(
            self.alternatives,
            key=lambda a: (-self.total(a), a.name),
        )
        return [(a.name, self.total(a)) for a in ranked]

    def best(self) -> Alternative:
        """Highest weighted total (ties by name)."""
        if not self.alternatives:
            raise GKBMSError("no alternatives to choose from")
        return max(
            self.alternatives,
            key=lambda a: (self.total(a), a.name),
        )

    # ------------------------------------------------------------------

    def dominates(self, left: Alternative, right: Alternative) -> bool:
        """``left`` is at least as good everywhere and better somewhere."""
        at_least = all(
            left.score_for(c.name) >= right.score_for(c.name)
            for c in self.criteria
        )
        strictly = any(
            left.score_for(c.name) > right.score_for(c.name)
            for c in self.criteria
        )
        return at_least and strictly

    def dominated(self) -> List[str]:
        """Alternatives dominated by some other alternative."""
        out = []
        for candidate in self.alternatives:
            if any(
                self.dominates(other, candidate)
                for other in self.alternatives
                if other is not candidate
            ):
                out.append(candidate.name)
        return sorted(out)

    def pareto_front(self) -> List[str]:
        """Alternatives not dominated by any other."""
        dominated = set(self.dominated())
        return sorted(
            a.name for a in self.alternatives if a.name not in dominated
        )

    def sensitivity(self, criterion: str) -> Dict[str, float]:
        """Totals when one criterion's weight is zeroed — a quick test
        of how load-bearing that criterion is for the ranking."""
        if criterion not in {c.name for c in self.criteria}:
            raise GKBMSError(f"unknown criterion {criterion!r}")
        return {
            a.name: self.total(a)
            - next(c.weight for c in self.criteria if c.name == criterion)
            * a.score_for(criterion)
            for a in self.alternatives
        }

    def report(self) -> str:
        """Tabular ranking + pareto front."""
        lines = ["alternative        total  " + "  ".join(
            c.name for c in self.criteria
        )]
        for name, total in self.ranking():
            alternative = next(a for a in self.alternatives if a.name == name)
            scores = "  ".join(
                f"{alternative.score_for(c.name):g}" for c in self.criteria
            )
            lines.append(f"{name:<18} {total:6.2f}  {scores}")
        front = self.pareto_front()
        lines.append(f"pareto front: {', '.join(front)}")
        return "\n".join(lines)
