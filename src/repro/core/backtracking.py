"""Selective backtracking of design decisions (section 2.1, fig 2-4).

"Therefore, the decision to choose associative keys must be retracted,
together with all its consequent changes, without redoing all the rest
of the design; supporting this consistent, selective backtracking is
the main purpose of introducing the explicit documentation of design
decisions and dependencies."

The algorithm: compute the *consequent closure* of the target decision
(later decisions consuming any object it produced, transitively), then
undo the closure newest-first.  Undoing a decision removes the design
objects it created from the knowledge base and (through the tool's undo
function) from the language-level artefact stores; the decision record
itself is kept, marked retracted — ex-post documentation survives, as
the paper's versioning story (fig 3-4) requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.errors import BacktrackError
from repro.core.decisions import DecisionEngine, DecisionRecord


@dataclass
class BacktrackReport:
    """What a selective backtrack did."""

    target: str
    retracted_decisions: List[str] = field(default_factory=list)
    retracted_objects: List[str] = field(default_factory=list)
    surviving_decisions: List[str] = field(default_factory=list)

    def __repr__(self) -> str:
        return (
            f"BacktrackReport(target={self.target!r}, "
            f"decisions={self.retracted_decisions}, "
            f"objects={len(self.retracted_objects)} object(s))"
        )


class Backtracker:
    """Selective, consistent retraction of decisions + consequences."""

    def __init__(self, gkbms) -> None:
        self.gkbms = gkbms
        self.engine: DecisionEngine = gkbms.decisions

    # ------------------------------------------------------------------

    def consequents(self, did: str) -> List[str]:
        """Decision ids that must fall together with ``did``, in
        execution order (excluding ``did`` itself).

        A later decision is a consequent when one of its inputs is an
        output of ``did`` or of an already-condemned consequent.
        """
        if did not in self.engine.records:
            raise BacktrackError(f"unknown decision {did!r}")
        condemned_outputs: Set[str] = set(self.engine.records[did].all_outputs())
        condemned: List[str] = []
        start = self.engine.order.index(did)
        for later_did in self.engine.order[start + 1:]:
            record = self.engine.records[later_did]
            if record.is_retracted:
                continue
            if set(record.inputs.values()) & condemned_outputs:
                condemned.append(later_did)
                condemned_outputs |= set(record.all_outputs())
        return condemned

    def retract(self, did: str) -> BacktrackReport:
        """Selectively backtrack decision ``did`` and its consequents."""
        target = self.engine.records.get(did)
        if target is None:
            raise BacktrackError(f"unknown decision {did!r}")
        if target.is_retracted:
            raise BacktrackError(f"decision {did!r} is already retracted")
        condemned = self.consequents(did) + [did]
        report = BacktrackReport(target=did)
        # newest first, so inputs of earlier condemned decisions still
        # exist while their consumers are being undone
        for victim_did in sorted(
            condemned, key=self.engine.order.index, reverse=True
        ):
            record = self.engine.records[victim_did]
            self._undo(record, report)
        report.retracted_decisions.reverse()
        report.surviving_decisions = [
            r.did for r in self.engine.active_records()
        ]
        return report

    def _undo(self, record: DecisionRecord, report: BacktrackReport) -> None:
        tick = self.gkbms.tick()
        tool = self.engine.tools.get(record.tool) if record.tool else None
        proc = self.gkbms.processor
        # Undoing a decision is itself a transaction, exactly like
        # executing one (section 3.2): the tool's undo, the retraction
        # of produced objects and the record's status flip commit or
        # roll back together.  A tool undo that mutates halfway and
        # then raises must not leave a half-backtracked base behind a
        # record still marked "done".
        artefact_snapshot = self.gkbms.snapshot_artifacts()
        retracted_pids: List[str] = []
        try:
            with proc.telling():
                if tool is not None and tool.undo is not None:
                    tool.undo(self.gkbms, record)
                else:
                    self._default_undo(record)
                for name in record.all_outputs():
                    if proc.exists(name):
                        removed = proc.retract(name)
                        retracted_pids.extend(p.pid for p in removed)
                if proc.exists(record.did):
                    proc.tell_instanceof(record.did, "RetractedDecision")
        except Exception:
            self.gkbms.restore_artifacts(artefact_snapshot)
            raise
        record.status = "retracted"
        record.retracted_at = tick
        report.retracted_objects.extend(retracted_pids)
        report.retracted_decisions.append(record.did)

    def _default_undo(self, record: DecisionRecord) -> None:
        """Remove produced artefacts from the language-level stores."""
        module = getattr(self.gkbms, "module", None)
        if module is None:
            return
        for name in record.all_outputs():
            try:
                module.remove(name)
            except Exception:
                pass  # not a module-level artefact

    # ------------------------------------------------------------------

    def retract_for_assumption(self, assumption: str) -> List[BacktrackReport]:
        """Backtrack every active decision resting on ``assumption`` —
        the fig 2-4 situation: mapping Minutes invalidates the 'only
        invitations are papers' assumption behind the key decision."""
        victims = [
            record.did
            for record in self.engine.active_records()
            if assumption in record.assumptions
        ]
        if not victims:
            raise BacktrackError(
                f"no active decision rests on assumption {assumption!r}"
            )
        reports = []
        for did in victims:
            if not self.engine.records[did].is_retracted:
                reports.append(self.retract(did))
        return reports
