"""Persistence for the GKBMS documentation service.

"Ex post, it plays the role of a documentation service in which
development objects are related to the decisions and tools that
created or changed them."  A documentation service must outlive the
session: :func:`save_gkbms` captures the full state — the proposition
base (minus the reconstructible kernel), the decision history with
obligations and assumptions, the TaxisDL design, the DBPL module and
its retired artefact versions — as one JSON-able dict;
:func:`load_gkbms` restores it into a fresh GKBMS.

Tools are code, so the standard library is re-registered on load and
any *custom* tools/decision classes must be registered by the caller
before loading a history that references them.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.atomicio import FileIO, atomic_write_json, read_checked_json
from repro.errors import GKBMSError
from repro.core.decisions import DecisionRecord, Obligation
from repro.core.gkbms import GKBMS
from repro.languages.dbpl.ast import (
    ConstructorDecl,
    RelationDecl,
    SelectorDecl,
    TransactionDecl,
)
from repro.languages.dbpl.parser import parse_dbpl
from repro.languages.dbpl.printer import (
    print_constructor,
    print_relation,
    print_selector,
    print_transaction,
)
from repro.languages.taxisdl.parser import parse_taxisdl
from repro.languages.taxisdl.printer import print_model
from repro.propositions.serialization import dump_processor, load_processor

FORMAT_VERSION = 1


def _decl_to_text(decl) -> str:
    if isinstance(decl, RelationDecl):
        return print_relation(decl)
    if isinstance(decl, SelectorDecl):
        return print_selector(decl)
    if isinstance(decl, ConstructorDecl):
        return print_constructor(decl)
    if isinstance(decl, TransactionDecl):
        return print_transaction(decl)
    raise GKBMSError(f"unserialisable artefact {decl!r}")


def _decl_from_text(text: str):
    module = parse_dbpl(f"DATABASE MODULE Tmp;\n{text}\nEND Tmp.\n")
    names = module.names()
    if len(names) != 1:
        raise GKBMSError(f"expected one declaration, got {names}")
    return module.get(names[0])


def _record_to_json(record: DecisionRecord) -> Dict[str, Any]:
    return {
        "did": record.did,
        "decision_class": record.decision_class,
        "inputs": dict(record.inputs),
        "outputs": {k: list(v) for k, v in record.outputs.items()},
        "params": _jsonable_params(record.params),
        "tool": record.tool,
        "actor": record.actor,
        "tick": record.tick,
        "status": record.status,
        "retracted_at": record.retracted_at,
        "rationale": record.rationale,
        "assumptions": list(record.assumptions),
        "obligations": [
            {
                "oid": o.oid, "name": o.name, "assertion": o.assertion,
                "status": o.status, "signer": o.signer,
            }
            for o in record.obligations
        ],
    }


def _jsonable_params(params: Dict) -> Dict:
    out: Dict[str, Any] = {}
    for key, value in params.items():
        if isinstance(value, tuple):
            out[key] = {"__tuple__": list(value)}
        else:
            out[key] = value
    return out


def _params_from_json(params: Dict) -> Dict:
    out: Dict[str, Any] = {}
    for key, value in params.items():
        if isinstance(value, dict) and "__tuple__" in value:
            out[key] = tuple(value["__tuple__"])
        else:
            out[key] = value
    return out


def _record_from_json(data: Dict[str, Any]) -> DecisionRecord:
    record = DecisionRecord(
        did=data["did"],
        decision_class=data["decision_class"],
        inputs=dict(data["inputs"]),
        outputs={k: list(v) for k, v in data["outputs"].items()},
        params=_params_from_json(data.get("params", {})),
        tool=data.get("tool"),
        actor=data.get("actor", "developer"),
        tick=data["tick"],
        status=data.get("status", "done"),
        retracted_at=data.get("retracted_at"),
        rationale=data.get("rationale", ""),
        assumptions=list(data.get("assumptions", [])),
    )
    for item in data.get("obligations", []):
        record.obligations.append(Obligation(
            oid=item["oid"], name=item["name"],
            decision_id=record.did, assertion=item.get("assertion"),
            status=item.get("status", "open"), signer=item.get("signer"),
        ))
    return record


def save_gkbms(gkbms: GKBMS) -> Dict[str, Any]:
    """Capture the full GKBMS state as a JSON-able dict."""
    return {
        "format": FORMAT_VERSION,
        "name": gkbms.name,
        "clock": gkbms.clock,
        "knowledge": dump_processor(gkbms.processor),
        "design": print_model(gkbms.design),
        "module": {
            name: _decl_to_text(gkbms.module.get(name))
            for name in gkbms.module.names()
        },
        "retired": {
            name: [_decl_to_text(decl) for decl in stack]
            for name, stack in gkbms._retired.items() if stack
        },
        "artifact_meta": {
            name: dict(meta) for name, meta in gkbms._artifact_meta.items()
        },
        "assumptions": dict(gkbms._assumptions),
        "decisions": [
            _record_to_json(gkbms.decisions.records[did])
            for did in gkbms.decisions.order
        ],
    }


def load_gkbms(data: Dict[str, Any],
               gkbms: Optional[GKBMS] = None) -> GKBMS:
    """Restore a GKBMS from :func:`save_gkbms` output.

    Pass a pre-built ``gkbms`` when custom tools/decision classes must
    be registered first; otherwise a fresh one with the standard
    library is used.
    """
    if data.get("format") != FORMAT_VERSION:
        raise GKBMSError(f"unsupported dump format {data.get('format')!r}")
    if gkbms is None:
        gkbms = GKBMS(name=data.get("name", "gkbms"))
        gkbms.register_standard_library()
    load_processor(data["knowledge"], processor=gkbms.processor)
    if data.get("design"):
        parse_taxisdl(data["design"], model=gkbms.design)
    for text in data.get("module", {}).values():
        gkbms.module.add(_decl_from_text(text))
    for name, stack in data.get("retired", {}).items():
        gkbms._retired[name] = [_decl_from_text(text) for text in stack]
    gkbms._artifact_meta = {
        name: dict(meta)
        for name, meta in data.get("artifact_meta", {}).items()
    }
    gkbms._assumptions = dict(data.get("assumptions", {}))
    gkbms._clock = int(data.get("clock", 0))
    max_dec = 0
    max_obl = 0
    for item in data.get("decisions", []):
        record = _record_from_json(item)
        unknown = record.decision_class not in gkbms.decisions.classes()
        if unknown:
            raise GKBMSError(
                f"history references unregistered decision class "
                f"{record.decision_class!r}; register it before loading"
            )
        gkbms.decisions.records[record.did] = record
        gkbms.decisions.order.append(record.did)
        if record.did.startswith("dec"):
            try:
                max_dec = max(max_dec, int(record.did[3:]))
            except ValueError:
                pass
        for obligation in record.obligations:
            if obligation.oid.startswith("obl"):
                try:
                    max_obl = max(max_obl, int(obligation.oid[3:]))
                except ValueError:
                    pass
    # counters continue after the loaded history
    import itertools

    gkbms.decisions._decision_ids = itertools.count(max_dec + 1)
    gkbms.decisions._obligation_ids = itertools.count(max_obl + 1)
    return gkbms


STATE_KIND = "gkbms-state"


def save_to_file(gkbms: GKBMS, path: str, io: Optional[FileIO] = None) -> None:
    """Write :func:`save_gkbms` output atomically to a checksummed file.

    The state is serialised in memory first, written to a ``*.tmp``
    sibling, fsynced and only then renamed over ``path`` — so neither a
    serialisation error nor a crash mid-write can corrupt a previously
    saved history (the documentation-service guarantee).
    """
    atomic_write_json(path, STATE_KIND, save_gkbms(gkbms), io=io)


def load_from_file(path: str, gkbms: Optional[GKBMS] = None,
                   io: Optional[FileIO] = None) -> GKBMS:
    """Read a file written by :func:`save_to_file`.

    The envelope's kind, version and checksum are validated
    (:class:`~repro.errors.PersistenceError` on corruption); legacy
    files written before the envelope format load unchanged.
    """
    payload = read_checked_json(path, STATE_KIND, io=io, allow_legacy=True)
    return load_gkbms(payload, gkbms=gkbms)
