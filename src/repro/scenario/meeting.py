"""The meeting-organisation scenario, end to end.

Replays section 2.1 against a :class:`~repro.core.gkbms.GKBMS`:

1. world model (CML): meetings as real-world activities with time;
2. system model (CML): the information system's view, embedded in the
   world model;
3. conceptual design (TaxisDL): the document hierarchy ``Papers`` with
   subclass ``Invitations`` (set-valued ``receiver``), plus the
   transactions and a script;
4. the decision history: browse/focus (fig 2-1), move-down mapping
   (fig 2-2), normalisation and key substitution (fig 2-3), the
   late arrival of ``Minutes`` and the selective backtracking of the
   key decision (fig 2-4), and the remapping that completes the design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.gkbms import GKBMS
from repro.core.decisions import DecisionRecord
from repro.timecalc.allen import AllenRelation
from repro.timecalc.calculus import AllenCalculus

#: The TaxisDL document model of section 2.1 (before Minutes).
DOCUMENT_DESIGN = """
entity class Persons
end

entity class Papers with
  date : Date
  author : Persons
end

entity class Invitations isa Papers with
  sender : Persons
  receiver : set of Persons
end

transaction class SendInvitation with
  in inv : Invitations
  pre Known(inv.sender)
  post A(inv, sent, yes)
end

transaction class RecordReply with
  in inv : Invitations
  pre A(inv, sent, yes)
end

script OrganiseMeeting with
  step SendInvitation
  step RecordReply
end
"""

#: The second subclass whose mapping exposes the key inconsistency.
MINUTES_EXTENSION = """
entity class Minutes isa Papers with
  recorder : Persons
end
"""

#: The checkable content of the developer's key-substitution assumption.
ONLY_INVITATIONS = (
    "forall c/TDL_EntityClass "
    "(Isa(c, Papers) ==> (c = Papers or c = Invitations))"
)

WORLD_FRAMES = """
TELL Meeting IN CML_Activity END
TELL Agent IN CML_WorldClass END
TELL Document IN CML_WorldClass END
TELL Agenda IN CML_WorldClass ISA Document END
TELL Project IN CML_WorldClass END
"""

SYSTEM_FRAMES = """
TELL MeetingRecord IN CML_SystemClass END
TELL DocumentRecord IN CML_SystemClass END
TELL ParticipantRecord IN CML_SystemClass END
"""


def build_world_model(gkbms: GKBMS) -> List[str]:
    """Populate the CML world model: meetings as activities in a real
    world with time (the Allen network orders the meeting phases)."""
    created = [p.pid for p in gkbms.objects.tell_all(WORLD_FRAMES)]
    calculus = AllenCalculus()
    calculus.assert_relation("invite", "meet", [AllenRelation.BEFORE])
    calculus.assert_relation("meet", "minute", [AllenRelation.BEFORE,
                                                AllenRelation.MEETS])
    calculus.check_consistency()
    gkbms.world_time = calculus  # type: ignore[attr-defined]
    return created


def build_system_model(gkbms: GKBMS) -> List[str]:
    """Embed the system model in the world model: each system class
    `models` a world class."""
    created = [p.pid for p in gkbms.objects.tell_all(SYSTEM_FRAMES)]
    proc = gkbms.processor
    for system, world in (
        ("MeetingRecord", "Meeting"),
        ("DocumentRecord", "Document"),
        ("ParticipantRecord", "Agent"),
    ):
        proc.tell_link(system, "models", world)
    return created


@dataclass
class MeetingScenario:
    """Drives the full story; step methods return decision records so
    callers (tests, benches, examples) can inspect each stage."""

    gkbms: GKBMS = field(default_factory=GKBMS)
    records: Dict[str, DecisionRecord] = field(default_factory=dict)

    def setup(self) -> "MeetingScenario":
        """World + system models, design import, standard library."""
        self.gkbms.register_standard_library()
        build_world_model(self.gkbms)
        build_system_model(self.gkbms)
        self.gkbms.import_design(DOCUMENT_DESIGN)
        # the design models the world's documents
        self.gkbms.processor.tell_link("Papers", "models", "Document")
        return self

    # ------------------------------------------------------------------
    # fig 2-1: browse, focus, menu
    # ------------------------------------------------------------------

    def browse_unmapped(self) -> List[str]:
        """Unmapped TaxisDL objects (what the text browser shows)."""
        proc = self.gkbms.processor
        mapped = set()
        for record in self.gkbms.decisions.active_records():
            for name in record.all_outputs():
                source = self.gkbms.mapped_from(name)
                if source:
                    mapped.add(source)
        return sorted(
            name for name in proc.instances_of("TDL_EntityClass")
            if name not in mapped
        )

    def menu_for(self, focus: str):
        """Applicable decisions/tools for a focus (fig 2-1)."""
        return self.gkbms.decisions.applicable_decisions(focus)

    # ------------------------------------------------------------------
    # fig 2-2: move-down
    # ------------------------------------------------------------------

    def map_hierarchy(self, strategy: str = "move-down") -> DecisionRecord:
        """Execute the chosen mapping strategy (fig 2-2)."""
        if strategy == "move-down":
            record = self.gkbms.execute(
                "DecMoveDown", {"hierarchy": "Papers"}, tool="MoveDownMapper",
                params={"only": ["Invitations"],
                        "names": {"Invitations": "InvitationRel"}},
                rationale="focus on the mapping of entity structures in "
                          "the document data model",
            )
        elif strategy == "distribute":
            record = self.gkbms.execute(
                "DecDistribute", {"hierarchy": "Papers"},
                tool="DistributeMapper",
            )
        else:
            raise ValueError(f"unknown strategy {strategy!r}")
        self.records["map"] = record
        return record

    # ------------------------------------------------------------------
    # fig 2-3: normalisation, then key substitution
    # ------------------------------------------------------------------

    def normalize(self) -> DecisionRecord:
        """The normalisation decision of fig 2-3."""
        record = self.gkbms.execute(
            "DecNormalize", {"relation": "InvitationRel"}, tool="Normalizer",
            params={
                "base_name": "InvitationRel2",
                "detail_name": "InvReceivRel",
                "selector_name": "InvitationsPaperIC",
                "constructor_name": "ConsInvitation",
            },
            rationale="InvitationType contains a set-valued attribute",
        )
        self.records["normalize"] = record
        return record

    def substitute_key(self) -> DecisionRecord:
        """The key-substitution (choice) decision of fig 2-3."""
        self.gkbms.assume("OnlyInvitationsArePapers", ONLY_INVITATIONS)
        record = self.gkbms.execute(
            "DecKeySubstitution", {"relation": "InvitationRel2"},
            tool="KeySubstituter",
            params={"key": ("date", "author")},
            assumptions=["OnlyInvitationsArePapers"],
            rationale="make the system more user-friendly: replace the "
                      "artificial paperkey by date, author",
        )
        self.records["keys"] = record
        return record

    # ------------------------------------------------------------------
    # fig 2-4: Minutes arrives, backtrack the key decision
    # ------------------------------------------------------------------

    def add_minutes(self) -> List[str]:
        """Extend the design with Minutes (fig 2-4 trigger)."""
        return self.gkbms.extend_design(MINUTES_EXTENSION)

    def backtrack_keys(self):
        """Selectively backtrack the key decision (fig 2-4)."""
        reports = self.gkbms.backtracker.retract_for_assumption(
            "OnlyInvitationsArePapers"
        )
        self.records["backtrack"] = reports  # type: ignore[assignment]
        return reports

    def map_minutes(self) -> DecisionRecord:
        """Map the late-arriving Minutes subclass."""
        record = self.gkbms.execute(
            "DecMoveDown", {"hierarchy": "Papers"}, tool="MoveDownMapper",
            params={"only": ["Minutes"],
                    "names": {"Minutes": "MinutesRel",
                              "ConsPapers": "ConsPapersAll"}},
            rationale="the mapping of Minutes, the second subclass of "
                      "Papers, is considered",
        )
        self.records["minutes"] = record
        return record

    # ------------------------------------------------------------------

    def run_to_fig_2_2(self) -> "MeetingScenario":
        """Advance the story to the fig 2-2 state."""
        self.setup()
        self.map_hierarchy()
        return self

    def run_to_fig_2_3(self) -> "MeetingScenario":
        """Advance the story to the fig 2-3 state."""
        self.run_to_fig_2_2()
        self.normalize()
        self.substitute_key()
        return self

    def run_to_fig_2_4(self) -> "MeetingScenario":
        """Advance the story to the fig 2-4 state."""
        self.run_to_fig_2_3()
        self.add_minutes()
        self.backtrack_keys()
        self.map_minutes()
        return self

    def run_all(self) -> "MeetingScenario":
        """The whole section 2.1 story."""
        return self.run_to_fig_2_4()
