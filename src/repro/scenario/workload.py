"""Randomised design-evolution workloads (S28).

Generates seeded, reproducible evolution histories: a random forest of
TaxisDL hierarchies, then a random sequence of GKBMS operations
(mapping with a random strategy, normalisation where a set-valued field
exists, transaction mapping, selective backtracking, replay).  Used by
the stress tests — which assert global invariants after *any* such
history — and usable for scaling studies beyond the Perf benches.

Randomness comes from a :class:`random.Random` with an explicit seed,
never from global state, so every failure is replayable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.gkbms import GKBMS

STRATEGIES = {
    "DecMoveDown": "MoveDownMapper",
    "DecDistribute": "DistributeMapper",
    "DecSingleRelation": "SingleRelationMapper",
}


@dataclass
class WorkloadEvent:
    """One step of a generated history, for reporting."""

    kind: str  # map | normalize | map_txn | backtrack | replay | skip
    detail: str = ""


@dataclass
class DesignEvolutionWorkload:
    """Seeded random evolution history over a fresh GKBMS."""

    seed: int = 0
    hierarchies: int = 3
    steps: int = 12
    events: List[WorkloadEvent] = field(default_factory=list)

    def build_design(self) -> str:
        """A random forest: each hierarchy gets 1-3 subclasses, some
        attributes set-valued (normalisation candidates)."""
        rng = random.Random(self.seed)
        blocks: List[str] = []
        for h in range(self.hierarchies):
            root = f"Root{h}"
            blocks.append(
                f"entity class {root} with\n"
                f"  owner : {root}\n"
                f"end\n"
            )
            for s in range(rng.randint(1, 3)):
                attr = (
                    f"  members : set of {root}\n"
                    if rng.random() < 0.5
                    else f"  detail{s} : {root}\n"
                )
                blocks.append(
                    f"entity class Sub{h}x{s} isa {root} with\n{attr}end\n"
                )
            blocks.append(
                f"transaction class Touch{h} with\n"
                f"  in it : Root{h}\n"
                f"end\n"
            )
        return "\n".join(blocks)

    def run(self, gkbms: Optional[GKBMS] = None) -> GKBMS:
        """Execute the random history; returns the evolved GKBMS."""
        rng = random.Random(self.seed + 1)
        if gkbms is None:
            gkbms = GKBMS()
            gkbms.register_standard_library()
        gkbms.import_design(self.build_design())
        mapped: List[str] = []  # roots already mapped
        for _step in range(self.steps):
            action = rng.choice(
                ["map", "map", "normalize", "map_txn", "backtrack", "replay"]
            )
            handler = getattr(self, f"_do_{action}")
            self.events.append(handler(gkbms, rng, mapped))
        return gkbms

    # ------------------------------------------------------------------

    def _unmapped_roots(self, gkbms: GKBMS, mapped: List[str]) -> List[str]:
        return [
            f"Root{h}" for h in range(self.hierarchies)
            if f"Root{h}" not in mapped
        ]

    def _do_map(self, gkbms: GKBMS, rng: random.Random,
                mapped: List[str]) -> WorkloadEvent:
        candidates = self._unmapped_roots(gkbms, mapped)
        if not candidates:
            return WorkloadEvent("skip", "everything mapped")
        root = rng.choice(candidates)
        decision_class = rng.choice(sorted(STRATEGIES))
        try:
            gkbms.execute(
                decision_class, {"hierarchy": root},
                tool=STRATEGIES[decision_class],
            )
        except Exception as exc:  # name clash across strategies: skip
            return WorkloadEvent("skip", f"map {root} failed: {exc}")
        mapped.append(root)
        return WorkloadEvent("map", f"{root} via {decision_class}")

    def _do_normalize(self, gkbms: GKBMS, rng: random.Random,
                      mapped: List[str]) -> WorkloadEvent:
        candidates = [
            name
            for name, decl in gkbms.module.relations.items()
            if any(f.type_name.upper().startswith("SET OF ")
                   for f in decl.fields)
        ]
        if not candidates:
            return WorkloadEvent("skip", "nothing to normalize")
        relation = rng.choice(sorted(candidates))
        try:
            gkbms.execute(
                "DecNormalize", {"relation": relation}, tool="Normalizer",
            )
        except Exception as exc:
            return WorkloadEvent("skip", f"normalize {relation}: {exc}")
        return WorkloadEvent("normalize", relation)

    def _do_map_txn(self, gkbms: GKBMS, rng: random.Random,
                    mapped: List[str]) -> WorkloadEvent:
        candidates = [
            name for name in gkbms.design.transactions
            if f"T{name}" not in gkbms.module.transactions
        ]
        if not candidates:
            return WorkloadEvent("skip", "no transaction to map")
        txn = rng.choice(sorted(candidates))
        try:
            gkbms.execute(
                "DecMapTransaction", {"transaction": txn},
                tool="TransactionMapper",
            )
        except Exception as exc:
            return WorkloadEvent("skip", f"map_txn {txn}: {exc}")
        return WorkloadEvent("map_txn", txn)

    def _do_backtrack(self, gkbms: GKBMS, rng: random.Random,
                      mapped: List[str]) -> WorkloadEvent:
        active = [r for r in gkbms.decisions.active_records()]
        if not active:
            return WorkloadEvent("skip", "no decision to backtrack")
        victim = rng.choice(active)
        report = gkbms.backtracker.retract(victim.did)
        # a backtracked mapping frees its hierarchy for remapping
        for did in report.retracted_decisions:
            record = gkbms.decisions.records[did]
            for value in record.inputs.values():
                if value in mapped:
                    mapped.remove(value)
        return WorkloadEvent(
            "backtrack",
            f"{victim.did} (+{len(report.retracted_decisions) - 1} consequents)",
        )

    def _do_replay(self, gkbms: GKBMS, rng: random.Random,
                   mapped: List[str]) -> WorkloadEvent:
        retracted = [
            gkbms.decisions.records[did]
            for did in gkbms.decisions.order
            if gkbms.decisions.records[did].is_retracted
        ]
        if not retracted:
            return WorkloadEvent("skip", "nothing to replay")
        record = rng.choice(retracted)
        outcome = gkbms.replayer.replay(record)
        if outcome.status == "replayed":
            for value in record.inputs.values():
                if value.startswith("Root") and value not in mapped:
                    mapped.append(value)
        return WorkloadEvent("replay", f"{record.did}: {outcome.status}")
