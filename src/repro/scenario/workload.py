"""Randomised design-evolution workloads (S28).

Generates seeded, reproducible evolution histories: a random forest of
TaxisDL hierarchies, then a random sequence of GKBMS operations
(mapping with a random strategy, normalisation where a set-valued field
exists, transaction mapping, selective backtracking, replay).  Used by
the stress tests — which assert global invariants after *any* such
history — and usable for scaling studies beyond the Perf benches.

Randomness comes from a :class:`random.Random` with an explicit seed,
never from global state, so every failure is replayable.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.gkbms import GKBMS
from repro.errors import (
    CommitConflict,
    ConnectionLost,
    DeadlineExceeded,
    ReproError,
    ServerOverloaded,
    ServerReadOnly,
    ServerRestarting,
    SessionError,
)
from repro.faults import CrashPoint

STRATEGIES = {
    "DecMoveDown": "MoveDownMapper",
    "DecDistribute": "DistributeMapper",
    "DecSingleRelation": "SingleRelationMapper",
}


@dataclass
class WorkloadEvent:
    """One step of a generated history, for reporting."""

    kind: str  # map | normalize | map_txn | backtrack | replay | skip
    detail: str = ""


@dataclass
class DesignEvolutionWorkload:
    """Seeded random evolution history over a fresh GKBMS."""

    seed: int = 0
    hierarchies: int = 3
    steps: int = 12
    events: List[WorkloadEvent] = field(default_factory=list)

    def build_design(self) -> str:
        """A random forest: each hierarchy gets 1-3 subclasses, some
        attributes set-valued (normalisation candidates)."""
        rng = random.Random(self.seed)
        blocks: List[str] = []
        for h in range(self.hierarchies):
            root = f"Root{h}"
            blocks.append(
                f"entity class {root} with\n"
                f"  owner : {root}\n"
                f"end\n"
            )
            for s in range(rng.randint(1, 3)):
                attr = (
                    f"  members : set of {root}\n"
                    if rng.random() < 0.5
                    else f"  detail{s} : {root}\n"
                )
                blocks.append(
                    f"entity class Sub{h}x{s} isa {root} with\n{attr}end\n"
                )
            blocks.append(
                f"transaction class Touch{h} with\n"
                f"  in it : Root{h}\n"
                f"end\n"
            )
        return "\n".join(blocks)

    def run(self, gkbms: Optional[GKBMS] = None) -> GKBMS:
        """Execute the random history; returns the evolved GKBMS."""
        rng = random.Random(self.seed + 1)
        if gkbms is None:
            gkbms = GKBMS()
            gkbms.register_standard_library()
        gkbms.import_design(self.build_design())
        mapped: List[str] = []  # roots already mapped
        for _step in range(self.steps):
            action = rng.choice(
                ["map", "map", "normalize", "map_txn", "backtrack", "replay"]
            )
            handler = getattr(self, f"_do_{action}")
            self.events.append(handler(gkbms, rng, mapped))
        return gkbms

    # ------------------------------------------------------------------

    def _unmapped_roots(self, gkbms: GKBMS, mapped: List[str]) -> List[str]:
        return [
            f"Root{h}" for h in range(self.hierarchies)
            if f"Root{h}" not in mapped
        ]

    def _do_map(self, gkbms: GKBMS, rng: random.Random,
                mapped: List[str]) -> WorkloadEvent:
        candidates = self._unmapped_roots(gkbms, mapped)
        if not candidates:
            return WorkloadEvent("skip", "everything mapped")
        root = rng.choice(candidates)
        decision_class = rng.choice(sorted(STRATEGIES))
        try:
            gkbms.execute(
                decision_class, {"hierarchy": root},
                tool=STRATEGIES[decision_class],
            )
        except Exception as exc:  # name clash across strategies: skip
            return WorkloadEvent("skip", f"map {root} failed: {exc}")
        mapped.append(root)
        return WorkloadEvent("map", f"{root} via {decision_class}")

    def _do_normalize(self, gkbms: GKBMS, rng: random.Random,
                      mapped: List[str]) -> WorkloadEvent:
        candidates = [
            name
            for name, decl in gkbms.module.relations.items()
            if any(f.type_name.upper().startswith("SET OF ")
                   for f in decl.fields)
        ]
        if not candidates:
            return WorkloadEvent("skip", "nothing to normalize")
        relation = rng.choice(sorted(candidates))
        try:
            gkbms.execute(
                "DecNormalize", {"relation": relation}, tool="Normalizer",
            )
        except Exception as exc:
            return WorkloadEvent("skip", f"normalize {relation}: {exc}")
        return WorkloadEvent("normalize", relation)

    def _do_map_txn(self, gkbms: GKBMS, rng: random.Random,
                    mapped: List[str]) -> WorkloadEvent:
        candidates = [
            name for name in gkbms.design.transactions
            if f"T{name}" not in gkbms.module.transactions
        ]
        if not candidates:
            return WorkloadEvent("skip", "no transaction to map")
        txn = rng.choice(sorted(candidates))
        try:
            gkbms.execute(
                "DecMapTransaction", {"transaction": txn},
                tool="TransactionMapper",
            )
        except Exception as exc:
            return WorkloadEvent("skip", f"map_txn {txn}: {exc}")
        return WorkloadEvent("map_txn", txn)

    def _do_backtrack(self, gkbms: GKBMS, rng: random.Random,
                      mapped: List[str]) -> WorkloadEvent:
        active = [r for r in gkbms.decisions.active_records()]
        if not active:
            return WorkloadEvent("skip", "no decision to backtrack")
        victim = rng.choice(active)
        report = gkbms.backtracker.retract(victim.did)
        # a backtracked mapping frees its hierarchy for remapping
        for did in report.retracted_decisions:
            record = gkbms.decisions.records[did]
            for value in record.inputs.values():
                if value in mapped:
                    mapped.remove(value)
        return WorkloadEvent(
            "backtrack",
            f"{victim.did} (+{len(report.retracted_decisions) - 1} consequents)",
        )

    def _do_replay(self, gkbms: GKBMS, rng: random.Random,
                   mapped: List[str]) -> WorkloadEvent:
        retracted = [
            gkbms.decisions.records[did]
            for did in gkbms.decisions.order
            if gkbms.decisions.records[did].is_retracted
        ]
        if not retracted:
            return WorkloadEvent("skip", "nothing to replay")
        record = rng.choice(retracted)
        outcome = gkbms.replayer.replay(record)
        if outcome.status == "replayed":
            for value in record.inputs.values():
                if value.startswith("Root") and value not in mapped:
                    mapped.append(value)
        return WorkloadEvent("replay", f"{record.did}: {outcome.status}")


# ----------------------------------------------------------------------
# Concurrent service-layer load (PR 5)
# ----------------------------------------------------------------------


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[rank]


@dataclass
class LoadStats:
    """What a concurrent run did, with latency percentiles."""

    requests: int = 0
    commits: int = 0
    conflicts: int = 0
    shed: int = 0
    deadline_exceeded: int = 0
    expected_rejections: int = 0
    unexpected_errors: int = 0
    #: Ops cut short by an injected fault (tolerant mode): the service
    #: restarting, degraded read-only, a dropped connection, a session
    #: lost across a recovery.  Chaos runs count these separately so
    #: "unexpected" still gates at zero.
    interrupted: int = 0
    latencies_ms: List[float] = field(default_factory=list)
    duration_s: float = 0.0

    def merge(self, other: "LoadStats") -> None:
        self.requests += other.requests
        self.commits += other.commits
        self.conflicts += other.conflicts
        self.shed += other.shed
        self.deadline_exceeded += other.deadline_exceeded
        self.expected_rejections += other.expected_rejections
        self.unexpected_errors += other.unexpected_errors
        self.interrupted += other.interrupted
        self.latencies_ms.extend(other.latencies_ms)

    @property
    def throughput(self) -> float:
        """Requests per second over the whole run."""
        return self.requests / self.duration_s if self.duration_s else 0.0

    def latency_summary(self) -> Dict[str, float]:
        ordered = sorted(self.latencies_ms)
        return {
            "p50_ms": _percentile(ordered, 0.50),
            "p99_ms": _percentile(ordered, 0.99),
            "max_ms": ordered[-1] if ordered else 0.0,
        }

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "requests": self.requests,
            "commits": self.commits,
            "conflicts": self.conflicts,
            "shed": self.shed,
            "deadline_exceeded": self.deadline_exceeded,
            "expected_rejections": self.expected_rejections,
            "unexpected_errors": self.unexpected_errors,
            "interrupted": self.interrupted,
            "duration_s": round(self.duration_s, 6),
            "throughput_rps": round(self.throughput, 3),
        }
        out.update(
            {k: round(v, 3) for k, v in self.latency_summary().items()}
        )
        return out


@dataclass
class ConcurrentLoadGenerator:
    """Seeded multi-client load against the GKBMS service layer.

    ``client_factory`` yields one connected client per worker thread —
    a :class:`~repro.server.client.LocalClient` for in-process stress,
    a :class:`~repro.server.client.TCPClient` for the smoke run against
    a real socket.  Each worker runs a seeded random mix of autocommit
    tells, multi-op transactions over a small *hot set* of shared
    objects (the contention that exercises first-committer-wins) and
    snapshot reads.  Conflicts, shedding and deadline refusals are
    *expected* outcomes and counted separately; anything else counts as
    an unexpected error, which the stress tests and the CI smoke gate
    at zero.
    """

    client_factory: Callable[[], Any]
    threads: int = 8
    ops_per_thread: int = 40
    seed: int = 0
    write_ratio: float = 0.5
    transaction_ratio: float = 0.5
    hot_keys: int = 4
    class_name: str = "LoadObject"
    #: Fraction of ops that drive the decision ledger instead: mostly
    #: ``decide`` (telling one fresh object under a seeded decision
    #: class), sometimes ``backtrack`` of one of the worker's own
    #: earlier decisions.
    decision_ratio: float = 0.0
    #: Chaos mode: the service may be killed, restarted or degraded
    #: mid-run, so fault-shaped failures (restarting, read-only, lost
    #: connections, sessions invalidated by a recovery) count as
    #: ``interrupted`` instead of ``unexpected_errors`` — and a
    #: simulated process death reaching a worker ends that worker's op
    #: instead of tearing the whole generator down.
    tolerant: bool = False

    def __post_init__(self) -> None:
        # worker-private did lists for decision traffic; each worker
        # only touches its own wid key
        self._own_dids: Dict[int, List[str]] = {}

    def prime(self, client: Any) -> None:
        """Create the class and hot objects every worker touches."""
        client.tell(f"TELL {self.class_name} IN SimpleClass END")
        for k in range(self.hot_keys):
            client.tell(f"TELL Hot{k} IN {self.class_name} END")

    def run(self, prime: bool = True) -> LoadStats:
        """Drive the workload; returns merged statistics."""
        if prime:
            primer = self.client_factory()
            try:
                self.prime(primer)
            except BaseException as exc:  # noqa: BLE001 - chaos only
                # In tolerant mode the fault may land while priming;
                # the workers still run (and count their own
                # interruptions).  Anywhere else, priming must work.
                if not (self.tolerant
                        and isinstance(exc, (ReproError, OSError,
                                             CrashPoint))):
                    raise
            finally:
                try:
                    primer.close()
                except CrashPoint:
                    if not self.tolerant:
                        raise
        per_worker = [LoadStats() for _ in range(self.threads)]
        barrier = threading.Barrier(self.threads + 1)
        workers = [
            threading.Thread(
                target=self._worker, name=f"loadgen-{wid}",
                args=(wid, per_worker[wid], barrier), daemon=True,
            )
            for wid in range(self.threads)
        ]
        for worker in workers:
            worker.start()
        barrier.wait()
        start = time.monotonic()
        for worker in workers:
            worker.join()
        total = LoadStats()
        for stats in per_worker:
            total.merge(stats)
        total.duration_s = time.monotonic() - start
        return total

    # ------------------------------------------------------------------

    def _worker(self, wid: int, stats: LoadStats,
                barrier: threading.Barrier) -> None:
        rng = random.Random(self.seed * 1009 + wid)
        client = self.client_factory()
        try:
            barrier.wait()
            for n in range(self.ops_per_thread):
                self._one_op(client, rng, wid, n, stats)
        finally:
            client.close()

    def _timed(self, stats: LoadStats, fn: Callable[[], Any]) -> Any:
        start = time.monotonic()
        try:
            return fn()
        finally:
            stats.latencies_ms.append((time.monotonic() - start) * 1000.0)
            stats.requests += 1

    def _one_op(self, client: Any, rng: random.Random, wid: int,
                n: int, stats: LoadStats) -> None:
        try:
            if self.decision_ratio and rng.random() < self.decision_ratio:
                self._decision_op(client, rng, wid, n, stats)
                return
            if rng.random() >= self.write_ratio:
                self._timed(stats, lambda: client.instances(self.class_name))
                return
            if rng.random() < self.transaction_ratio:
                self._transaction_op(client, rng, wid, n, stats)
            else:
                source = f"TELL W{wid}x{n} IN {self.class_name} END"
                self._timed(stats, lambda: client.tell(source))
                stats.commits += 1
        except CommitConflict:
            stats.conflicts += 1
            stats.expected_rejections += 1
        except ServerOverloaded:
            stats.shed += 1
            stats.expected_rejections += 1
        except DeadlineExceeded:
            stats.deadline_exceeded += 1
            stats.expected_rejections += 1
        except (ServerRestarting, ServerReadOnly,
                ConnectionLost, SessionError):
            if self.tolerant:
                stats.interrupted += 1
            else:
                stats.unexpected_errors += 1
        except CrashPoint:
            # The simulated process death leaked to this caller (e.g.
            # an in-process client racing the kill).  In chaos mode the
            # worker plays a client of a dead server: count and carry
            # on.  Outside chaos there is no legitimate source — let it
            # kill the run like the SIGKILL it models.
            if not self.tolerant:
                raise
            stats.interrupted += 1
        except ReproError:
            if self.tolerant:
                stats.interrupted += 1
            else:
                stats.unexpected_errors += 1
        except Exception:
            if self.tolerant:
                stats.interrupted += 1
            else:
                stats.unexpected_errors += 1

    def _decision_op(self, client: Any, rng: random.Random, wid: int,
                     n: int, stats: LoadStats) -> None:
        """Decision-ledger traffic.  Worker-private did lists keep
        backtracks well-formed — a did is claimed at most once, so the
        only refusals are fault-shaped (lost acks, recovering servers),
        which the taxonomy in :meth:`_one_op` already classifies."""
        own = self._own_dids.setdefault(wid, [])
        if own and rng.random() < 0.3:
            did = own.pop(rng.randrange(len(own)))
            self._timed(stats, lambda: client.backtrack(did))
            stats.commits += 1
            return
        kind = rng.choice(("mapping", "refinement", "choice", "other"))
        result = self._timed(stats, lambda: client.decide(
            f"Load{kind.capitalize()}Dec",
            tell=[f"TELL D{wid}x{n} IN {self.class_name} END"],
            inputs={"base": f"Hot{rng.randrange(self.hot_keys)}"},
            kind=kind,
            rationale=f"load worker {wid} op {n}",
        ))
        own.append(result["did"])
        stats.commits += 1

    def _transaction_op(self, client: Any, rng: random.Random, wid: int,
                        n: int, stats: LoadStats) -> None:
        """A pinned transaction touching a hot shared object — the
        contended path where first-committer-wins bites."""
        hot = f"Hot{rng.randrange(self.hot_keys)}"
        self._timed(stats, client.begin)
        try:
            self._timed(stats, lambda: client.tell(
                f"TELL T{wid}x{n} IN {self.class_name} END"
            ))
            self._timed(stats, lambda: client.tell(
                f"TELL {hot} IN {self.class_name} END"
            ))
            self._timed(stats, client.commit)
        except BaseException:
            # A refused commit already ended the transaction server-side;
            # any earlier failure leaves it open — either way the session
            # must be clean for the next op.
            try:
                client.abort()
            except ReproError:
                pass
            raise
        stats.commits += 1
