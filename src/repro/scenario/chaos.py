"""Server-level chaos: seeded faults under live load, with an oracle.

PR 3 proved the *storage* layer crash-safe by sweeping
:class:`~repro.faults.FaultPlan` kill points over single-threaded
workloads.  This module drives the same fault machinery into a live
:class:`~repro.server.service.GKBMSService` while a
:class:`~repro.scenario.workload.ConcurrentLoadGenerator` hammers it,
then holds the recovered store against the **accepted-commit-log
oracle**: replaying the durably *acknowledged* commits into a fresh
base must reproduce the recovered ``rows()`` exactly — every acked
commit survives, no unacked commit is visible.

**The fault matrix** (:data:`FAULT_KINDS`):

- ``writer_kill`` — the process dies mid-batch on the commit writer
  (a torn write on the WAL tail included);
- ``checkpoint_crash`` — the process dies inside
  :meth:`~repro.propositions.wal.WalStore.checkpoint` while load runs;
- ``fsync_fault`` — an fsync raises cleanly (EIO-style), poisoning the
  pipeline without killing the process;
- ``torn_tail`` — like ``writer_kill``, but the power cut leaves a
  torn fragment of the in-flight record on the log for recovery's
  tail-truncation path to chew through;
- ``client_drop`` — a TCP client vanishes mid-commit without reading
  its ack, then retries the same idempotency token from a fresh
  connection (the exactly-once check);
- ``lying_fsync`` — the disk starts acknowledging fsyncs it never
  performs; acked durability is *physically impossible* from that
  point, so the oracle weakens to prefix consistency: the recovered
  state must equal a replay of ``acked[:k]`` for some ``k``, and the
  report quantifies the loss instead of pretending there is none.

**The power-cut model.**  In-process, "crash" cannot lose the OS page
cache the way pulled power does — bytes written but never fsynced are
still in the file.  :class:`PowerCutIO` therefore tracks, per log
file, the written length and the *durable* length (advanced only by
honest fsyncs); :meth:`PowerCutIO.powercut` then truncates the log to
the durable watermark at "reboot".  Because the pipeline acknowledges
strictly after the batch fsync, durable == acked exactly, which is
what makes the strict oracle achievable rather than aspirational.  The
``torn_tail`` kind keeps a sub-header-sized fragment of the unsynced
tail (< 8 bytes, so it can never parse as a whole record) to force the
recovery path that physically truncates garbage.

**Determinism.**  Fault *choice* (kind, trigger commit count, op
offsets, torn lengths) is fully seeded; the exact interleaving with
live worker threads is not bit-reproducible — so verification is
invariant-based (the oracle above), never golden-output-based, and any
seed must pass.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from random import Random
from typing import Any, Dict, List, Optional, Tuple

from repro.atomicio import REAL_IO
from repro.conceptbase import ConceptBase
from repro.faults import FaultPlan, FaultyIO
from repro.obs.metrics import MetricsRegistry
from repro.propositions.wal import WalStore
from repro.scenario.workload import ConcurrentLoadGenerator, LoadStats
from repro.server.client import (
    LocalClient,
    PipelinedTCPClient,
    RetryPolicy,
    TCPClient,
)
from repro.server.protocol import encode_frame
from repro.server.service import GKBMSService
from repro.server.supervisor import ServiceSupervisor
from repro.server.tcp import AsyncGKBMSServer, GKBMSServer

#: The server-level fault matrix (≥5 kinds; CI shards sweep seeds).
FAULT_KINDS = (
    "writer_kill",
    "checkpoint_crash",
    "fsync_fault",
    "torn_tail",
    "client_drop",
    "lying_fsync",
)

#: Kinds whose oracle is strict equality with the full acked log
#: (``lying_fsync`` is the documented exception — see module docstring).
STRICT_KINDS = tuple(k for k in FAULT_KINDS if k != "lying_fsync")


class PowerCutIO(FaultyIO):
    """A :class:`~repro.faults.FaultyIO` that can also lose power.

    Tracks written vs durable byte counts for every file opened through
    the append/truncate paths (the WAL log); :meth:`powercut` then
    rewinds each file to what an actual power cut would have preserved:
    the last honestly-fsynced prefix.
    """

    def __init__(self, plan: FaultPlan) -> None:
        super().__init__(plan=plan)
        self._paths: Dict[int, str] = {}
        self._written: Dict[str, int] = {}
        self._durable: Dict[str, int] = {}

    # -- handle/offset tracking --------------------------------------------

    def open_append(self, path: str):
        handle = super().open_append(path)
        size = self.real.size(path) if self.real.exists(path) else 0
        self._paths[id(handle)] = path
        self._written.setdefault(path, size)
        self._durable.setdefault(path, size)
        return handle

    def open_truncate(self, path: str):
        handle = super().open_truncate(path)
        self._paths[id(handle)] = path
        self._written[path] = 0
        self._durable[path] = 0
        return handle

    def write(self, handle, data: bytes) -> None:
        path = self._paths.get(id(handle))
        super().write(handle, data)  # may tear and raise CrashPoint
        if path is not None:
            self._written[path] = self._written.get(path, 0) + len(data)

    def fsync(self, handle) -> None:
        op_after = self.ops + 1  # the index _tick() will assign
        super().fsync(handle)  # may crash, fail, or silently lie
        path = self._paths.get(id(handle))
        if path is not None and not self.plan.lies_at(op_after):
            self._durable[path] = self._written.get(path, 0)

    # -- the reboot --------------------------------------------------------

    def durable_len(self, path: str) -> int:
        return self._durable.get(path, 0)

    def powercut(self, keep_torn_tail: bool = False) -> Dict[str, int]:
        """Truncate every tracked log to its durable watermark; returns
        bytes lost per path.  ``keep_torn_tail`` leaves a seeded, sub-
        header-sized fragment of the unsynced tail behind — guaranteed
        unparseable, so recovery must truncate it physically."""
        rng = Random(self.plan.seed ^ 0x5C4A05)
        lost: Dict[str, int] = {}
        for path, durable in self._durable.items():
            if not self.real.exists(path):
                continue
            size = self.real.size(path)
            keep = durable
            if keep_torn_tail and size > durable:
                keep = durable + min(size - durable, rng.randrange(1, 8))
            if size > keep:
                self.real.truncate(path, keep)
            lost[path] = max(0, size - durable)
        return lost


# ----------------------------------------------------------------------
# The accepted-commit-log oracle
# ----------------------------------------------------------------------


def _apply_logged_ops(cb: ConceptBase, decisions, ops) -> None:
    """Apply one accepted commit's ops to the replay base.

    Decision ops go through the same :class:`DecisionHistory` code path
    the service used, bound to the replay base — dids and ticks are
    deterministic functions of the op sequence, so the replay yields
    the identical ledger."""
    kind0 = ops[0][0] if ops else None
    if kind0 == "decide":
        decisions.apply_decide(ops[0][1])
    elif kind0 == "backtrack":
        decisions.apply_backtrack(ops[0][1])
    else:
        with cb.transaction():
            for kind, arg in ops:
                if kind == "tell":
                    cb.tell(arg)
                elif kind == "untell":
                    cb.untell(arg)


def replay_commit_log(
    commit_log: List[Tuple[int, str, List[Tuple[str, str]]]]
) -> ConceptBase:
    """Replay accepted commits, in order, into a fresh in-memory base.

    Single-threaded replay of the accepted log is the service tier's
    correctness oracle: the pipeline refuses conflicting commits
    *before* apply, so the log is exactly the history that executed."""
    from repro.decisions import DecisionHistory

    cb = ConceptBase()
    decisions = DecisionHistory(cb)
    for _seq, _sid, ops in commit_log:
        if ops and ops[0][0] == "checkpoint":
            continue  # durability housekeeping; no logical effect
        _apply_logged_ops(cb, decisions, ops)
    return cb


def oracle_prefix(
    rows: Tuple[str, ...],
    acked_log: List[Tuple[int, str, List[Tuple[str, str]]]],
) -> Optional[int]:
    """The largest ``k`` with ``rows == replay(acked_log[:k]).rows()``,
    or ``None`` if no prefix matches (true corruption).

    A fully-recovered store yields ``k == len(acked_log)``; a lying
    disk yields some smaller ``k`` (quantified loss); ``None`` means
    the recovered state is not any accepted history at all."""
    from repro.decisions import DecisionHistory

    cb = ConceptBase()
    decisions = DecisionHistory(cb)
    match: Optional[int] = None
    if rows == cb.propositions.store.rows():
        match = 0
    for index, (_seq, _sid, ops) in enumerate(acked_log):
        if ops and ops[0][0] == "checkpoint":
            if match == index:
                match = index + 1
            continue
        _apply_logged_ops(cb, decisions, ops)
        if rows == cb.propositions.store.rows():
            match = index + 1
    return match


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------


@dataclass
class ChaosReport:
    """What one chaos run did and whether recovery kept its promises."""

    kind: str
    seed: int
    supervised: bool
    #: accepted (acked) commits at the moment of verification
    acked_commits: int = 0
    #: commits applied in memory (>= acked; the gap died with the fault)
    applied_commits: int = 0
    #: the acked prefix the recovered state equals (None = corrupt)
    oracle_prefix: Optional[int] = None
    #: acked commits the recovery lost (0 for every honest-fsync kind)
    lost_acked: int = 0
    #: strict oracle verdict: recovered rows == replay(full acked log)
    rows_equal: bool = False
    #: the idempotent-retry exactly-once check (client_drop kind)
    exactly_once: Optional[bool] = None
    load: Optional[LoadStats] = None
    #: wal.* recovery counters from the reopened store
    recovery: Dict[str, Any] = field(default_factory=dict)
    #: supervisor metrics (supervised runs)
    supervisor: Dict[str, Any] = field(default_factory=dict)
    unsynced_bytes_lost: int = 0

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind,
            "seed": self.seed,
            "supervised": self.supervised,
            "acked_commits": self.acked_commits,
            "applied_commits": self.applied_commits,
            "oracle_prefix": self.oracle_prefix,
            "lost_acked": self.lost_acked,
            "rows_equal": self.rows_equal,
            "exactly_once": self.exactly_once,
            "unsynced_bytes_lost": self.unsynced_bytes_lost,
            "recovery": dict(self.recovery),
            "supervisor": dict(self.supervisor),
        }
        if self.load is not None:
            out["load"] = self.load.to_json()
        return out


class ChaosHarness:
    """One seeded chaos scenario: load, fault, recovery, verification.

    Unsupervised runs model a hard reboot: the harness *is* the
    operator — it pulls the power (:meth:`PowerCutIO.powercut`),
    reopens the store over clean IO, and compares against the oracle.
    Supervised runs leave recovery to the
    :class:`~repro.server.supervisor.ServiceSupervisor` and verify the
    *live* service afterwards instead.
    """

    def __init__(self, wal_path: str, kind: str, seed: int, *,
                 threads: int = 4,
                 ops_per_thread: int = 12,
                 supervised: bool = False,
                 trigger_after: Optional[int] = None,
                 fsync: str = "commit",
                 transport: str = "threaded",
                 decision_ratio: float = 0.25) -> None:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; "
                             f"choose from {FAULT_KINDS}")
        if transport not in ("threaded", "async"):
            raise ValueError(f"unknown transport {transport!r}; "
                             f"choose 'threaded' or 'async'")
        self.wal_path = wal_path
        self.kind = kind
        self.seed = seed
        self.threads = threads
        self.ops_per_thread = ops_per_thread
        self.supervised = supervised
        self.fsync = fsync
        #: fraction of load ops that drive the decision ledger, so every
        #: fault lands under decide/backtrack traffic too and the oracle
        #: proves no acked decision is ever lost
        self.decision_ratio = decision_ratio
        #: TCP transport for the ``client_drop`` kind: ``"threaded"``
        #: (thread per connection) or ``"async"`` (the asyncio
        #: pipelined plane, driven by protocol-v2 clients).
        self.transport = transport
        # str hash() is salted per process; index() keeps seeds stable
        self._rng = Random(seed * 7919 + FAULT_KINDS.index(kind))
        #: inject once this many commits have been accepted
        self.trigger_after = (
            trigger_after if trigger_after is not None
            else 3 + self._rng.randrange(5)
        )

    # ------------------------------------------------------------------

    def run(self) -> ChaosReport:
        if self.kind == "client_drop":
            return self._run_client_drop()
        return self._run_io_fault()

    # -- IO-level kinds (writer_kill, checkpoint_crash, fsync_fault,
    #    torn_tail, lying_fsync) -------------------------------------------

    def _run_io_fault(self) -> ChaosReport:
        report = ChaosReport(kind=self.kind, seed=self.seed,
                             supervised=self.supervised)
        plan = FaultPlan(seed=self.seed)
        io = PowerCutIO(plan)
        registry = MetricsRegistry()
        store = WalStore(self.wal_path, fsync=self.fsync, io=io,
                         registry=registry)
        cb = ConceptBase(store=store, registry=registry)
        service = GKBMSService(cb, batch_window=0.002)
        supervisor: Optional[ServiceSupervisor] = None
        if self.supervised:
            supervisor = ServiceSupervisor(
                service, backoff_base=0.005, backoff_cap=0.05,
                seed=self.seed,
            )
        generator = ConcurrentLoadGenerator(
            client_factory=lambda: LocalClient(
                service, retry=RetryPolicy(seed=self.seed, base=0.005,
                                           cap=0.05),
            ),
            threads=self.threads, ops_per_thread=self.ops_per_thread,
            seed=self.seed, tolerant=True,
            decision_ratio=self.decision_ratio,
        )
        load_box: Dict[str, LoadStats] = {}
        loader = threading.Thread(
            target=lambda: load_box.update(done=generator.run()),
            name="chaos-load", daemon=True,
        )
        loader.start()
        self._await_commits(service, loader)
        self._inject(plan, io, service)
        loader.join(timeout=60.0)
        report.load = load_box.get("done")
        if self.supervised:
            return self._verify_supervised(report, service, supervisor)
        return self._verify_reboot(report, service, io)

    def _await_commits(self, service: GKBMSService,
                       loader: threading.Thread) -> None:
        deadline = time.monotonic() + 30.0
        while (service.pipeline.commit_seq < self.trigger_after
               and loader.is_alive() and time.monotonic() < deadline):
            time.sleep(0.001)

    def _inject(self, plan: FaultPlan, io: PowerCutIO,
                service: GKBMSService) -> None:
        """Arm the seeded fault relative to the live op counter."""
        offset = 1 + self._rng.randrange(4)
        if self.kind in ("writer_kill", "torn_tail"):
            plan.crash_at = io.ops + offset
        elif self.kind == "fsync_fault":
            plan.fail_fsyncs_from = io.ops + offset
        elif self.kind == "lying_fsync":
            plan.lying_fsyncs_from = io.ops + offset
            # a lying disk is only *observable* at the reboot: schedule
            # the kill a little later so lied-about batches get acked
            plan.crash_at = io.ops + offset + 8 + self._rng.randrange(8)
        elif self.kind == "checkpoint_crash":
            plan.crash_at = io.ops + offset
            try:
                # rides the pipeline: the crash lands inside the
                # checkpoint's snapshot/log-reset IO under live load
                service.checkpoint()
            except BaseException:  # noqa: BLE001 - incl. CrashPoint relayed
                pass

    # -- verification ------------------------------------------------------

    def _verify_reboot(self, report: ChaosReport, service: GKBMSService,
                       io: PowerCutIO) -> ChaosReport:
        acked = service.pipeline.acked_log()
        report.acked_commits = len(acked)
        report.applied_commits = len(service.pipeline.commit_log())
        try:
            service.close()
        except BaseException:  # noqa: BLE001 - crashed IO dies loudly
            pass
        lost = io.powercut(keep_torn_tail=(self.kind == "torn_tail"))
        report.unsynced_bytes_lost = sum(lost.values())
        recovered = WalStore(self.wal_path, fsync=self.fsync, io=REAL_IO,
                             registry=MetricsRegistry())
        report.recovery = dict(recovered.stats)
        rows = recovered.rows()
        recovered.close()
        report.oracle_prefix = oracle_prefix(rows, acked)
        report.rows_equal = report.oracle_prefix == len(acked)
        if report.oracle_prefix is not None:
            report.lost_acked = len(acked) - report.oracle_prefix
        return report

    def _verify_supervised(self, report: ChaosReport,
                           service: GKBMSService,
                           supervisor: Optional[ServiceSupervisor]
                           ) -> ChaosReport:
        if supervisor is not None:
            supervisor.join(timeout=30.0)
        deadline = time.monotonic() + 10.0
        while service.status == "restarting" and time.monotonic() < deadline:
            time.sleep(0.005)
        # The successor pipeline's log is the acked pre-fault history
        # plus everything committed after recovery: the live base must
        # equal its replay, same oracle as the reboot path.
        log = service.pipeline.commit_log()
        report.acked_commits = len(service.pipeline.acked_log())
        report.applied_commits = len(log)
        rows = service.cb.propositions.store.rows()
        oracle = replay_commit_log(log)
        report.rows_equal = rows == oracle.propositions.store.rows()
        report.oracle_prefix = len(log) if report.rows_equal else None
        report.supervisor = {
            key: value
            for key, value in service.registry.snapshot("server").items()
            if key.startswith("server.supervisor.")
        }
        report.supervisor["status"] = service.status
        try:
            service.close()
        except BaseException:  # noqa: BLE001 - crashed IO dies loudly
            pass
        return report

    # -- client_drop (TCP) -------------------------------------------------

    def _run_client_drop(self) -> ChaosReport:
        """Drop a TCP client mid-commit, retry its token, prove
        exactly-once, then drain and verify the reopened store."""
        report = ChaosReport(kind=self.kind, seed=self.seed,
                             supervised=self.supervised)
        registry = MetricsRegistry()
        store = WalStore(self.wal_path, fsync=self.fsync, io=REAL_IO,
                         registry=registry)
        cb = ConceptBase(store=store, registry=registry)
        service = GKBMSService(cb, batch_window=0.002)
        server_cls = (AsyncGKBMSServer if self.transport == "async"
                      else GKBMSServer)
        load_cls = (PipelinedTCPClient if self.transport == "async"
                    else TCPClient)
        with server_cls(("127.0.0.1", 0), service) as server:
            server.serve_in_thread()
            host, port = server.host, server.port
            generator = ConcurrentLoadGenerator(
                client_factory=lambda: load_cls(
                    host, port,
                    retry=RetryPolicy(seed=self.seed, base=0.005, cap=0.05),
                ),
                threads=self.threads, ops_per_thread=self.ops_per_thread,
                seed=self.seed, tolerant=True,
                decision_ratio=self.decision_ratio,
            )
            load_box: Dict[str, LoadStats] = {}
            loader = threading.Thread(
                target=lambda: load_box.update(done=generator.run()),
                name="chaos-load", daemon=True,
            )
            loader.start()
            self._await_commits(service, loader)
            report.exactly_once = self._drop_and_retry(service, host, port)
            loader.join(timeout=60.0)
            report.load = load_box.get("done")
            acked = service.pipeline.acked_log()
            report.acked_commits = len(acked)
            report.applied_commits = len(service.pipeline.commit_log())
            service.drain()
        recovered = WalStore(self.wal_path, fsync=self.fsync, io=REAL_IO,
                             registry=MetricsRegistry())
        report.recovery = dict(recovered.stats)
        rows = recovered.rows()
        recovered.close()
        report.oracle_prefix = oracle_prefix(rows, acked)
        report.rows_equal = report.oracle_prefix == len(acked)
        if report.oracle_prefix is not None:
            report.lost_acked = len(acked) - report.oracle_prefix
        return report

    def _drop_and_retry(self, service: GKBMSService,
                        host: str, port: int) -> bool:
        """The mid-commit vanish: stage a commit, send it, close the
        socket without reading the ack, then retry the same token from
        a fresh connection and check it applied exactly once."""
        token = f"chaos-drop-{self.seed}"
        marker = f"ChaosDrop{self.seed}"
        dropper = TCPClient(host, port)
        dropper.begin()
        dropper.tell(f"TELL {marker} IN SimpleClass END")
        # Send the commit frame raw and hang up before the response:
        # the server processes it; the ack dies with the connection.
        dropper._req_id += 1
        frame = {
            "id": dropper._req_id, "op": "commit",
            "session": dropper.session, "params": {"token": token},
        }
        dropper._file.write(encode_frame(frame))
        dropper._file.flush()
        dropper._drop_connection()
        # Wait until the dropped commit is acked server-side (it races
        # the batch window), then retry from a brand-new client.
        deadline = time.monotonic() + 10.0
        while (service.pipeline.token_result(token) is None
               and time.monotonic() < deadline):
            time.sleep(0.002)
        retrier = TCPClient(host, port,
                            retry=RetryPolicy(seed=self.seed))
        try:
            result = retrier.commit_with_token(token)
        finally:
            retrier.close()
        applied = [
            entry for entry in service.pipeline.commit_log()
            if any(arg.find(marker) >= 0 for _kind, arg in entry[2])
        ]
        return bool(result.get("idempotent")) and len(applied) == 1


__all__ = [
    "FAULT_KINDS",
    "STRICT_KINDS",
    "ChaosHarness",
    "ChaosReport",
    "PowerCutIO",
    "oracle_prefix",
    "replay_commit_log",
]
