"""The project-meeting organisation scenario (S21).

Section 1 (1): "in a project meeting organization scenario [BORG88,
JJR87], a world model represented in CML would give a general account
of meetings as an activity in a real world with time; a system model,
also described by CML (system) objects and activities, would be
embedded in the world model [...]  The combined world and system model
is mapped to a TaxisDL conceptual design [...] hierarchies of documents
generated during a meeting.  In a last step, this semantic data and
transaction model is mapped to efficient and modular database programs
in DBPL."

:func:`build_world_model` and :func:`build_system_model` populate the
CML level; :data:`DOCUMENT_DESIGN` is the TaxisDL document hierarchy of
section 2.1; :class:`MeetingScenario` drives the whole story — every
figure bench and example replays (parts of) it.
"""

from repro.scenario.meeting import (
    DOCUMENT_DESIGN,
    MINUTES_EXTENSION,
    MeetingScenario,
    build_system_model,
    build_world_model,
)

__all__ = [
    "DOCUMENT_DESIGN",
    "MINUTES_EXTENSION",
    "MeetingScenario",
    "build_system_model",
    "build_world_model",
]
