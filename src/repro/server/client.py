"""Clients: the same API in-process and over TCP, with safe retries.

:class:`LocalClient` talks to a :class:`~repro.server.service.GKBMSService`
in the same process; :class:`TCPClient` talks to a
``python -m repro.server`` instance over a socket.  Both speak the
exact protocol frames of :mod:`repro.server.protocol` — the local
client round-trips every request and response through the wire encoder,
so anything that works locally works remotely (and a non-serializable
result fails in the unit tests, not in production).

Typed errors survive the wire: a refused commit raises
:class:`~repro.errors.CommitConflict` from either client, a shed
request raises :class:`~repro.errors.ServerOverloaded`, and so on.

**Retries.**  Give a client a :class:`RetryPolicy` and transient typed
failures — :class:`~repro.errors.ServerOverloaded` (shed),
:class:`~repro.errors.ServerRestarting` (supervised recovery in
progress) and :class:`~repro.errors.ConnectionLost` (socket died or
timed out) — are retried with capped, seeded-jittered exponential
backoff.  Reads are always safe to retry.  Writes are retried only
because the client stamps each logical write with a fresh
**idempotency token**: the server remembers acked results by token, so
a retry whose original attempt actually committed collects the
original result (marked ``idempotent: true``) instead of applying
twice.  ``ConnectionLost`` is the ambiguous case retries exist for —
the request may or may not have been applied — and the token is what
resolves the ambiguity.

After a connection loss the :class:`TCPClient` reconnects and opens a
*fresh* session before retrying.  A retried autocommit ``tell``/
``untell`` carries its ops in the request, so it lands cleanly on the
new session.  A retried transactional ``commit`` either finds its
token (the original acked — result returned) or fails with a typed
:class:`~repro.errors.SessionError` (the staging died with the old
session and the commit definitively did not apply) — never silently
half-applies.
"""

from __future__ import annotations

import random
import socket
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.analysis.concurrency.lockdep import make_lock
from repro.errors import (
    ConnectionLost,
    ProtocolError,
    ReproError,
    ServerError,
    ServerOverloaded,
    ServerRestarting,
)
from repro.server.protocol import (
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    exception_for,
)

#: Ops whose effect mutates the shared base — retried only with a token.
_WRITE_OPS = frozenset({"tell", "untell", "commit", "decide", "backtrack"})

#: The transient, typed failures a RetryPolicy may re-submit after.
RETRYABLE = (ServerOverloaded, ServerRestarting, ConnectionLost)


class RetryPolicy:
    """Capped, seeded-jittered exponential backoff for client retries.

    ``max_attempts`` counts the first try: the default 4 means one
    request plus up to three retries.  Delays grow ``base * 2**n`` up
    to ``cap``, each scaled by a seeded jitter in ``[0.5, 1.0)`` so a
    thundering herd of identical clients decorrelates deterministically
    per seed.
    """

    def __init__(self, max_attempts: int = 4,
                 base: float = 0.02, cap: float = 1.0,
                 seed: int = 0, sleep=time.sleep) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.base = base
        self.cap = cap
        self._rng = random.Random(seed)
        self._sleep = sleep
        #: Observability for tests and benches: total retries issued.
        self.retries = 0

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based)."""
        raw = min(self.cap, self.base * (2 ** (attempt - 1)))
        return raw * (0.5 + self._rng.random() / 2.0)

    def pause(self, attempt: int) -> None:
        self.retries += 1
        self._sleep(self.delay(attempt))


class _BaseClient:
    """Request numbering, session bookkeeping, typed error raising."""

    def __init__(self, deadline_ms: Optional[float] = None,
                 retry: Optional[RetryPolicy] = None) -> None:
        #: Default per-request deadline budget (ms); ``None`` = none.
        self.deadline_ms = deadline_ms
        self.retry = retry
        self._req_id = 0
        self._session: Optional[str] = None

    # Transports implement exactly this.
    def _request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        raise NotImplementedError

    def _recover_transport(self) -> None:
        """Re-establish the transport before a retry (reconnect and
        re-handshake for sockets; nothing in process)."""

    @property
    def session(self) -> Optional[str]:
        return self._session

    @staticmethod
    def _new_token() -> str:
        """A fresh idempotency token for one logical write."""
        return uuid.uuid4().hex

    def _call(self, op: str, params: Optional[Dict[str, Any]] = None,
              deadline_ms: Optional[float] = None) -> Dict[str, Any]:
        params = dict(params) if params else {}
        if self.retry is not None and op in _WRITE_OPS \
                and "token" not in params:
            # One token per logical write, shared by all its attempts:
            # this is what makes the retry loop below safe for writes.
            params["token"] = self._new_token()
        attempt = 1
        while True:
            try:
                return self._call_once(op, params, deadline_ms)
            except RETRYABLE as exc:
                if not self._can_retry(op, params, attempt):
                    raise
                self.retry.pause(attempt)  # type: ignore[union-attr]
                attempt += 1
                if isinstance(exc, ConnectionLost):
                    try:
                        self._recover_transport()
                    except ConnectionLost:
                        # Still unreachable; the next attempt surfaces
                        # it (and burns an attempt, as it should).
                        pass

    def _can_retry(self, op: str, params: Dict[str, Any],
                   attempt: int) -> bool:
        if self.retry is None or attempt >= self.retry.max_attempts:
            return False
        if op == "bye":
            return False  # best-effort farewell; never worth a wait
        if op in _WRITE_OPS and "token" not in params:
            return False  # an untokened write retry could double-apply
        return True

    def _call_once(self, op: str, params: Dict[str, Any],
                   deadline_ms: Optional[float]) -> Dict[str, Any]:
        self._req_id += 1
        payload: Dict[str, Any] = {
            "id": self._req_id, "op": op, "params": params,
        }
        if op not in ("hello", "ping"):
            if self._session is None:
                raise ServerError("no session: call hello() first")
            payload["session"] = self._session
        budget = deadline_ms if deadline_ms is not None else self.deadline_ms
        if budget is not None:
            payload["deadline_ms"] = budget
        response = self._request(payload)
        if response.get("id") != payload["id"]:
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {payload['id']!r}"
            )
        if response.get("ok"):
            result = response.get("result")
            return result if isinstance(result, dict) else {}
        error = response.get("error")
        raise exception_for(error if isinstance(error, dict) else {})

    # -- session -----------------------------------------------------------

    def hello(self) -> str:
        result = self._call("hello")
        self._session = str(result["session"])
        return self._session

    def ping(self) -> Dict[str, Any]:
        return self._call("ping")

    def bye(self) -> None:
        if self._session is not None:
            try:
                self._call("bye")
            finally:
                self._session = None

    # -- writes ------------------------------------------------------------

    def tell(self, source: str, **kw: Any) -> Dict[str, Any]:
        return self._call("tell", {"source": source}, **kw)

    def untell(self, name: str, **kw: Any) -> Dict[str, Any]:
        return self._call("untell", {"name": name}, **kw)

    # -- reads -------------------------------------------------------------

    def ask(self, assertion: str, **kw: Any) -> bool:
        return bool(self._call("ask", {"assertion": assertion}, **kw)["holds"])

    def ask_all(self, assertion: str, **kw: Any) -> List[Dict[str, str]]:
        return list(
            self._call("ask_all", {"assertion": assertion}, **kw)["witnesses"]
        )

    def query(self, literal: str, **kw: Any) -> List[List[Any]]:
        return list(self._call("query", {"literal": literal}, **kw)["answers"])

    def instances(self, cls: str, **kw: Any) -> List[str]:
        return list(self._call("instances", {"cls": cls}, **kw)["instances"])

    def frame(self, name: str, **kw: Any) -> str:
        return str(self._call("frame", {"name": name}, **kw)["frame"])

    def summary(self, **kw: Any) -> Dict[str, int]:
        return dict(self._call("summary", **kw)["summary"])

    def stats(self, prefix: str = "", **kw: Any) -> Dict[str, Any]:
        return dict(self._call("stats", {"prefix": prefix}, **kw)["metrics"])

    def explain(self, text: str, kind: str = "query",
                **kw: Any) -> Dict[str, Any]:
        return self._call("explain", {"kind": kind, "text": text}, **kw)

    # -- decisions ---------------------------------------------------------

    def decide(self, decision_class: str, *,
               tell: Optional[List[str]] = None,
               untell: Optional[List[str]] = None,
               inputs: Optional[Dict[str, str]] = None,
               kind: str = "other",
               tool: Optional[str] = None,
               parents: Optional[List[str]] = None,
               rationale: str = "",
               obligations: Optional[List[str]] = None,
               **kw: Any) -> Dict[str, Any]:
        """Record one design decision: its tells/untells apply as one
        commit and a durable ledger record rides the same transaction."""
        params: Dict[str, Any] = {
            "decision_class": decision_class,
            "kind": kind,
            "tell": list(tell or []),
            "untell": list(untell or []),
            "inputs": dict(inputs or {}),
            "parents": list(parents or []),
            "rationale": rationale,
            "obligations": list(obligations or []),
        }
        if tool is not None:
            params["tool"] = tool
        return self._call("decide", params, **kw)

    def backtrack(self, did: str, **kw: Any) -> Dict[str, Any]:
        """Retract a decision and its transitive consequents."""
        return self._call("backtrack", {"did": did}, **kw)

    def replay(self, did: str, **kw: Any) -> Dict[str, Any]:
        """Re-applicability test of a recorded decision (drift report)."""
        return self._call("replay", {"did": did}, **kw)

    def history(self, include_retracted: bool = True,
                **kw: Any) -> Dict[str, Any]:
        """The decision ledger plus justification-graph edges."""
        return self._call(
            "history", {"include_retracted": include_retracted}, **kw
        )

    def versions(self, **kw: Any) -> Dict[str, Any]:
        """Versions/configurations derived from the decision ledger."""
        return self._call("versions", **kw)

    # -- transactions ------------------------------------------------------

    def begin(self, **kw: Any) -> int:
        return int(self._call("begin", **kw)["read_epoch"])

    def staged(self, **kw: Any) -> Dict[str, Any]:
        return self._call("staged", **kw)

    def commit(self, **kw: Any) -> Dict[str, Any]:
        return self._call("commit", **kw)

    def commit_with_token(self, token: str, **kw: Any) -> Dict[str, Any]:
        """Commit under an explicit idempotency token.

        The recovery tool for a lost ack: if a previous commit carrying
        ``token`` was acknowledged, this returns its recorded result
        (``idempotent: true``) even from a brand-new session; if it
        never applied, this behaves exactly like :meth:`commit` for the
        current transaction."""
        return self._call("commit", {"token": token}, **kw)

    def abort(self, **kw: Any) -> Dict[str, Any]:
        return self._call("abort", **kw)

    @contextmanager
    def transaction(self) -> Iterator["_BaseClient"]:
        """``with client.transaction(): client.tell(...)`` — commits on
        clean exit, aborts on exception.  A refused commit (conflict,
        consistency) propagates; the server has already ended the
        transaction, so a retry just opens a new one."""
        self.begin()
        try:
            yield self
        except BaseException:
            try:
                self.abort()
            except ServerError:
                pass
            raise
        else:
            self.commit()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Best effort: a farewell shed by admission control (or a dead
        socket) must not mask the caller's own exception path."""
        try:
            self.bye()
        except (ReproError, OSError):
            pass

    def __enter__(self) -> "_BaseClient":
        if self._session is None:
            self.hello()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.close()
        return False


class LocalClient(_BaseClient):
    """In-process client: no sockets, same frames, same typed errors."""

    def __init__(self, service: Any,
                 deadline_ms: Optional[float] = None,
                 retry: Optional[RetryPolicy] = None,
                 auto_hello: bool = True) -> None:
        super().__init__(deadline_ms=deadline_ms, retry=retry)
        self._service = service
        if auto_hello:
            self.hello()

    def _request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        # Round-trip through the wire encoding on both legs: the local
        # client must never accept a frame the TCP transport would not.
        request = decode_frame(encode_frame(payload))
        response = self._service.handle(request)
        return decode_frame(encode_frame(response))


class TCPClient(_BaseClient):
    """Socket client for ``python -m repro.server``.

    Every request is bounded: connecting waits at most
    ``connect_timeout`` seconds, and each request waits at most its
    deadline budget (``deadline_ms`` plus grace, when one is set) or
    ``timeout`` seconds for the response — a dead or hung server
    surfaces as a typed :class:`~repro.errors.ConnectionLost`, never an
    unbounded ``recv``.  A timeout poisons the stream (a late response
    would desynchronize request ids), so the socket is closed and the
    next retry reconnects with a fresh session.
    """

    #: Seconds added to deadline_ms for the per-request socket timeout:
    #: the deadline governs server-side admission + execution; the wire
    #: needs a little longer before the client declares the link dead.
    DEADLINE_GRACE = 1.0

    def __init__(self, host: str = "127.0.0.1", port: int = 8731,
                 deadline_ms: Optional[float] = None,
                 timeout: float = 30.0,
                 connect_timeout: float = 5.0,
                 retry: Optional[RetryPolicy] = None,
                 auto_hello: bool = True) -> None:
        super().__init__(deadline_ms=deadline_ms, retry=retry)
        self._host = host
        self._port = port
        self._timeout = timeout
        self._connect_timeout = connect_timeout
        self._sock: Optional[socket.socket] = None
        self._file: Any = None
        self._connect()
        if auto_hello:
            self.hello()

    # -- transport ---------------------------------------------------------

    def _connect(self) -> None:
        try:
            self._sock = socket.create_connection(
                (self._host, self._port), timeout=self._connect_timeout
            )
        except OSError as exc:
            self._sock = None
            raise ConnectionLost(
                f"connect to {self._host}:{self._port} failed: {exc}"
            ) from exc
        self._sock.settimeout(self._timeout)
        self._file = self._sock.makefile("rwb")

    def _drop_connection(self) -> None:
        file, sock = self._file, self._sock
        self._file = None
        self._sock = None
        try:
            if file is not None:
                file.close()
        except OSError:
            pass
        try:
            if sock is not None:
                sock.close()
        except OSError:
            pass

    def _request_timeout(self, payload: Dict[str, Any]) -> float:
        budget = payload.get("deadline_ms")
        if budget is not None:
            return budget / 1000.0 + self.DEADLINE_GRACE
        return self._timeout

    def _request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        if self._sock is None:
            raise ConnectionLost(
                f"not connected to {self._host}:{self._port}"
            )
        self._sock.settimeout(self._request_timeout(payload))
        try:
            self._file.write(encode_frame(payload))
            self._file.flush()
            line = self._file.readline()
        except socket.timeout as exc:
            self._drop_connection()
            raise ConnectionLost(
                f"request {payload.get('op')!r} timed out after "
                f"{self._request_timeout(payload):.1f}s; connection dropped"
            ) from exc
        except OSError as exc:
            self._drop_connection()
            raise ConnectionLost(
                f"connection to {self._host}:{self._port} failed: {exc}"
            ) from exc
        if not line:
            self._drop_connection()
            raise ConnectionLost("server closed the connection")
        return decode_frame(line)

    def _recover_transport(self) -> None:
        """Reconnect and open a fresh session (the old one may be gone
        with the old connection; the retried request re-binds to the
        new one — idempotency tokens, not session identity, carry write
        dedup across the gap)."""
        self._drop_connection()
        self._connect()
        # Raw handshake, not self.hello(): the retrying _call must not
        # re-enter itself through the recovery path.
        self._req_id += 1
        response = self._request(
            {"id": self._req_id, "op": "hello", "params": {}}
        )
        if response.get("ok"):
            result = response.get("result") or {}
            self._session = str(result.get("session"))
        else:
            error = response.get("error")
            raise exception_for(error if isinstance(error, dict) else {})

    def close(self) -> None:
        try:
            if self._sock is not None:
                self.bye()
        except (ReproError, OSError):
            pass
        finally:
            self._drop_connection()


class PendingReply:
    """One in-flight pipelined request: a handle to wait on.

    Resolved by the client's reader thread when the response frame with
    the matching ``id`` arrives (possibly out of order), or failed with
    :class:`~repro.errors.ConnectionLost` when the transport dies with
    the request still outstanding."""

    def __init__(self, request_id: Any) -> None:
        self.request_id = request_id
        self._done = threading.Event()
        self._response: Optional[Dict[str, Any]] = None  # guarded-by: external: reader thread, published via _done
        self._error: Optional[Exception] = None  # guarded-by: external: reader thread, published via _done

    def _resolve(self, response: Dict[str, Any]) -> None:
        self._response = response
        self._done.set()

    def _fail(self, exc: Exception) -> None:
        if not self._done.is_set():
            self._error = exc
            self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """The raw response frame; raises typed on transport failure or
        timeout (the request may still execute server-side — exactly
        the ambiguity idempotency tokens exist for)."""
        if not self._done.wait(timeout):
            raise ConnectionLost(
                f"pipelined request {self.request_id!r} timed out"
            )
        if self._error is not None:
            raise self._error
        assert self._response is not None
        return self._response

    def result(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """The unwrapped ``result`` dict; wire errors re-raise typed."""
        response = self.wait(timeout)
        if response.get("ok"):
            result = response.get("result")
            return result if isinstance(result, dict) else {}
        error = response.get("error")
        raise exception_for(error if isinstance(error, dict) else {})


class PipelinedTCPClient(TCPClient):
    """Protocol v2 client: many requests in flight on one connection.

    :meth:`submit` writes a request and returns a :class:`PendingReply`
    immediately; a background reader thread matches response frames to
    replies by ``id``, so responses may arrive in any order.  The
    blocking :class:`_BaseClient` API (``tell``/``ask``/...) still
    works — each call is submit-then-wait — and is what the retry
    policy wraps, so pipelined and lockstep clients share recovery
    semantics.  All client methods are safe to call from multiple
    threads; one socket multiplexes them all.

    ``hello`` negotiates protocol v2; against an older (v1-only) server
    the grant comes back 1 and :attr:`protocol` records it — the client
    still functions, it just cannot assume out-of-order delivery.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8731,
                 deadline_ms: Optional[float] = None,
                 timeout: float = 30.0,
                 connect_timeout: float = 5.0,
                 retry: Optional[RetryPolicy] = None,
                 auto_hello: bool = True) -> None:
        #: Serializes request-id allocation, the pending map, and frame
        #: writes (so two submitters never interleave bytes).
        self._lock = make_lock("server.client.pipeline")
        self._pending: Dict[Any, PendingReply] = {}  # guarded-by: _lock
        self._broken = False  # guarded-by: _lock
        self._rfile: Any = None
        #: Protocol version the server granted in ``hello`` (1 until
        #: the handshake completes).
        self.protocol = 1
        super().__init__(host=host, port=port, deadline_ms=deadline_ms,
                         timeout=timeout, connect_timeout=connect_timeout,
                         retry=retry, auto_hello=auto_hello)

    # -- transport ---------------------------------------------------------

    def _connect(self) -> None:
        super()._connect()
        # The reader thread owns blocking reads; per-request bounds come
        # from PendingReply.wait, not a socket timeout (which would
        # poison idle pipelined connections).
        assert self._sock is not None
        self._sock.settimeout(None)
        self._rfile = self._sock.makefile("rb")
        with self._lock:
            self._broken = False
        reader = threading.Thread(
            target=self._read_loop, args=(self._rfile,),
            name="gkbms-pipelined-reader", daemon=True,
        )
        reader.start()

    def _drop_connection(self) -> None:
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
            self._broken = True
        # Wake the reader thread (blocked in recv) with EOF.  It owns
        # closing its file object — closing a buffered reader from
        # here would deadlock on the buffer lock the blocked read
        # holds.
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        self._rfile = None
        super()._drop_connection()
        for reply in pending:
            reply._fail(ConnectionLost(
                "connection dropped with requests in flight"
            ))

    def _read_loop(self, rfile: Any) -> None:
        """Reader thread: match response frames to pending replies."""
        while True:
            try:
                line = rfile.readline()
            except (OSError, ValueError):
                break
            if not line or not line.endswith(b"\n"):
                break
            try:
                response = decode_frame(line)
            except ProtocolError:
                break  # stream desynchronized; poison the connection
            with self._lock:
                reply = self._pending.pop(response.get("id"), None)
            if reply is not None:
                reply._resolve(response)
            # An unmatched id is a reply whose waiter already gave up
            # (timed out) — discard; nothing downstream depends on it.
        try:
            rfile.close()
        except OSError:
            pass
        self._connection_broken(rfile)

    def _connection_broken(self, rfile: Any) -> None:
        with self._lock:
            current = self._rfile is rfile
            pending: List[PendingReply] = []
            if current:
                self._broken = True
                pending = list(self._pending.values())
                self._pending.clear()
        for reply in pending:
            reply._fail(ConnectionLost("server closed the connection"))

    # -- pipelining --------------------------------------------------------

    def submit(self, op: str, params: Optional[Dict[str, Any]] = None,
               deadline_ms: Optional[float] = None,
               session: Optional[str] = None) -> PendingReply:
        """Write one request without waiting; returns its handle.

        ``session`` defaults to the client's own; pass one explicitly
        to multiplex several sessions over this connection."""
        params = dict(params) if params else {}
        sid = session if session is not None else self._session
        budget = deadline_ms if deadline_ms is not None else self.deadline_ms
        with self._lock:
            if self._sock is None or self._broken:
                raise ConnectionLost(
                    f"not connected to {self._host}:{self._port}"
                )
            self._req_id += 1
            payload: Dict[str, Any] = {
                "id": self._req_id, "op": op, "params": params,
            }
            if op not in ("hello", "ping"):
                if sid is None:
                    raise ServerError("no session: call hello() first")
                payload["session"] = sid
            if budget is not None:
                payload["deadline_ms"] = budget
            reply = PendingReply(payload["id"])
            self._pending[payload["id"]] = reply
            try:
                self._file.write(encode_frame(payload))
                self._file.flush()
            except OSError as exc:
                self._pending.pop(payload["id"], None)
                raise ConnectionLost(
                    f"connection to {self._host}:{self._port} failed: {exc}"
                ) from exc
        return reply

    def _call_once(self, op: str, params: Dict[str, Any],
                   deadline_ms: Optional[float]) -> Dict[str, Any]:
        # The blocking API is submit-then-wait; id allocation, the
        # response-id match, and the write all happen under the
        # pipeline lock inside submit().
        budget = deadline_ms if deadline_ms is not None else self.deadline_ms
        timeout = (budget / 1000.0 + self.DEADLINE_GRACE
                   if budget is not None else self._timeout)
        reply = self.submit(op, params, deadline_ms=deadline_ms)
        try:
            return reply.result(timeout)
        except ConnectionLost:
            with self._lock:
                self._pending.pop(reply.request_id, None)
            raise

    # -- session -----------------------------------------------------------

    def hello(self) -> str:
        result = self._call("hello", {"protocol": PROTOCOL_VERSION})
        self._session = str(result["session"])
        self.protocol = int(result.get("protocol", 1))
        return self._session

    def _recover_transport(self) -> None:
        self._drop_connection()
        self._connect()
        reply = self.submit("hello", {"protocol": PROTOCOL_VERSION})
        result = reply.result(self._timeout)
        self._session = str(result.get("session"))
        self.protocol = int(result.get("protocol", 1))


__all__ = [
    "LocalClient",
    "PendingReply",
    "PipelinedTCPClient",
    "RetryPolicy",
    "TCPClient",
    "RETRYABLE",
]
