"""Clients: the same API in-process and over TCP.

:class:`LocalClient` talks to a :class:`~repro.server.service.GKBMSService`
in the same process; :class:`TCPClient` talks to a
``python -m repro.server`` instance over a socket.  Both speak the
exact protocol frames of :mod:`repro.server.protocol` — the local
client round-trips every request and response through the wire encoder,
so anything that works locally works remotely (and a non-serializable
result fails in the unit tests, not in production).

Typed errors survive the wire: a refused commit raises
:class:`~repro.errors.CommitConflict` from either client, a shed
request raises :class:`~repro.errors.ServerOverloaded`, and so on.
"""

from __future__ import annotations

import socket
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import ProtocolError, ReproError, ServerError
from repro.server.protocol import decode_frame, encode_frame, exception_for


class _BaseClient:
    """Request numbering, session bookkeeping, typed error raising."""

    def __init__(self, deadline_ms: Optional[float] = None) -> None:
        #: Default per-request deadline budget (ms); ``None`` = none.
        self.deadline_ms = deadline_ms
        self._req_id = 0
        self._session: Optional[str] = None

    # Transports implement exactly this.
    def _request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        raise NotImplementedError

    @property
    def session(self) -> Optional[str]:
        return self._session

    def _call(self, op: str, params: Optional[Dict[str, Any]] = None,
              deadline_ms: Optional[float] = None) -> Dict[str, Any]:
        self._req_id += 1
        payload: Dict[str, Any] = {
            "id": self._req_id, "op": op, "params": params or {},
        }
        if op not in ("hello", "ping"):
            if self._session is None:
                raise ServerError("no session: call hello() first")
            payload["session"] = self._session
        budget = deadline_ms if deadline_ms is not None else self.deadline_ms
        if budget is not None:
            payload["deadline_ms"] = budget
        response = self._request(payload)
        if response.get("id") != payload["id"]:
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {payload['id']!r}"
            )
        if response.get("ok"):
            result = response.get("result")
            return result if isinstance(result, dict) else {}
        error = response.get("error")
        raise exception_for(error if isinstance(error, dict) else {})

    # -- session -----------------------------------------------------------

    def hello(self) -> str:
        result = self._call("hello")
        self._session = str(result["session"])
        return self._session

    def ping(self) -> Dict[str, Any]:
        return self._call("ping")

    def bye(self) -> None:
        if self._session is not None:
            try:
                self._call("bye")
            finally:
                self._session = None

    # -- writes ------------------------------------------------------------

    def tell(self, source: str, **kw: Any) -> Dict[str, Any]:
        return self._call("tell", {"source": source}, **kw)

    def untell(self, name: str, **kw: Any) -> Dict[str, Any]:
        return self._call("untell", {"name": name}, **kw)

    # -- reads -------------------------------------------------------------

    def ask(self, assertion: str, **kw: Any) -> bool:
        return bool(self._call("ask", {"assertion": assertion}, **kw)["holds"])

    def ask_all(self, assertion: str, **kw: Any) -> List[Dict[str, str]]:
        return list(
            self._call("ask_all", {"assertion": assertion}, **kw)["witnesses"]
        )

    def query(self, literal: str, **kw: Any) -> List[List[Any]]:
        return list(self._call("query", {"literal": literal}, **kw)["answers"])

    def instances(self, cls: str, **kw: Any) -> List[str]:
        return list(self._call("instances", {"cls": cls}, **kw)["instances"])

    def frame(self, name: str, **kw: Any) -> str:
        return str(self._call("frame", {"name": name}, **kw)["frame"])

    def summary(self, **kw: Any) -> Dict[str, int]:
        return dict(self._call("summary", **kw)["summary"])

    def stats(self, prefix: str = "", **kw: Any) -> Dict[str, Any]:
        return dict(self._call("stats", {"prefix": prefix}, **kw)["metrics"])

    def explain(self, text: str, kind: str = "query",
                **kw: Any) -> Dict[str, Any]:
        return self._call("explain", {"kind": kind, "text": text}, **kw)

    # -- transactions ------------------------------------------------------

    def begin(self, **kw: Any) -> int:
        return int(self._call("begin", **kw)["read_epoch"])

    def staged(self, **kw: Any) -> Dict[str, Any]:
        return self._call("staged", **kw)

    def commit(self, **kw: Any) -> Dict[str, Any]:
        return self._call("commit", **kw)

    def abort(self, **kw: Any) -> Dict[str, Any]:
        return self._call("abort", **kw)

    @contextmanager
    def transaction(self) -> Iterator["_BaseClient"]:
        """``with client.transaction(): client.tell(...)`` — commits on
        clean exit, aborts on exception.  A refused commit (conflict,
        consistency) propagates; the server has already ended the
        transaction, so a retry just opens a new one."""
        self.begin()
        try:
            yield self
        except BaseException:
            try:
                self.abort()
            except ServerError:
                pass
            raise
        else:
            self.commit()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Best effort: a farewell shed by admission control (or a dead
        socket) must not mask the caller's own exception path."""
        try:
            self.bye()
        except (ReproError, OSError):
            pass

    def __enter__(self) -> "_BaseClient":
        if self._session is None:
            self.hello()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.close()
        return False


class LocalClient(_BaseClient):
    """In-process client: no sockets, same frames, same typed errors."""

    def __init__(self, service: Any,
                 deadline_ms: Optional[float] = None,
                 auto_hello: bool = True) -> None:
        super().__init__(deadline_ms=deadline_ms)
        self._service = service
        if auto_hello:
            self.hello()

    def _request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        # Round-trip through the wire encoding on both legs: the local
        # client must never accept a frame the TCP transport would not.
        request = decode_frame(encode_frame(payload))
        response = self._service.handle(request)
        return decode_frame(encode_frame(response))


class TCPClient(_BaseClient):
    """Socket client for ``python -m repro.server``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8731,
                 deadline_ms: Optional[float] = None,
                 timeout: float = 30.0,
                 auto_hello: bool = True) -> None:
        super().__init__(deadline_ms=deadline_ms)
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        if auto_hello:
            self.hello()

    def _request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self._file.write(encode_frame(payload))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServerError("server closed the connection")
        return decode_frame(line)

    def close(self) -> None:
        try:
            self.bye()
        except (ReproError, OSError):
            pass
        finally:
            try:
                self._file.close()
            finally:
                self._sock.close()
