"""The concurrent GKBMS service layer.

Section 2 of the paper makes the GKBMS a *global* knowledge base: every
DAIDA tool and designer works against one shared ConceptBase, and the
design decisions they take are documented into it concurrently.  The
kernel reproduction up to PR 4 is single-caller; this package is the
serving layer that makes it shared:

- :mod:`repro.server.session` — per-client sessions, each with its own
  :class:`~repro.propositions.store.WorkspaceStore` overlay for staged
  (uncommitted) tellings and a pinned read epoch;
- :mod:`repro.server.pipeline` — the single-writer commit pipeline:
  session commits funnel through a bounded queue into the proposition
  processor and WAL with **group commit** (one fsync per batch) and
  first-committer-wins conflict validation;
- :mod:`repro.server.admission` — the front door: bounded waiting,
  in-flight caps, deadlines, typed load shedding
  (:class:`~repro.errors.ServerOverloaded` instead of a stall);
- :mod:`repro.server.protocol` — the newline-delimited-JSON wire
  format;
- :mod:`repro.server.service` — :class:`GKBMSService`, the in-process
  request handler every transport shares;
- :mod:`repro.server.client` — :class:`LocalClient` (no sockets) and
  :class:`TCPClient` with the same API;
- :mod:`repro.server.tcp` — the threaded TCP transport behind
  ``python -m repro.server``.

Everything reports into the PR 4 observability substrate under the
``server.*`` metrics namespace and ``server.*`` spans.
"""

from repro.server.client import LocalClient, RetryPolicy, TCPClient
from repro.server.service import GKBMSService
from repro.server.supervisor import ServiceSupervisor
from repro.server.tcp import GKBMSServer

__all__ = [
    "GKBMSService", "GKBMSServer", "LocalClient", "RetryPolicy",
    "ServiceSupervisor", "TCPClient",
]
