"""Sessions: one per connected client, with a staged-write overlay.

A session carries exactly the state the shared knowledge base must not:
the client's *pinned read epoch* (the commit sequence number its open
transaction read from) and its *overlay* — a private
:class:`~repro.propositions.store.WorkspaceStore` holding one workspace
per open transaction, into which the write-set of every staged ``tell``
and ``untell`` is materialised as stub propositions.  The overlay is
the unit first-committer-wins validation reads (the touched proposition
keys) and the unit an ``abort`` throws away:
:meth:`~repro.propositions.store.WorkspaceStore.remove_workspace`
discards it without bumping any global epoch, so an aborted transaction
leaves no trace in the shared processor's closure caches.

Admission allows several concurrent requests per session, so session
state needs its own synchronization: every session carries a reentrant
:attr:`Session.lock`, the staging methods take it themselves, and the
service additionally holds it across each *whole* session-mutating
operation — a commit's snapshot-submit-clear sequence is atomic against
a concurrent ``tell``, so a stage can never slip between the snapshot
and the clearing ``end_transaction`` and be silently lost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.concurrency.lockdep import make_lock, make_rlock
from repro.errors import SessionError
from repro.obs.metrics import MetricsRegistry, Namespace
from repro.propositions.proposition import individual
from repro.propositions.store import WorkspaceStore

#: A staged operation: ("tell", frame_source) | ("untell", object_name).
StagedOp = Tuple[str, str]


class Session:
    """One client's server-side state."""

    __slots__ = ("sid", "read_epoch", "in_flight", "overlay", "lock",
                 "_txn_name", "_txn_counter", "_staged_ops")

    def __init__(self, sid: str, read_epoch: int,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.sid = sid
        #: Serializes this session's mutable state (staged ops, overlay,
        #: read epoch).  Reentrant so the service can hold it across a
        #: whole operation while the methods below also take it.
        self.lock = make_rlock("server.session.lock")
        #: The commit sequence number this session's open transaction
        #: (or last acknowledged commit) read from.
        self.read_epoch = read_epoch  # guarded-by: lock
        #: Requests currently executing for this session (admission cap).
        self.in_flight = 0  # guarded-by: external: AdmissionController._cond
        self.overlay = WorkspaceStore(registry=registry)  # guarded-by: lock
        self._txn_name: Optional[str] = None  # guarded-by: lock
        self._txn_counter = 0  # guarded-by: lock
        self._staged_ops: List[StagedOp] = []  # guarded-by: lock

    # -- transaction staging ----------------------------------------------

    @property
    def in_transaction(self) -> bool:  # holds: lock
        return self._txn_name is not None

    def begin(self, read_epoch: int) -> None:
        """Open a staged transaction pinned to ``read_epoch``."""
        with self.lock:
            if self._txn_name is not None:
                raise SessionError(
                    f"session {self.sid!r} already has an open transaction"
                )
            self._txn_counter += 1
            name = f"txn{self._txn_counter}"
            self.overlay.add_workspace(name, active=True)
            self.overlay.set_current(name)
            self._txn_name = name
            self._staged_ops = []
            self.read_epoch = read_epoch

    def stage(self, kind: str, arg: str, keys: List[str]) -> int:
        """Stage one operation and record its write-set keys in the
        overlay workspace; returns how many ops are now staged."""
        with self.lock:
            if self._txn_name is None:
                raise SessionError(
                    f"session {self.sid!r} has no open transaction "
                    f"to stage into"
                )
            self._staged_ops.append((kind, arg))
            for key in keys:
                if key not in self.overlay:
                    self.overlay.create(individual(key))
            return len(self._staged_ops)

    def staged_ops(self) -> List[StagedOp]:
        """The staged operations, in staging order."""
        with self.lock:
            return list(self._staged_ops)

    def staged_keys(self) -> List[str]:
        """The write-set: every proposition key the staged ops touch."""
        with self.lock:
            if self._txn_name is None:
                return []
            return sorted(
                prop.pid
                for prop in self.overlay.propositions_in(self._txn_name)
            )

    def end_transaction(self) -> int:
        """Discard the overlay workspace (after commit or on abort);
        returns how many staged write-set entries were dropped."""
        with self.lock:
            if self._txn_name is None:
                raise SessionError(
                    f"session {self.sid!r} has no open transaction"
                )
            dropped = self.overlay.remove_workspace(self._txn_name)
            self._txn_name = None
            self._staged_ops = []
            return dropped


class SessionManager:
    """Open/resolve/close sessions, under a cap, thread-safely."""

    def __init__(self, metrics: Namespace, max_sessions: int = 64,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self._lock = make_lock("server.sessions.lock")
        self._sessions: Dict[str, Session] = {}  # guarded-by: _lock
        self._max_sessions = max_sessions
        self._next_sid = 1  # guarded-by: _lock
        self._overlay_registry = registry
        self._g_sessions = metrics.gauge("sessions")
        self._c_opened = metrics.counter("sessions_opened")
        self._c_closed = metrics.counter("sessions_closed")

    def open(self, read_epoch: int) -> Session:
        with self._lock:
            if len(self._sessions) >= self._max_sessions:
                raise SessionError(
                    f"session cap reached ({self._max_sessions}); "
                    f"close a session first"
                )
            sid = f"s{self._next_sid}"
            self._next_sid += 1
            session = Session(sid, read_epoch,
                              registry=self._overlay_registry)
            self._sessions[sid] = session
            self._g_sessions.set(len(self._sessions))
            self._c_opened.inc()
            return session

    def get(self, sid: Optional[str]) -> Session:
        if not isinstance(sid, str):
            raise SessionError("request carries no session id (send hello)")
        with self._lock:
            session = self._sessions.get(sid)
        if session is None:
            raise SessionError(f"unknown session {sid!r}")
        return session

    def close(self, sid: str) -> None:
        with self._lock:
            session = self._sessions.pop(sid, None)
            if session is None:
                raise SessionError(f"unknown session {sid!r}")
            self._g_sessions.set(len(self._sessions))
            self._c_closed.inc()
        with session.lock:
            if session.in_transaction:
                session.end_transaction()

    def invalidate_transactions(self) -> int:
        """Discard every open transaction's staged overlay; returns how
        many were dropped.  A supervised restart calls this while
        quiescing: epochs pinned against the pre-fault head cannot be
        honoured across the rebuild, so in-flight transactions fail
        (typed, retryable) rather than committing against the wrong
        history.  The sessions themselves survive — each client's next
        ``begin`` re-pins against the recovered head."""
        with self._lock:
            sessions = list(self._sessions.values())
        dropped = 0
        for session in sessions:
            with session.lock:
                if session.in_transaction:
                    session.end_transaction()
                    dropped += 1
        return dropped

    def close_all(self) -> None:
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
            self._g_sessions.set(0)
        for session in sessions:
            with session.lock:
                if session.in_transaction:
                    session.end_transaction()

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)
