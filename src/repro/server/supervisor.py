"""Supervised recovery: restart the service tier after a durability fault.

A durability fault — an fsync that raises, a disk that lied, a torn
batch — poisons the :class:`~repro.server.pipeline.CommitPipeline`:
"ack means durable" cannot be promised on top of state that may not
survive, so the pipeline refuses all further writes.  Without help that
is terminal.  :class:`ServiceSupervisor` is the help: it listens for
the poison, then runs the same recovery a process reboot would, in
place, while readers keep their typed errors instead of hung sockets:

1. **Quiesce** — the service flips to ``restarting`` (every request but
   ``ping`` fails fast with the retryable
   :class:`~repro.errors.ServerRestarting`), open transactions lose
   their staging (their pinned epochs cannot survive the rebuild), and
   the poisoned pipeline is closed, failing anything still queued.
2. **Re-establish durability** — the WAL file is truncated back to the
   pipeline's *durable watermark*: the byte offset covered by the last
   honest group fsync.  Everything at or below it was acknowledged;
   everything above it was applied-but-unacked (its submitters got a
   typed failure), so cutting it off is what makes "no unacked commit
   survives" true rather than aspirational.
3. **Rebuild** — a fresh :class:`~repro.propositions.wal.WalStore` is
   opened over clean IO (recovery replay, snapshot fallback and tail
   truncation all run here), a fresh
   :class:`~repro.conceptbase.ConceptBase` is built over it, and a
   successor pipeline is seeded with the predecessor's exported state:
   the monotonic commit sequence, the conflict watermarks, and the
   acked commit log with its idempotency-token results — so a client
   retrying a commit whose ack was lost in the fault gets exactly-once.
4. **Resume** — the service swaps the pair in under the write lock and
   serves again.  Mean time to recovery lands in
   ``server.supervisor.mttr_ms``.

Restarts are budgeted: a sliding window caps how many the supervisor
will attempt (each after a seeded, jittered exponential backoff); a
crash loop that exhausts the budget degrades the service to
*read-only* — reads serve the last recovered state, writes get the
typed :class:`~repro.errors.ServerReadOnly` — instead of flapping.

The supervisor deliberately catches ``BaseException`` around the old
store's teardown and the rebuild: a simulated process death
(:class:`~repro.faults.CrashPoint`) must not kill the supervisor
thread, because the supervisor *is* the reboot — it is the one piece of
the system modelled as living outside the crashed process.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Optional

from repro.atomicio import REAL_IO
from repro.conceptbase import ConceptBase
from repro.propositions.wal import WalStore


class ServiceSupervisor:
    """Watches one :class:`~repro.server.service.GKBMSService`, restarts
    it through WAL recovery when its pipeline poisons, and degrades to
    read-only when restarts themselves keep failing."""

    #: status gauge values (``server.supervisor.state``)
    _STATE = {"serving": 0, "restarting": 1, "read_only": 2}

    def __init__(self, service: "Any", *,
                 max_restarts: int = 5,
                 window: float = 60.0,
                 backoff_base: float = 0.02,
                 backoff_cap: float = 1.0,
                 seed: int = 0,
                 clock=time.monotonic,
                 sleep=time.sleep) -> None:
        self.service = service
        self.max_restarts = max_restarts
        self.window = window
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._rng = random.Random(seed)
        self._clock = clock
        self._sleep = sleep
        self._lock = threading.Lock()
        #: monotonic timestamps of recent restart attempts
        self._attempts: Deque[float] = deque()  # guarded-by: _lock
        self._recovering = False  # guarded-by: _lock
        self._thread: Optional[threading.Thread] = None  # guarded-by: _lock
        ns = service.registry.namespace("server").namespace("supervisor")
        self._c_faults = ns.counter("faults")
        self._c_restarts = ns.counter("restarts")
        self._c_recovered = ns.counter("recoveries")
        self._c_failed = ns.counter("failed_recoveries")
        self._c_degraded = ns.counter("read_only_degrades")
        self._h_mttr = ns.histogram("mttr_ms")
        self._g_state = ns.gauge("state")
        self._g_state.set(0)
        service.set_fault_listener(self._on_fault)

    # ------------------------------------------------------------------

    def _on_fault(self, fault: BaseException) -> None:
        """Pipeline poison callback (runs on the dying writer thread):
        hand off to a dedicated recovery thread and return — the writer
        still has submitters to wake."""
        self._c_faults.inc()
        with self._lock:
            if self._recovering:
                return
            self._recovering = True
            self._thread = threading.Thread(
                target=self._recover, args=(fault,),
                name="gkbms-supervisor", daemon=True,
            )
            self._thread.start()

    def join(self, timeout: float = 30.0) -> None:
        """Wait for an in-progress recovery to finish (tests/benches)."""
        with self._lock:
            thread = self._thread
        if thread is not None:
            thread.join(timeout)

    # ------------------------------------------------------------------

    def _budget_exhausted(self, now: float) -> bool:  # holds: _lock
        while self._attempts and now - self._attempts[0] > self.window:
            self._attempts.popleft()
        return len(self._attempts) >= self.max_restarts

    def _backoff(self, attempt_no: int) -> float:
        """Seeded jittered-exponential delay before restart ``n``."""
        raw = min(self._backoff_cap, self._backoff_base * (2 ** attempt_no))
        return raw * (0.5 + self._rng.random() / 2.0)

    def _recover(self, fault: BaseException) -> None:
        started = self._clock()
        service = self.service
        service.begin_restart()
        self._g_state.set(self._STATE["restarting"])
        attempt_no = 0
        while True:
            now = self._clock()
            with self._lock:
                if self._budget_exhausted(now):
                    break
                self._attempts.append(now)
            self._c_restarts.inc()
            self._sleep(self._backoff(attempt_no))
            attempt_no += 1
            try:
                self._restart_once()
            except BaseException:  # noqa: BLE001 - see module docstring
                # The rebuild itself died (possibly a CrashPoint from a
                # still-faulty IO, possibly corrupt state).  The
                # supervisor survives the simulated death and consults
                # its budget for another attempt.
                self._c_failed.inc()
                continue
            self._c_recovered.inc()
            self._h_mttr.observe((self._clock() - started) * 1000.0)
            self._g_state.set(self._STATE["serving"])
            with self._lock:
                self._recovering = False
            return
        # Budget exhausted: crash loop.  Stop flapping; keep serving
        # reads from whatever state the last (partial) recovery left.
        self._c_degraded.inc()
        service.degrade_read_only()
        self._g_state.set(self._STATE["read_only"])
        with self._lock:
            self._recovering = False

    def _restart_once(self) -> None:
        """One full quiesce→truncate→replay→rebuild→resume cycle."""
        service = self.service
        old_pipeline = service.pipeline
        try:
            old_pipeline.close(timeout=5.0)
        except BaseException:  # noqa: BLE001 - dying writer may re-raise
            pass
        state: Dict[str, Any] = old_pipeline.export_state()
        durable = old_pipeline.durable_offset
        old_store = service.cb.propositions.store
        if not isinstance(old_store, WalStore):
            # Memory-backed service: nothing on disk to recover; the
            # successor pipeline simply continues from the acked state.
            cb = ConceptBase(
                store=None, registry=service.registry,
                tracer=service._tracer,
            )
            self._replay_acked(cb, state)
            service.complete_restart(cb, state)
            return
        path = old_store.path
        policy = old_store.fsync_policy
        try:
            # The old handle belongs to the "crashed process"; its IO
            # may be a FaultyIO that raises CrashPoint on any touch.
            old_store.close()
        except BaseException:  # noqa: BLE001 - simulated dead process
            pass
        if durable is not None and REAL_IO.exists(path) \
                and REAL_IO.size(path) > durable:
            # Cut the log back to the last honest fsync: applied but
            # unacknowledged commits must not resurrect.
            REAL_IO.truncate(path, durable)
        store = WalStore(
            path, fsync=policy, io=REAL_IO,
            registry=service.registry, tracer=service._tracer,
        )
        cb = ConceptBase(
            store=store, registry=service.registry,
            tracer=service._tracer,
        )
        service.complete_restart(cb, state)

    @staticmethod
    def _replay_acked(cb: ConceptBase, state: Dict[str, Any]) -> None:
        """Rebuild a memory-backed base from the acked commit log (the
        WAL-backed path gets this for free from recovery replay)."""
        for _seq, _sid, ops in state.get("commit_log", []):
            with cb.transaction():
                for kind, arg in ops:
                    if kind == "tell":
                        cb.tell(arg)
                    elif kind == "untell":
                        cb.untell(arg)


__all__ = ["ServiceSupervisor"]
