"""The newline-delimited-JSON wire protocol.

One request or response per line, each a JSON object, UTF-8, ``\\n``
terminated — trivially streamable, debuggable with ``nc``, and the same
shape whether it crossed a socket or stayed in process (the
:class:`~repro.server.client.LocalClient` passes exactly these dicts).

Request frame::

    {"id": 7, "op": "tell", "session": "s1",
     "params": {"source": "TELL Doc9 IN Doc END"},
     "deadline_ms": 2000}

``id`` is echoed back verbatim; ``session`` is required for everything
except ``hello``/``ping``; ``deadline_ms`` is an optional *relative*
budget for admission + execution (a finite, non-boolean number — JSON
technically admits ``true`` and ``NaN``/``Infinity`` here, but both
would poison the deadline arithmetic, so validation refuses them).

**Versions.**  Protocol v1 is lockstep: one request, one response, in
order.  Protocol v2 makes the ``id`` a first-class correlation key —
a client may *pipeline* many requests on one connection and the server
may answer them out of order; reusing an id while it is still in
flight on the same connection is a typed :class:`ProtocolError`.  The
version is negotiated in ``hello``: the client sends
``params.protocol`` (the highest version it speaks, default 1) and the
server grants ``min(requested, PROTOCOL_VERSION)`` in the response —
so a v1 client that never sends ``params.protocol`` keeps exact
lockstep semantics against every server, old or new.

Write ops (``tell``/``untell``/``commit``) accept an optional
``params.token`` — a client-generated idempotency token.  The server
remembers the result of every *acknowledged* commit by token, so a
client that lost the ack (dropped connection, supervised restart) can
re-submit the same token and collect the original result instead of
applying twice.  Tokens must be unique per logical write; reusing one
returns the first write's result forever after.

Response frame::

    {"id": 7, "ok": true, "result": {...}}
    {"id": 7, "ok": false, "error": {"type": "ServerOverloaded",
                                     "message": "..."}}

``error.type`` is the exception class name from
:mod:`repro.errors`; clients re-raise the matching typed error, so
``except ServerOverloaded`` works identically against a local or remote
server.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Optional, Type

from repro import errors as _errors
from repro.errors import ProtocolError, ReproError

#: Highest protocol version this codebase speaks (see module docstring).
PROTOCOL_VERSION = 2

#: Frames above this are refused before parsing (a corrupt length is
#: indistinguishable from a hostile one).
MAX_FRAME = 1 << 20

#: Every operation the service dispatches.
OPS = (
    "hello", "bye", "ping",
    "tell", "untell", "ask", "ask_all", "query", "instances", "frame",
    "begin", "commit", "abort", "staged",
    "decide", "backtrack", "replay", "history", "versions",
    "explain", "stats", "summary",
)

#: One-line summaries for the README op table; every op MUST have one
#: (``render_op_table`` below regenerates the table, and a test holds
#: the README to its output, so the docs cannot drift from this tuple).
OP_SUMMARIES = {
    "hello": "open a session (negotiates the protocol version)",
    "bye": "close a session",
    "ping": "liveness probe (sessionless)",
    "tell": "assert a frame (autocommit, or staged inside begin)",
    "untell": "retract an object and everything referencing it",
    "ask": "evaluate a closed assertion",
    "ask_all": "witnesses of an exists-quantified assertion",
    "query": "fact-level query through the prover, rules included",
    "instances": "the extent of a class (optionally as-of a time)",
    "frame": "the frame grouped around one object",
    "begin": "open a snapshot-pinned transaction",
    "commit": "submit the staged ops (idempotency token supported)",
    "abort": "discard the staged ops",
    "staged": "inspect the session's staged ops",
    "decide": "record a design decision (tells/untells + ledger entry)",
    "backtrack": "retract a decision and its transitive consequents",
    "replay": "re-applicability test of a decision; reports drift",
    "history": "the decision ledger plus justification-graph edges",
    "versions": "versions/configurations derived from the ledger",
    "explain": "per-query counter attribution",
    "stats": "registry metrics snapshot",
    "summary": "census of the proposition base",
}


def render_op_table() -> str:
    """The README's protocol op table, regenerated from :data:`OPS`.

    >>> len(OPS) == len(OP_SUMMARIES)
    True
    >>> print(render_op_table().splitlines()[2])
    | `hello` | open a session (negotiates the protocol version) |
    """
    lines = ["| op | summary |", "| --- | --- |"]
    for op in OPS:
        lines.append(f"| `{op}` | {OP_SUMMARIES[op]} |")
    return "\n".join(lines)


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """One wire frame: compact JSON + newline."""
    data = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return data.encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one frame; typed errors for every malformation."""
    if len(line) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(line)} bytes exceeds {MAX_FRAME}")
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def validate_request(frame: Dict[str, Any]) -> Dict[str, Any]:
    """Shape-check a request frame (op known, params an object)."""
    op = frame.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request needs a string 'op'")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}")
    params = frame.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("'params' must be a JSON object")
    deadline = frame.get("deadline_ms")
    if deadline is not None:
        # bool is an int subclass, so `deadline_ms: true` would slip
        # through an isinstance check and compute a 1ms budget; and
        # Python's json module happily parses NaN/Infinity, either of
        # which poisons every deadline comparison downstream.
        if isinstance(deadline, bool) \
                or not isinstance(deadline, (int, float)):
            raise ProtocolError("'deadline_ms' must be a number")
        if not math.isfinite(deadline):
            raise ProtocolError("'deadline_ms' must be finite")
    return frame


def negotiate_protocol(params: Dict[str, Any]) -> int:
    """The protocol version granted to a ``hello`` carrying ``params``.

    Clients request the highest version they speak via
    ``params.protocol`` (absent = 1, the lockstep original); the grant
    is ``min(requested, PROTOCOL_VERSION)``, so both sides always agree
    on a version both implement."""
    requested = params.get("protocol", 1)
    if isinstance(requested, bool) or not isinstance(requested, int):
        raise ProtocolError("'protocol' must be an integer version")
    if requested < 1:
        raise ProtocolError(f"unsupported protocol version {requested}")
    return min(requested, PROTOCOL_VERSION)


def ok_response(request_id: Any, result: Dict[str, Any]) -> Dict[str, Any]:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: Any, exc: BaseException) -> Dict[str, Any]:
    """Map an exception onto the wire error shape."""
    name = type(exc).__name__ if isinstance(exc, ReproError) else "InternalError"
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": name, "message": str(exc)},
    }


def exception_for(error: Dict[str, Any]) -> ReproError:
    """Rebuild the typed exception a wire error describes (client side).

    Unknown types degrade to :class:`~repro.errors.ServerError` so a
    newer server never crashes an older client with an unmappable name.
    """
    name = str(error.get("type", "ServerError"))
    message = str(error.get("message", ""))
    candidate: Optional[Type[BaseException]] = getattr(_errors, name, None)
    if (
        candidate is None
        or not isinstance(candidate, type)
        or not issubclass(candidate, ReproError)
    ):
        return _errors.ServerError(f"{name}: {message}")
    try:
        return candidate(message)
    except Exception:
        # Errors with structured constructors (diagnostics lists, ...)
        # degrade to the base type rather than failing to deserialize.
        return _errors.ServerError(f"{name}: {message}")
