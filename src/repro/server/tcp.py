"""The TCP transport: a threaded socket server speaking the protocol.

One thread per connection (the service's admission controller, not the
transport, bounds concurrency), newline-delimited JSON frames in both
directions.  All knowledge-base semantics live in
:class:`~repro.server.service.GKBMSService`; this module only frames
bytes, counts protocol-level failures (``server.protocol_errors``) and
answers malformed lines with typed wire errors instead of dropping the
connection.
"""

from __future__ import annotations

import socketserver
import threading
from typing import Any, Tuple

from repro.errors import ProtocolError, ServerError
from repro.server.protocol import MAX_FRAME, decode_frame, encode_frame, error_response
from repro.server.service import GKBMSService


class _ConnectionHandler(socketserver.StreamRequestHandler):
    """One client connection: read a frame, answer a frame, repeat."""

    server: "GKBMSServer"

    def handle(self) -> None:
        self.server.c_connections.inc()
        while True:
            try:
                line = self.rfile.readline(MAX_FRAME + 2)
            except (OSError, ValueError):
                break
            if not line:
                break
            if not line.endswith(b"\n") and len(line) > MAX_FRAME:
                # readline() hit its size cap mid-line: an oversized
                # frame.  Consume the rest of the line so the stream
                # stays framed — otherwise the unread tail would be
                # parsed as spurious "frames" — then answer with a
                # typed error.
                if not self._skip_to_newline():
                    break
                self.server.c_protocol_errors.inc()
                response = error_response(None, ProtocolError(
                    f"frame exceeds {MAX_FRAME} bytes"
                ))
            else:
                try:
                    request = decode_frame(line)
                except ProtocolError as exc:
                    self.server.c_protocol_errors.inc()
                    response = error_response(None, exc)
                else:
                    response = self.server.service.handle(request)
            try:
                payload = encode_frame(response)
            except (TypeError, ValueError) as exc:
                # A handler produced a non-serializable result: answer
                # with a typed error rather than tearing the stream.
                self.server.c_protocol_errors.inc()
                response = error_response(
                    response.get("id"),
                    ServerError(f"unserializable response: {exc}"),
                )
                payload = encode_frame(response)
            try:
                self.wfile.write(payload)
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError, OSError):
                break

    def _skip_to_newline(self) -> bool:
        """Discard input up to the next newline; False if the stream
        ended (or died) first, so the caller drops the connection."""
        try:
            while True:
                rest = self.rfile.readline(MAX_FRAME + 2)
                if not rest:
                    return False
                if rest.endswith(b"\n"):
                    return True
        except (OSError, ValueError):
            return False


class GKBMSServer(socketserver.ThreadingTCPServer):
    """``python -m repro.server`` — the GKBMS over a socket."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: Tuple[str, int],
                 service: GKBMSService) -> None:
        super().__init__(address, _ConnectionHandler)
        self.service = service
        ns = service.registry.namespace("server")
        self.c_connections = ns.counter("connections")
        self.c_protocol_errors = ns.counter("protocol_errors")

    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    def serve_in_thread(self) -> threading.Thread:
        """Serve from a daemon thread; returns it (for tests/tools)."""
        thread = threading.Thread(
            target=self.serve_forever, name="gkbms-tcp-server", daemon=True
        )
        thread.start()
        return thread

    def close(self) -> None:
        """Stop accepting, close the socket, stop the service."""
        self.shutdown()
        self.server_close()
        self.service.close()

    def drain(self) -> None:
        """Graceful shutdown: stop accepting, then let the service
        flush its pipeline behind a final checkpoint and close the WAL
        cleanly — the SIGTERM path, as opposed to dying mid-batch.

        ``shutdown()`` blocks until ``serve_forever`` returns, so it
        must be reached from a different thread than the serving loop
        (the signal handler in ``__main__`` spawns one)."""
        self.shutdown()
        self.server_close()
        self.service.drain()

    def __enter__(self) -> "GKBMSServer":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.close()
        return False
