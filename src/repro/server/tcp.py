"""The TCP transports: threaded lockstep and asyncio pipelined.

Two servers speak the same NDJSON protocol over a socket:

- :class:`GKBMSServer` — the original thread-per-connection transport.
  One thread per client, lockstep framing (read a frame, answer a
  frame).  Simple, and still what ``serve`` gives you by default.
- :class:`AsyncGKBMSServer` — a single asyncio event loop holding
  thousands of idle sessions.  Clients that negotiate protocol v2 in
  ``hello`` may *pipeline*: many requests in flight on one connection,
  responses matched by ``id`` and possibly out of order.  Service
  calls bridge to the existing synchronous
  :class:`~repro.server.service.GKBMSService` through a bounded
  executor sized to the admission controller's in-flight cap — the
  commit pipeline keeps its dedicated writer thread; only the I/O
  plane is event-driven.

**Backpressure.**  The async server never queues unboundedly.  Before
dispatching a frame it takes an admission slot *non-blockingly*
(:meth:`~repro.server.admission.AdmissionController.try_admit`); when
the controller is at capacity — globally, or because this session is
at its per-session cap — the connection's read loop parks instead,
which means the server simply *stops reading that socket* (kernel
buffers fill, TCP pushes back on the client) and resumes when a slot
frees (the controller's resume callback wakes parked readers).  Time
spent parked counts against the request's deadline budget, and parked
requests are bounded by the controller's ``max_waiting`` exactly like
blocked threads are.

All knowledge-base semantics live in ``GKBMSService``; these classes
only frame bytes, count protocol-level failures
(``server.protocol_errors``, ``server.truncated_frames``) and answer
malformed lines with typed wire errors instead of dropping the
connection.  A *truncated* final line (EOF with no newline — a client
that died mid-request) is the exception: it is dropped unexecuted, and
unanswerable anyway.
"""

from __future__ import annotations

import asyncio
import socket
import socketserver
import threading
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from repro.errors import (
    DeadlineExceeded,
    ProtocolError,
    ServerError,
    ServerOverloaded,
)
from repro.server.protocol import (
    MAX_FRAME,
    decode_frame,
    encode_frame,
    error_response,
    validate_request,
)
from repro.server.service import _SESSIONLESS, GKBMSService
from repro.server.session import Session


class _ConnectionHandler(socketserver.StreamRequestHandler):
    """One client connection: read a frame, answer a frame, repeat."""

    server: "GKBMSServer"

    def handle(self) -> None:
        self.server.c_connections.inc()
        while True:
            try:
                line = self.rfile.readline(MAX_FRAME + 2)
            except (OSError, ValueError):
                break
            if not line:
                break
            if not line.endswith(b"\n"):
                if len(line) > MAX_FRAME:
                    # readline() hit its size cap mid-line: an oversized
                    # frame.  Consume the rest of the line so the stream
                    # stays framed — otherwise the unread tail would be
                    # parsed as spurious "frames" — then answer with a
                    # typed error.
                    if not self._skip_to_newline():
                        break
                    self.server.c_protocol_errors.inc()
                    response = error_response(None, ProtocolError(
                        f"frame exceeds {MAX_FRAME} bytes"
                    ))
                else:
                    # EOF mid-line: the client died before finishing
                    # the frame.  A truncated request must be dropped,
                    # never decoded and half-executed — even if the
                    # fragment happens to parse as JSON.
                    self.server.c_truncated.inc()
                    break
            else:
                try:
                    request = decode_frame(line)
                except ProtocolError as exc:
                    self.server.c_protocol_errors.inc()
                    response = error_response(None, exc)
                else:
                    response = self.server.service.handle(request)
            try:
                payload = encode_frame(response)
            except (TypeError, ValueError) as exc:
                # A handler produced a non-serializable result: answer
                # with a typed error rather than tearing the stream.
                self.server.c_protocol_errors.inc()
                response = error_response(
                    response.get("id"),
                    ServerError(f"unserializable response: {exc}"),
                )
                payload = encode_frame(response)
            try:
                self.wfile.write(payload)
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError, OSError):
                break

    def _skip_to_newline(self) -> bool:
        """Discard input up to the next newline; False if the stream
        ended (or died) first, so the caller drops the connection."""
        try:
            while True:
                rest = self.rfile.readline(MAX_FRAME + 2)
                if not rest:
                    return False
                if rest.endswith(b"\n"):
                    return True
        except (OSError, ValueError):
            return False


class GKBMSServer(socketserver.ThreadingTCPServer):
    """``python -m repro.server`` — the GKBMS over a socket."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: Tuple[str, int],
                 service: GKBMSService) -> None:
        super().__init__(address, _ConnectionHandler)
        self.service = service
        ns = service.registry.namespace("server")
        self.c_connections = ns.counter("connections")
        self.c_protocol_errors = ns.counter("protocol_errors")
        self.c_truncated = ns.counter("truncated_frames")

    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    def serve_in_thread(self) -> threading.Thread:
        """Serve from a daemon thread; returns it (for tests/tools)."""
        thread = threading.Thread(
            target=self.serve_forever, name="gkbms-tcp-server", daemon=True
        )
        thread.start()
        return thread

    def close(self) -> None:
        """Stop accepting, close the socket, stop the service."""
        self.shutdown()
        self.server_close()
        self.service.close()

    def drain(self) -> None:
        """Graceful shutdown: stop accepting, then let the service
        flush its pipeline behind a final checkpoint and close the WAL
        cleanly — the SIGTERM path, as opposed to dying mid-batch.

        ``shutdown()`` blocks until ``serve_forever`` returns, so it
        must be reached from a different thread than the serving loop
        (the signal handler in ``__main__`` spawns one)."""
        self.shutdown()
        self.server_close()
        self.service.drain()

    def __enter__(self) -> "GKBMSServer":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.close()
        return False


# ----------------------------------------------------------------------
# The asyncio transport
# ----------------------------------------------------------------------


#: Sentinels the async framer returns instead of a line.
_OVERSIZED = object()   # line exceeded MAX_FRAME; stream resynced past it
_TRUNCATED = object()   # EOF cut the final line mid-frame


class _AsyncConnection:
    """Per-connection pipelining state, confined to the event loop."""

    __slots__ = ("reader", "writer", "buf", "wlock", "inflight",
                 "slot_waiters", "pipelined", "session")

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        #: Frame-assembly buffer (explicit framing, not readline: the
        #: oversized and truncated-EOF cases need deterministic
        #: handling that StreamReader's limit machinery does not give).
        self.buf = bytearray()
        #: Serializes response writes from concurrent request tasks.
        self.wlock = asyncio.Lock()
        #: id-key -> in-flight request task (protocol v2 correlation).
        self.inflight: Dict[str, "asyncio.Task[None]"] = {}
        #: Futures of a read loop parked on the pipeline-depth cap.
        self.slot_waiters: List["asyncio.Future[None]"] = []
        #: Granted protocol >= 2 (set by the hello response).
        self.pipelined = False
        #: The session the connection last spoke for (resume hint only).
        self.session: Optional[Session] = None

    def notify_slot(self) -> None:
        waiters, self.slot_waiters = self.slot_waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)


class AsyncGKBMSServer:
    """The GKBMS over asyncio: one event loop, pipelined protocol v2.

    Mirrors the :class:`GKBMSServer` surface exactly — ``host``/
    ``port``, ``serve_forever``/``shutdown``/``server_close``,
    ``serve_in_thread``, ``close``/``drain``, context manager — so the
    CLI, the drain signal handlers and the chaos harness drive either
    transport unchanged.  The listening socket is bound eagerly in the
    constructor, so the address is known before the loop runs.
    """

    #: Per-connection cap on pipelined requests in flight; past it the
    #: read loop parks until one completes (bounds task memory even
    #: when admission still has global headroom).
    MAX_PIPELINE = 64

    #: Seconds drain/close waits for in-flight request tasks to finish
    #: before cancelling what is left.
    SHUTDOWN_GRACE = 5.0

    def __init__(self, address: Tuple[str, int], service: GKBMSService,
                 max_pipeline: Optional[int] = None) -> None:
        self.service = service
        self._sock = socket.create_server(address, backlog=1024)
        self._max_pipeline = max_pipeline or self.MAX_PIPELINE
        ns = service.registry.namespace("server")
        self.c_connections = ns.counter("connections")
        self.c_protocol_errors = ns.counter("protocol_errors")
        self.c_truncated = ns.counter("truncated_frames")
        a_ns = ns.namespace("async")
        self.c_pauses = a_ns.counter("pauses")
        self.c_pipelined = a_ns.counter("pipelined_requests")
        self.g_open = a_ns.gauge("open_connections")
        # The service executes on this pool; sizing it to the admission
        # cap means an admitted request never queues behind the pool.
        self._executor = ThreadPoolExecutor(
            max_workers=max(4, service.admission.max_in_flight),
            thread_name_prefix="gkbms-async-exec",
        )
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None  # guarded-by: <atomic>
        # Everything below is event-loop confined.
        self._stop_aio: Optional[asyncio.Event] = None  # guarded-by: external: event loop
        self._resume_waiters: List["asyncio.Future[None]"] = []  # guarded-by: external: event loop
        self._request_tasks: set = set()  # guarded-by: external: event loop
        self._conn_tasks: set = set()  # guarded-by: external: event loop
        self._detach_resume: Optional[Callable[[], None]] = None  # guarded-by: external: event loop

    # -- lifecycle ---------------------------------------------------------

    @property
    def host(self) -> str:
        return self._sock.getsockname()[0]

    @property
    def port(self) -> int:
        return self._sock.getsockname()[1]

    def serve_forever(self) -> None:
        """Run the event loop in the calling thread until
        :meth:`shutdown` (same contract as the threaded server)."""
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            try:
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
            finally:
                self._loop = None
                loop.close()
                self._started.set()  # never leave a starter waiting
                self._stopped.set()

    def serve_in_thread(self) -> threading.Thread:
        """Serve from a daemon thread; blocks until the loop accepts."""
        thread = threading.Thread(
            target=self.serve_forever, name="gkbms-async-server", daemon=True
        )
        thread.start()
        self._started.wait(10.0)
        return thread

    def shutdown(self) -> None:
        """Stop the loop and block until ``serve_forever`` returns
        (mirrors ``socketserver.BaseServer.shutdown``)."""
        loop = self._loop
        if loop is not None and not self._stopped.is_set():
            try:
                loop.call_soon_threadsafe(self._request_stop)
            except RuntimeError:
                pass  # loop already closed under us
            self._stopped.wait(30.0)

    def _request_stop(self) -> None:
        if self._stop_aio is not None:
            self._stop_aio.set()

    def server_close(self) -> None:
        """Close the listening socket (idempotent; asyncio owns and
        closes it after serving, so this matters pre-serve only)."""
        try:
            self._sock.close()
        except OSError:
            pass
        self._executor.shutdown(wait=False)

    def close(self) -> None:
        """Stop accepting, close the socket, stop the service."""
        self.shutdown()
        self.server_close()
        self.service.close()

    def drain(self) -> None:
        """Graceful shutdown: stop accepting, let in-flight requests
        finish (bounded), then flush the pipeline behind a final
        checkpoint and close the WAL — identical SIGTERM semantics to
        the threaded server."""
        self.shutdown()
        self.server_close()
        self.service.drain()

    def __enter__(self) -> "AsyncGKBMSServer":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.close()
        return False

    # -- the loop ----------------------------------------------------------

    async def _main(self) -> None:
        self._stop_aio = asyncio.Event()
        self._detach_resume = self.service.admission.add_resume_callback(
            self._resume_from_any_thread
        )
        server = await asyncio.start_server(
            self._on_connection, sock=self._sock,
        )
        self._started.set()
        try:
            await self._stop_aio.wait()
        finally:
            if self._detach_resume is not None:
                self._detach_resume()
            server.close()
            await server.wait_closed()
            await self._settle_connections()

    async def _settle_connections(self) -> None:
        """Drain semantics: give accepted requests a bounded grace to
        answer, then cancel the readers and whatever is left."""
        if self._request_tasks:
            await asyncio.wait(
                list(self._request_tasks), timeout=self.SHUTDOWN_GRACE
            )
        for task in list(self._conn_tasks) + list(self._request_tasks):
            task.cancel()
        remaining = list(self._conn_tasks) + list(self._request_tasks)
        if remaining:
            await asyncio.gather(*remaining, return_exceptions=True)

    def _resume_from_any_thread(self) -> None:
        """Admission released a slot: wake parked readers.  Runs on
        whatever thread released (executor, writer, loop)."""
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(self._notify_resume)
        except RuntimeError:
            pass  # shutting down

    def _notify_resume(self) -> None:
        waiters, self._resume_waiters = self._resume_waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)

    async def _wait_resume(self, timeout: float) -> None:
        loop = asyncio.get_running_loop()
        waiter: "asyncio.Future[None]" = loop.create_future()
        self._resume_waiters.append(waiter)
        try:
            await asyncio.wait_for(waiter, timeout)
        except asyncio.TimeoutError:
            pass
        finally:
            if waiter in self._resume_waiters:
                self._resume_waiters.remove(waiter)

    # -- connections -------------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self.c_connections.inc()
        self.g_open.inc()
        conn = _AsyncConnection(reader, writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._read_loop(conn)
        except asyncio.CancelledError:
            pass
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self.g_open.dec()
            try:
                writer.close()
            except (OSError, RuntimeError):
                pass

    async def _read_loop(self, conn: _AsyncConnection) -> None:
        while True:
            frame = await self._next_frame(conn)
            if frame is None:
                return
            if frame is _TRUNCATED:
                # EOF cut the final line mid-frame: the client died
                # mid-request.  Same rule as the threaded transport —
                # drop it unexecuted.
                self.c_truncated.inc()
                return
            if frame is _OVERSIZED:
                self.c_protocol_errors.inc()
                await self._send(conn, error_response(None, ProtocolError(
                    f"frame exceeds {MAX_FRAME} bytes"
                )))
                continue
            await self._dispatch_frame(conn, frame)

    async def _next_frame(self, conn: _AsyncConnection) -> Any:
        """One complete line from the stream, or a sentinel:
        ``_OVERSIZED`` (line dropped, stream resynced past its
        newline), ``_TRUNCATED`` (EOF mid-line), ``None`` (clean EOF,
        or EOF inside an oversized line)."""
        buf = conn.buf
        while True:
            nl = buf.find(b"\n")
            if nl >= 0:
                line = bytes(buf[:nl + 1])
                del buf[:nl + 1]
                if nl > MAX_FRAME:
                    return _OVERSIZED
                return line
            if len(buf) > MAX_FRAME:
                # Inside an oversized line: discard until its newline
                # so the unread tail is never parsed as spurious
                # frames.
                del buf[:]
                while True:
                    chunk = await conn.reader.read(65536)
                    if not chunk:
                        return None
                    cut = chunk.find(b"\n")
                    if cut >= 0:
                        buf.extend(chunk[cut + 1:])
                        return _OVERSIZED
            chunk = await conn.reader.read(65536)
            if not chunk:
                return _TRUNCATED if buf else None
            buf.extend(chunk)

    async def _dispatch_frame(self, conn: _AsyncConnection,
                              line: bytes) -> None:
        try:
            frame = decode_frame(line)
        except ProtocolError as exc:
            self.c_protocol_errors.inc()
            await self._send(conn, error_response(None, exc))
            return
        rid = frame.get("id")
        service = self.service
        try:
            validate_request(frame)
            op = frame["op"]
            session: Optional[Session] = None
            if op not in _SESSIONLESS:
                session = service.sessions.get(frame.get("session"))
        except Exception as exc:  # noqa: BLE001 - typed reject
            await self._send(conn, service.reject(rid, exc))
            return
        key: Optional[str] = None
        if conn.pipelined:
            key = _id_key(rid)
            if key in conn.inflight:
                # Protocol v2: the id is the correlation key; reusing
                # one while it is still in flight would make the two
                # responses indistinguishable.
                self.c_protocol_errors.inc()
                await self._send(conn, error_response(rid, ProtocolError(
                    f"request id {rid!r} is already in flight on this "
                    f"connection"
                )))
                return
            # Pipeline-depth backpressure: stop reading this socket
            # until a slot frees.
            while len(conn.inflight) >= self._max_pipeline:
                self.c_pauses.inc()
                loop = asyncio.get_running_loop()
                waiter: "asyncio.Future[None]" = loop.create_future()
                conn.slot_waiters.append(waiter)
                await waiter
        # Admission, non-blockingly: at capacity (global or this
        # session's cap) the read loop parks — the server stops
        # reading this socket — and resumes when a slot frees.
        deadline = service.admission.deadline_from(frame.get("deadline_ms"))
        try:
            await self._admit(session, deadline)
        except (ServerOverloaded, DeadlineExceeded) as exc:
            await self._send(conn, service.reject(rid, exc))
            return
        conn.session = session
        runner = self._run_request(conn, frame, session, deadline, key)
        if conn.pipelined:
            self.c_pipelined.inc()
            task = asyncio.get_running_loop().create_task(runner)
            if key is not None:
                conn.inflight[key] = task
            self._request_tasks.add(task)
            task.add_done_callback(self._request_tasks.discard)
        else:
            # Protocol v1: lockstep — answer before reading the next
            # frame, exactly like the threaded transport.
            await runner

    async def _admit(self, session: Optional[Session],
                     deadline: Optional[float]) -> None:
        admission = self.service.admission
        if admission.try_admit(session, deadline):
            return
        self.c_pauses.inc()
        give_up = admission.wait_budget(deadline)
        with admission.parked():
            while True:
                remaining = give_up - admission.clock()
                if remaining <= 0:
                    raise admission.wait_expired(deadline, give_up)
                await self._wait_resume(remaining)
                if admission.try_admit(session, deadline):
                    return

    async def _run_request(self, conn: _AsyncConnection,
                           frame: Dict[str, Any],
                           session: Optional[Session],
                           deadline: Optional[float],
                           key: Optional[str]) -> None:
        service = self.service
        try:
            loop = asyncio.get_running_loop()
            try:
                response = await loop.run_in_executor(
                    self._executor,
                    partial(service.handle, frame,
                            admitted=True, deadline=deadline),
                )
            except RuntimeError as exc:
                # Executor already shut down (teardown race): answer
                # typed rather than tearing the stream.
                response = error_response(
                    frame.get("id"), ServerError(f"server stopping: {exc}")
                )
            if frame.get("op") == "hello" and response.get("ok"):
                granted = (response.get("result") or {}).get("protocol", 1)
                conn.pipelined = bool(
                    isinstance(granted, int) and granted >= 2
                )
            await self._send(conn, response)
        finally:
            if key is not None:
                conn.inflight.pop(key, None)
                conn.notify_slot()
            service.admission.release(session)

    async def _send(self, conn: _AsyncConnection,
                    response: Dict[str, Any]) -> None:
        try:
            payload = encode_frame(response)
        except (TypeError, ValueError) as exc:
            self.c_protocol_errors.inc()
            payload = encode_frame(error_response(
                response.get("id"),
                ServerError(f"unserializable response: {exc}"),
            ))
        try:
            async with conn.wlock:
                conn.writer.write(payload)
                await conn.writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError,
                RuntimeError):
            pass  # the client is gone; the read loop will see EOF


def _id_key(rid: Any) -> str:
    """A canonical, hashable key for a JSON request id (ids are echoed
    verbatim, so any JSON value is legal on the wire)."""
    import json
    try:
        return json.dumps(rid, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        return repr(rid)


#: Awaitable alias kept for typing clarity in callers.
RequestRunner = Awaitable[None]
