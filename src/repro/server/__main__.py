"""``python -m repro.server`` — serve, load-test, or smoke-check.

Sub-commands::

    serve    run the GKBMS service on a TCP port (optionally WAL-backed)
    loadgen  drive a running server with the concurrent workload
    smoke    self-contained check: in-process server + TCP load, gated

``smoke`` is what CI runs: it starts a WAL-backed server on an
ephemeral port, drives the seeded concurrent workload over real
sockets, and fails unless there were zero protocol errors, zero
unexpected request errors, and the commit pipeline actually batched
(non-zero ``server.commit.batch_size`` samples and fewer WAL fsyncs
than committed groups would need individually).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import tempfile
import threading
from typing import Any, Dict, Optional

from repro.analysis.concurrency import lockdep
from repro.conceptbase import ConceptBase
from repro.obs.logging import StreamSink, log, set_sink
from repro.obs.metrics import MetricsRegistry
from repro.propositions.wal import WalStore
from repro.scenario.workload import ConcurrentLoadGenerator
from repro.server.client import PipelinedTCPClient, TCPClient
from repro.server.service import GKBMSService
from repro.server.supervisor import ServiceSupervisor
from repro.server.tcp import AsyncGKBMSServer, GKBMSServer


def _build_service(args: argparse.Namespace,
                   wal_path: Optional[str]) -> GKBMSService:
    registry = MetricsRegistry()
    store = None
    if wal_path:
        store = WalStore(wal_path, fsync=args.fsync, registry=registry)
    cb = ConceptBase(store=store, registry=registry)
    return GKBMSService(
        cb,
        check_consistency=args.check_consistency,
        max_batch=args.max_batch,
        batch_window=args.batch_window,
        max_in_flight=args.max_in_flight,
    )


def _make_server(args: argparse.Namespace, address: Any,
                 service: GKBMSService) -> Any:
    """Pick the transport: asyncio pipelined (``--async``) or the
    threaded lockstep original.  Both expose the same surface, so
    everything downstream — drain handlers, smoke, loadgen — is
    transport-blind."""
    if getattr(args, "use_async", False):
        return AsyncGKBMSServer(address, service)
    return GKBMSServer(address, service)


def _install_drain_handlers(server: Any) -> threading.Event:
    """SIGTERM/SIGINT → graceful drain: stop accepting, flush the
    pipeline behind a final checkpoint, close the WAL.

    ``shutdown()`` blocks until ``serve_forever`` returns, and the
    signal handler runs *on* the serving thread — calling it directly
    would deadlock, so the handler hands the drain to a helper thread
    and returns immediately."""
    draining = threading.Event()

    def _drain(signum: int, _frame: Any) -> None:
        if draining.is_set():
            return  # second signal while already draining: ignore
        draining.set()
        log("info", f"signal {signum}: draining (stop accepting, flush "
            f"pipeline, final checkpoint, close WAL)",
            logger="repro.server")
        # shutdown() only *unblocks* serve_forever; the main thread then
        # runs the actual drain, so process exit cannot cut it short.
        threading.Thread(
            target=server.shutdown, name="gkbms-drain", daemon=True
        ).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    return draining


def _cmd_serve(args: argparse.Namespace) -> int:
    service = _build_service(args, args.wal)
    supervisor = None
    if args.supervise:
        supervisor = ServiceSupervisor(service)
    server = _make_server(args, (args.host, args.port), service)
    draining = _install_drain_handlers(server)
    log("info", f"GKBMS serving on {server.host}:{server.port} "
        f"(wal={args.wal or 'none'}, batch={args.max_batch}, "
        f"supervised={supervisor is not None}, "
        f"transport={'asyncio' if args.use_async else 'threaded'})",
        logger="repro.server")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if draining.is_set():
            server.server_close()
            service.drain()
            log("info", "drained; exiting", logger="repro.server")
        else:
            server.close()
    return 0


def _run_load(host: str, port: int,
              args: argparse.Namespace) -> Dict[str, Any]:
    # Against the async server, drive protocol v2 so the smoke
    # exercises the pipelined plane end to end.
    client_cls = (PipelinedTCPClient if getattr(args, "use_async", False)
                  else TCPClient)
    generator = ConcurrentLoadGenerator(
        client_factory=lambda: client_cls(host, port),
        threads=args.threads,
        ops_per_thread=args.ops,
        seed=args.seed,
        write_ratio=args.write_ratio,
        transaction_ratio=args.txn_ratio,
        decision_ratio=args.decision_ratio,
    )
    return generator.run().to_json()


def _cmd_loadgen(args: argparse.Namespace) -> int:
    stats = _run_load(args.host, args.port, args)
    log("info", json.dumps(stats, indent=2, sort_keys=True),
        logger="repro.server")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(stats, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0 if stats["unexpected_errors"] == 0 else 1


def _cmd_smoke(args: argparse.Namespace) -> int:
    sanitizer = lockdep.manager()  # armed iff REPRO_LOCKDEP is set
    with tempfile.TemporaryDirectory(prefix="gkbms-smoke-") as tmp:
        service = _build_service(args, os.path.join(tmp, "smoke.wal"))
        if args.supervise:
            ServiceSupervisor(service)
        with _make_server(args, ("127.0.0.1", 0), service) as server:
            server.serve_in_thread()
            load = _run_load(server.host, server.port, args)
            snapshot = service.registry.snapshot()
    batch = snapshot.get("server.commit.batch_size") or {}
    committed = snapshot.get("server.commit.committed", 0)
    fsyncs = snapshot.get("wal.fsyncs", 0)
    protocol_errors = snapshot.get("server.protocol_errors", 0)
    report = {
        "load": load,
        "committed": committed,
        "conflicts": snapshot.get("server.commit.conflicts", 0),
        "batch_samples": batch.get("count", 0),
        "batch_mean": batch.get("mean", 0.0),
        "wal_fsyncs": fsyncs,
        "wal_group_batches": snapshot.get("wal.group_batches", 0),
        "protocol_errors": protocol_errors,
        "decisions_recorded": snapshot.get("decisions.recorded", 0),
        "decisions_backtracked": snapshot.get("decisions.backtracked", 0),
    }
    failures = []
    if load["unexpected_errors"]:
        failures.append(f"{load['unexpected_errors']} unexpected "
                        f"request errors")
    if args.decision_ratio and not report["decisions_recorded"]:
        failures.append("decision traffic requested but "
                        "decisions.recorded stayed 0")
    if protocol_errors:
        failures.append(f"{protocol_errors} protocol errors")
    if not batch.get("count"):
        failures.append("no server.commit.batch_size samples recorded")
    if committed and fsyncs >= committed + 2:
        # Group commit must not fsync per-commit; the +2 covers boot
        # (recovery checkpoint) and priming.
        failures.append(
            f"group commit ineffective: {fsyncs} fsyncs for "
            f"{committed} commits"
        )
    if sanitizer is not None:
        cycles = sanitizer.cycles()
        report["lockdep"] = {
            "order_edges": len(sanitizer.edges()),
            "cycles": [" → ".join(c.nodes) for c in cycles],
        }
        for cycle in cycles:
            failures.append(
                "lockdep cycle: " + " → ".join(cycle.nodes)
                + f" ({cycle.witness})"
            )
    report["failures"] = failures
    log("info", json.dumps(report, indent=2, sort_keys=True),
        logger="repro.server")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 1 if failures else 0


def _add_service_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--fsync", choices=("commit", "always"),
                        default="commit", help="WAL fsync policy")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="max commits per group-commit batch")
    parser.add_argument("--batch-window", type=float, default=0.002,
                        help="seconds the writer waits for stragglers")
    parser.add_argument("--max-in-flight", type=int, default=32,
                        help="admission cap on concurrent requests")
    parser.add_argument("--check-consistency", action="store_true",
                        help="enforce constraints at commit")
    parser.add_argument("--supervise", action="store_true",
                        help="attach a ServiceSupervisor: restart "
                             "through WAL recovery on durability "
                             "faults instead of refusing all writes")
    parser.add_argument("--async", dest="use_async", action="store_true",
                        help="serve on the asyncio pipelined transport "
                             "(protocol v2) instead of a thread per "
                             "connection")


def _add_load_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--ops", type=int, default=40,
                        help="operations per worker thread")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--write-ratio", type=float, default=0.5)
    parser.add_argument("--txn-ratio", type=float, default=0.5)
    parser.add_argument("--decision-ratio", type=float, default=0.0,
                        help="fraction of ops driving the decision "
                             "ledger (decide/backtrack)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the run report as JSON")


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="The concurrent GKBMS service layer.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the TCP server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8731)
    serve.add_argument("--wal", metavar="PATH", default=None,
                       help="back the knowledge base with this WAL file")
    _add_service_options(serve)

    loadgen = sub.add_parser("loadgen", help="drive a running server")
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8731)
    _add_load_options(loadgen)

    smoke = sub.add_parser(
        "smoke", help="start a server, load it, gate the outcome"
    )
    _add_service_options(smoke)
    _add_load_options(smoke)

    args = parser.parse_args(argv)
    previous = set_sink(StreamSink())
    try:
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "loadgen":
            return _cmd_loadgen(args)
        return _cmd_smoke(args)
    finally:
        set_sink(previous)


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
