"""The GKBMS service: one request handler, every transport.

:class:`GKBMSService` owns a :class:`~repro.conceptbase.ConceptBase`
and serves the wire-protocol operations against it concurrently:

- *reads* (``ask``/``ask_all``/``query``/``instances``/``frame``) run
  under the shared side of a writer-preferring
  :class:`~repro.server.locks.ReadWriteLock`, inside an epoch-pinned
  :meth:`~repro.propositions.processor.PropositionProcessor.read_transaction`
  scope — many readers at once, and every read carries a structural
  witness that no commit tore it (``server.torn_reads`` counts any that
  were);
- *writes* (``tell``/``untell``/transaction ``commit``) funnel through
  the single-writer :class:`~repro.server.pipeline.CommitPipeline` with
  group commit and first-committer-wins validation;
- everything first passes the
  :class:`~repro.server.admission.AdmissionController` front door.

The handler's contract is total: :meth:`handle` maps any request dict
to a response dict and never raises — errors become typed wire errors.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import ExitStack
from typing import Any, Callable, Dict, List, Optional

from repro.analysis.concurrency import lockdep
from repro.conceptbase import ConceptBase
from repro.decisions import DecisionHistory, decide_keys
from repro.errors import (
    CommitConflict,
    ProtocolError,
    ReproError,
    ServerError,
    ServerReadOnly,
    ServerRestarting,
    SessionError,
)
from repro.obs.explain import QueryExplain
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.objects.frame import parse_frames
from repro.propositions.wal import WalStore
from repro.server.admission import AdmissionController
from repro.server.pipeline import CommitPipeline, PendingCommit
from repro.server.protocol import (
    error_response,
    negotiate_protocol,
    ok_response,
    validate_request,
)
from repro.server.session import Session, SessionManager

#: Ops that run without a session (and without admission state tied to
#: one).
_SESSIONLESS = frozenset({"hello", "ping"})

#: Ops that mutate session state (staged ops, overlay, read epoch).
#: Admission allows several concurrent requests per session, so these
#: run under the session's lock for their *whole* duration — a tell
#: cannot interleave with a commit's snapshot-submit-clear sequence and
#: be silently dropped, and concurrent commit/abort cannot double-end a
#: transaction.  Reads deliberately stay outside the lock (they pin an
#: epoch, not the session).
_SESSION_SERIAL = frozenset(
    {"begin", "tell", "untell", "commit", "abort", "staged",
     "decide", "backtrack"}
)

#: Ops that mutate the shared knowledge base — refused in read-only
#: degrade (everything else still serves from the recovered state).
_WRITE_OPS = frozenset({"tell", "untell", "commit", "decide", "backtrack"})


class GKBMSService:
    """Concurrent request handler over one shared ConceptBase."""

    def __init__(self, cb: Optional[ConceptBase] = None, *,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 check_consistency: bool = False,
                 max_sessions: int = 64,
                 max_in_flight: int = 32,
                 max_waiting: int = 64,
                 per_session: int = 4,
                 max_wait: float = 5.0,
                 max_batch: int = 8,
                 batch_window: float = 0.0,
                 max_queue: int = 128) -> None:
        if cb is None:
            cb = ConceptBase(registry=registry, tracer=tracer)
        self.cb = cb
        self.registry = cb.registry
        self._tracer = tracer if tracer is not None else cb.propositions.tracer
        #: The serving lock: shared for reads, exclusive for applies.
        #: Critical: nothing blocking may run under it — fsync happens
        #: in the pipeline's batch scope *after* the apply releases it.
        self._rwlock = lockdep.make_rwlock("server.service.rwlock")  # lock: critical
        self._max_wait = max_wait
        #: Per-request absolute deadline (admission clock), carried
        #: thread-locally from handle() to the lock-budget computation.
        self._deadline = threading.local()
        sanitizer = lockdep.manager()
        if sanitizer is not None:
            sanitizer.bind_registry(cb.registry)
        ns = self.registry.namespace("server")
        self._c_requests = ns.counter("requests")
        self._c_errors = ns.counter("request_errors")
        self._c_torn = ns.counter("torn_reads")
        self._h_request = ns.histogram("request_ms")
        self.sessions = SessionManager(ns, max_sessions=max_sessions)
        self.admission = AdmissionController(
            ns, max_in_flight=max_in_flight, max_waiting=max_waiting,
            per_session=per_session, max_wait=max_wait,
        )
        self._ns = ns
        #: Pipeline sizing, remembered so a supervised restart rebuilds
        #: the successor pipeline with identical shape.
        self._pipeline_conf = dict(
            max_batch=max_batch, batch_window=batch_window,
            max_queue=max_queue,
        )
        self._check_consistency = check_consistency
        #: ``serving`` | ``restarting`` | ``read_only`` — the restart
        #: state machine.  Written by the supervisor path, read racily
        #: at dispatch (a late read just means one more request reaches
        #: the poisoned pipeline and fails typed there).
        self._status = "serving"  # guarded-by: <atomic>
        #: The supervisor's poison callback, re-attached to every
        #: successor pipeline a restart builds.
        self._fault_listener: Optional[Callable[[BaseException], None]] = None
        store = cb.propositions.store
        self.pipeline = CommitPipeline(
            self._apply_commit, ns.namespace("commit"), self._tracer,
            wal=store if isinstance(store, WalStore) else None,
            max_batch=max_batch, batch_window=batch_window,
            max_queue=max_queue,
        )
        #: The commit currently applying on the writer thread — read by
        #: the defence-in-depth validator below.
        self._applying: Optional[PendingCommit] = None  # guarded-by: _rwlock
        #: The decision-history engine: its ledger is mutated only in
        #: ``_apply_commit`` (writer thread, write lock held) and read
        #: through ``_read`` — the same discipline as the base itself.
        self.decisions = DecisionHistory(cb, tracer=self._tracer)
        if check_consistency:
            cb.enforce_on_commit()
        # Second line of first-committer-wins defence *inside* the
        # processor's commit protocol: the pipeline already validated
        # pre-apply (so refused commits burn no pids), and with a single
        # writer nothing can invalidate that check mid-apply — but if a
        # caller ever commits around the pipeline, this refuses the
        # stale batch at the commit hook with full rollback.
        cb.propositions.add_commit_validator(self._revalidate_applying)

    # ------------------------------------------------------------------
    # Request entry
    # ------------------------------------------------------------------

    def handle(self, frame: Dict[str, Any], *,
               admitted: bool = False,
               deadline: Optional[float] = None) -> Dict[str, Any]:
        """One request dict in, one response dict out.

        Never raises for any failure *of the request* — those become
        typed wire errors.  Shutdown signals (``KeyboardInterrupt``,
        ``SystemExit``) are deliberately not part of that contract:
        they propagate so a serving thread can actually be stopped.

        ``admitted=True`` is the asyncio transport's contract: it
        already holds an admission slot for this request (taken via
        :meth:`AdmissionController.try_admit` on the event loop, so no
        executor thread ever blocks in admission) and releases it when
        the call returns.  ``deadline`` carries the absolute admission
        deadline computed *at frame receipt*, so time parked behind
        backpressure still counts against the request's budget.
        """
        request_id = frame.get("id") if isinstance(frame, dict) else None
        start = self._clock()
        self._c_requests.inc()
        try:
            if not isinstance(frame, dict):
                raise ProtocolError("request must be a JSON object")
            validate_request(frame)
            op = frame["op"]
            params = frame.get("params", {})
            session: Optional[Session] = None
            if op not in _SESSIONLESS:
                session = self.sessions.get(frame.get("session"))
            if deadline is None:
                deadline = self.admission.deadline_from(
                    frame.get("deadline_ms")
                )
            self._deadline.value = deadline
            with ExitStack() as stack:
                if not admitted:
                    with self._tracer.span("server.admit", op=op):
                        stack.enter_context(
                            self.admission.admit(session, deadline)
                        )
                with self._tracer.span("server.execute", op=op):
                    result = self._dispatch(op, session, params)
            return ok_response(request_id, result)
        except Exception as exc:  # noqa: BLE001 - total handler
            self._c_errors.inc()
            return error_response(request_id, exc)
        finally:
            self._deadline.value = None
            self._h_request.observe((self._clock() - start) * 1000.0)

    def reject(self, request_id: Any, exc: Exception) -> Dict[str, Any]:
        """Shape (and count) a request the transport refused before
        :meth:`handle` — an async admission shed, a duplicate pipeline
        id, an expired deadline.  Keeps ``server.requests`` /
        ``server.request_errors`` coherent across transports."""
        self._c_requests.inc()
        self._c_errors.inc()
        return error_response(request_id, exc)

    @staticmethod
    def _clock() -> float:
        return time.monotonic()

    def _lock_budget(self) -> float:
        """Seconds this request may wait for the serving lock: its
        remaining admission deadline when it carries one, capped at
        ``max_wait`` — so a wedged writer surfaces as a typed
        :class:`~repro.errors.LockTimeout`, never an unbounded stall."""
        deadline = getattr(self._deadline, "value", None)
        if deadline is None:
            return self._max_wait
        return min(self._max_wait, max(0.0, deadline - self._clock()))

    def close(self) -> None:
        """Stop the writer thread and drop every session."""
        self.pipeline.close()
        self.sessions.close_all()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, op: str, session: Optional[Session],
                  params: Dict[str, Any]) -> Dict[str, Any]:
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise ProtocolError(f"op {op!r} not implemented")
        status = self._status
        if status == "restarting" and op != "ping":
            raise ServerRestarting(
                "service is restarting after a durability fault; "
                "retry shortly (idempotency tokens apply exactly once)"
            )
        if status == "read_only" and op in _WRITE_OPS:
            raise ServerReadOnly(
                "service degraded to read-only after repeated restart "
                "failures; writes are refused until operator intervention"
            )
        if op in _SESSIONLESS:
            return handler(params)
        if op in _SESSION_SERIAL:
            assert session is not None
            with session.lock:
                return handler(session, params)
        return handler(session, params)

    @staticmethod
    def _param(params: Dict[str, Any], name: str) -> str:
        value = params.get(name)
        if not isinstance(value, str) or not value.strip():
            raise ProtocolError(f"param {name!r} must be a non-empty string")
        return value

    @staticmethod
    def _opt_token(params: Dict[str, Any]) -> Optional[str]:
        """The optional client-generated idempotency token."""
        token = params.get("token")
        if token is None:
            return None
        if not isinstance(token, str) or not token.strip():
            raise ProtocolError(
                "param 'token' must be a non-empty string when given"
            )
        return token

    # -- sessionless -------------------------------------------------------

    def _op_hello(self, params: Dict[str, Any]) -> Dict[str, Any]:
        # Version negotiation happens before the session opens, so a
        # bad `protocol` param costs nothing.  The granted version is
        # a *permission*: v2 lets the transport answer this client out
        # of order; the lockstep threaded transport trivially satisfies
        # it by never having two requests of one connection in flight.
        protocol = negotiate_protocol(params)
        session = self.sessions.open(self.pipeline.commit_seq)
        return {
            "session": session.sid,
            "protocol": protocol,
            "commit_seq": self.pipeline.commit_seq,
        }

    def _op_ping(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "pong": True,
            "epoch": self.cb.propositions.epoch,
            "commit_seq": self.pipeline.commit_seq,
        }

    # -- session control ---------------------------------------------------

    def _op_bye(self, session: Session,
                params: Dict[str, Any]) -> Dict[str, Any]:
        self.sessions.close(session.sid)
        return {"closed": session.sid}

    # -- reads -------------------------------------------------------------

    def _read(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` under the shared lock inside an epoch-pinned read;
        a torn read (epoch moved mid-read) is counted, never silent."""
        with self._rwlock.read_locked(self._lock_budget()):
            with self.cb.propositions.read_transaction() as pin:
                result = fn()
        if pin.consistent is False:
            self._c_torn.inc()
        return result

    def _op_ask(self, session: Session,
                params: Dict[str, Any]) -> Dict[str, Any]:
        assertion = self._param(params, "assertion")
        return {"holds": bool(self._read(lambda: self.cb.ask(assertion)))}

    def _op_ask_all(self, session: Session,
                    params: Dict[str, Any]) -> Dict[str, Any]:
        assertion = self._param(params, "assertion")
        witnesses = self._read(lambda: self.cb.ask_all(assertion))
        return {"witnesses": [dict(w) for w in witnesses]}

    def _op_query(self, session: Session,
                  params: Dict[str, Any]) -> Dict[str, Any]:
        literal = self._param(params, "literal")
        answers = self._read(lambda: self.cb.query(literal))
        return {"answers": [list(row) for row in answers]}

    def _op_instances(self, session: Session,
                      params: Dict[str, Any]) -> Dict[str, Any]:
        cls = self._param(params, "cls")
        return {"instances": self._read(lambda: self.cb.instances(cls))}

    def _op_frame(self, session: Session,
                  params: Dict[str, Any]) -> Dict[str, Any]:
        name = self._param(params, "name")
        rendered = self._read(lambda: self.cb.ask_object(name).render())
        return {"name": name, "frame": rendered}

    def _op_summary(self, session: Session,
                    params: Dict[str, Any]) -> Dict[str, Any]:
        return {"summary": self._read(self.cb.summary)}

    def _op_stats(self, session: Session,
                  params: Dict[str, Any]) -> Dict[str, Any]:
        prefix = params.get("prefix", "")
        if not isinstance(prefix, str):
            raise ProtocolError("param 'prefix' must be a string")
        return {"metrics": self.registry.snapshot(prefix)}

    # -- writes ------------------------------------------------------------

    def _op_tell(self, session: Session,
                 params: Dict[str, Any]) -> Dict[str, Any]:
        source = self._param(params, "source")
        token = self._opt_token(params)
        keys = [frame.name for frame in parse_frames(source)]
        if session.in_transaction:
            staged = session.stage("tell", source, keys)
            return {"staged": staged}
        return self.pipeline.submit(
            [("tell", source)], keys, None, session.sid, token=token
        )

    def _op_untell(self, session: Session,
                   params: Dict[str, Any]) -> Dict[str, Any]:
        name = self._param(params, "name")
        token = self._opt_token(params)
        if session.in_transaction:
            staged = session.stage("untell", name, [name])
            return {"staged": staged}
        return self.pipeline.submit(
            [("untell", name)], [name], None, session.sid, token=token
        )

    # -- decisions ---------------------------------------------------------

    def _op_decide(self, session: Session,
                   params: Dict[str, Any]) -> Dict[str, Any]:
        token = self._opt_token(params)
        if session.in_transaction:
            raise SessionError(
                "decide is its own transaction; commit or abort the open "
                "one first"
            )
        spec = {key: value for key, value in params.items()
                if key != "token"}
        if not isinstance(spec.get("decision_class"), str) \
                or not spec["decision_class"].strip():
            raise ProtocolError(
                "param 'decision_class' must be a non-empty string"
            )
        arg = json.dumps(spec, sort_keys=True)
        return self.pipeline.submit(
            [("decide", arg)], decide_keys(spec), None, session.sid,
            token=token,
        )

    def _op_backtrack(self, session: Session,
                      params: Dict[str, Any]) -> Dict[str, Any]:
        did = self._param(params, "did")
        token = self._opt_token(params)
        if session.in_transaction:
            raise SessionError(
                "backtrack is its own transaction; commit or abort the "
                "open one first"
            )
        arg = json.dumps({"did": did}, sort_keys=True)
        return self.pipeline.submit(
            [("backtrack", arg)], [], None, session.sid, token=token
        )

    def _op_replay(self, session: Session,
                   params: Dict[str, Any]) -> Dict[str, Any]:
        did = self._param(params, "did")
        return self._read(lambda: self.decisions.replay(did))

    def _op_history(self, session: Session,
                    params: Dict[str, Any]) -> Dict[str, Any]:
        include_retracted = params.get("include_retracted", True)
        if not isinstance(include_retracted, bool):
            raise ProtocolError(
                "param 'include_retracted' must be a boolean"
            )
        return self._read(
            lambda: self.decisions.history(include_retracted)
        )

    def _op_versions(self, session: Session,
                     params: Dict[str, Any]) -> Dict[str, Any]:
        return self._read(self.decisions.versions)

    # -- transactions ------------------------------------------------------

    def _op_begin(self, session: Session,
                  params: Dict[str, Any]) -> Dict[str, Any]:
        session.begin(self.pipeline.commit_seq)
        return {"read_epoch": session.read_epoch}

    def _op_staged(self, session: Session,
                   params: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "ops": [list(op) for op in session.staged_ops()],
            "keys": session.staged_keys(),
        }

    def _op_commit(self, session: Session,
                   params: Dict[str, Any]) -> Dict[str, Any]:
        token = self._opt_token(params)
        # The idempotency check comes BEFORE the open-transaction check:
        # a retried commit often arrives on a *new* session (the client
        # reconnected after a drop or restart), which naturally has no
        # open transaction — if the original attempt acked, the retry
        # must collect that result, not a SessionError.
        cached = self.pipeline.token_result(token)
        if cached is not None:
            cached["idempotent"] = True
            if session.in_transaction:
                session.end_transaction()
                session.read_epoch = self.pipeline.commit_seq
            return cached
        if not session.in_transaction:
            raise SessionError(
                f"session {session.sid!r} has no open transaction to commit"
            )
        ops = session.staged_ops()
        keys = session.staged_keys()
        try:
            if not ops:
                return {"created": 0, "retracted": 0, "empty": True,
                        "commit_seq": self.pipeline.commit_seq}
            return self.pipeline.submit(
                ops, keys, session.read_epoch, session.sid, token=token
            )
        finally:
            # Commit ends the transaction either way: a refused commit
            # (conflict, consistency, parse error) leaves the session
            # clean for a retry against a fresh read epoch.
            session.end_transaction()
            session.read_epoch = self.pipeline.commit_seq

    def _op_abort(self, session: Session,
                  params: Dict[str, Any]) -> Dict[str, Any]:
        dropped = session.end_transaction()
        session.read_epoch = self.pipeline.commit_seq
        return {"aborted": True, "dropped": dropped}

    # -- explain -----------------------------------------------------------

    def _op_explain(self, session: Session,
                    params: Dict[str, Any]) -> Dict[str, Any]:
        kind = params.get("kind", "query")
        if kind not in ("ask", "query"):
            raise ProtocolError("param 'kind' must be 'ask' or 'query'")
        text = self._param(params, "text")

        def fn() -> Any:
            if kind == "ask":
                return self.cb.ask(text)
            return [list(row) for row in self.cb.query(text)]
        # EXPLAIN captures exclusively (write side of the lock): the
        # span tree and counter deltas must not interleave with other
        # sessions' work.
        capture_tracer = Tracer(enabled=True)
        previous = self._tracer
        with self._rwlock.write_locked(self._lock_budget()):
            self.cb.set_tracer(capture_tracer)
            try:
                report = QueryExplain(
                    self.registry, tracer=capture_tracer
                ).explain(fn, label=f"{kind}:{text}")
            finally:
                self.cb.set_tracer(previous)
        return {
            "label": report.label,
            "result": report.result,
            "headline": report.headline(),
            "subsystems": report.subsystems(),
            "render": report.render(),
        }

    # ------------------------------------------------------------------
    # Writer-thread apply
    # ------------------------------------------------------------------

    def _apply_commit(self, pending: PendingCommit) -> Dict[str, Any]:
        """Apply one accepted commit (writer thread, exclusive lock)."""
        if pending.ops and pending.ops[0][0] == "checkpoint":
            return self._apply_checkpoint()
        if pending.ops and pending.ops[0][0] in ("decide", "backtrack"):
            return self._apply_decision(pending)
        created = 0
        retracted = 0
        with self._rwlock.write_locked():
            self._applying = pending
            try:
                with self.cb.transaction():
                    for kind, arg in pending.ops:
                        if kind == "tell":
                            created += len(self.cb.tell(arg))
                        elif kind == "untell":
                            retracted += len(self.cb.untell(arg))
                        else:
                            raise ServerError(
                                f"unknown staged op kind {kind!r}"
                            )
            finally:
                self._applying = None
        return {
            "created": created,
            "retracted": retracted,
            "epoch": self.cb.propositions.epoch,
        }

    def _apply_decision(self, pending: PendingCommit) -> Dict[str, Any]:
        """Apply one decide/backtrack op: the decision engine manages
        its own ConceptBase transaction (ledger record and proposition
        delta must share one WAL transaction), so this just provides
        the write lock and conflict bookkeeping around it."""
        kind, arg = pending.ops[0]
        with self._rwlock.write_locked():
            self._applying = pending
            try:
                if kind == "decide":
                    result = self.decisions.apply_decide(arg)
                else:
                    result = self.decisions.apply_backtrack(arg)
            finally:
                self._applying = None
        result["epoch"] = self.cb.propositions.epoch
        return result

    def _apply_checkpoint(self) -> Dict[str, Any]:
        """Fold the WAL into a snapshot, on the writer thread.

        Checkpoints ride the commit pipeline as a special op, so they
        serialize with commit applies and run exactly where the store's
        writer-confined state lives.  A checkpoint inside a group batch
        is still crash-safe: records already applied in the batch are
        covered by the (fsynced-on-write) snapshot, and records after it
        land in the fresh log that the batch's deferred force covers.
        """
        store = self.cb.propositions.store
        if not isinstance(store, WalStore):
            return {"checkpoint": False, "dropped": 0}
        with self._rwlock.write_locked():
            dropped = store.checkpoint()
        # The checkpoint itself is durable (atomic, fsynced), so the
        # fresh log head is a confirmed durability boundary.
        self.pipeline.mark_durable(store.log_offset)
        return {"checkpoint": True, "dropped": dropped,
                "generation": store.generation}

    def _revalidate_applying(self, _created: List[Any]) -> None:  # holds: _rwlock
        pending = self._applying
        if pending is None or pending.read_epoch is None:
            return
        stale = self.pipeline.stale_keys(pending.keys, pending.read_epoch)
        if stale:
            raise CommitConflict(
                f"write-set keys {', '.join(stale)} changed under "
                f"read epoch {pending.read_epoch} during apply"
            )

    # ------------------------------------------------------------------
    # Checkpoint, drain, supervised restart
    # ------------------------------------------------------------------

    @property
    def status(self) -> str:
        """``serving`` | ``restarting`` | ``read_only``."""
        return self._status

    def checkpoint(self) -> Dict[str, Any]:
        """Fold the WAL into a snapshot via the commit pipeline (so the
        checkpoint serializes with in-flight commits).  No-op result on
        a memory-backed service."""
        return self.pipeline.submit(
            [("checkpoint", "")], [], None, "__system__"
        )

    def drain(self) -> None:
        """Graceful shutdown: flush the pipeline behind a final
        checkpoint, stop the writer, drop sessions, close the WAL.

        The transport stops accepting first (its job); anything still
        queued commits ahead of the checkpoint.  A poisoned pipeline has
        nothing flushable — its queue was already failed — so the
        checkpoint is skipped and the store closed as-is."""
        try:
            self.checkpoint()
        except ServerError:
            pass
        self.pipeline.close()
        self.sessions.close_all()
        store = self.cb.propositions.store
        if isinstance(store, WalStore):
            store.close()

    def set_fault_listener(
        self, listener: Optional[Callable[[BaseException], None]]
    ) -> None:
        """Attach the supervisor's poison callback (survives restarts:
        every successor pipeline is wired with it too)."""
        self._fault_listener = listener
        self.pipeline.set_fault_listener(listener)

    def begin_restart(self) -> None:
        """Quiesce for a supervised restart: refuse new work with the
        retryable :class:`~repro.errors.ServerRestarting` and fail every
        open transaction's staging (their pinned epochs cannot survive
        the rebuild)."""
        self._status = "restarting"
        self.sessions.invalidate_transactions()

    def degrade_read_only(self) -> None:
        """Crash-loop last resort: serve reads from the last recovered
        state, refuse writes, stop flapping."""
        self._status = "read_only"

    def complete_restart(self, cb: ConceptBase,
                         state: Dict[str, Any]) -> None:
        """Swap in the recovered knowledge base and a successor pipeline
        seeded with the predecessor's exported (acked-only) state, then
        resume serving.

        The swap holds the write side of the serving lock, so no read
        can observe a half-replaced pair; the old pipeline must already
        be closed by the caller (the supervisor)."""
        with self._rwlock.write_locked():
            self.cb = cb
            store = cb.propositions.store
            self.pipeline = CommitPipeline(
                self._apply_commit, self._ns.namespace("commit"),
                self._tracer,
                wal=store if isinstance(store, WalStore) else None,
                state=state, **self._pipeline_conf,
            )
            if self._fault_listener is not None:
                self.pipeline.set_fault_listener(self._fault_listener)
            if self._check_consistency:
                cb.enforce_on_commit()
            cb.propositions.add_commit_validator(self._revalidate_applying)
            # The recovered store's decision_log *is* the ledger: the
            # successor engine rebuilds from it, so every acked decision
            # survives the restart exactly like every acked tell.
            self.decisions = DecisionHistory(cb, tracer=self._tracer)
        self._status = "serving"

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The server-side metrics snapshot (``server.*`` only)."""
        return self.registry.snapshot("server")

    def __enter__(self) -> "GKBMSService":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return (f"<GKBMSService sessions={len(self.sessions)} "
                f"commit_seq={self.pipeline.commit_seq}>")
