"""A reader/writer lock for the serving layer.

Snapshot reads of the knowledge base run concurrently (many readers);
the commit pipeline's writer thread applies tellings exclusively (one
writer, no readers).  The implementation is writer-preferring: once a
writer is waiting, new readers queue behind it, so a steady stream of
asks can never starve commits.

Both sides take an optional ``timeout`` (seconds): when the budget
expires before the lock is granted, acquisition raises a typed
:class:`~repro.errors.LockTimeout` instead of waiting forever — the
service wires request deadlines through here so a wedged writer cannot
hang a session past its admission deadline.  A timed-out acquire holds
nothing.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import LockTimeout


class ReadWriteLock:
    """Many concurrent readers or one exclusive writer."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0           # guarded-by: _cond
        self._writer = False        # guarded-by: _cond
        self._writers_waiting = 0   # guarded-by: _cond

    # -- reader side -------------------------------------------------------

    def acquire_read(self, timeout: Optional[float] = None) -> None:
        """Take the shared side; raises :class:`LockTimeout` if the
        budget expires first (holding nothing)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._writer or self._writers_waiting:
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise LockTimeout(
                            f"read lock not granted within {timeout:.3f}s "
                            f"(writer active or queued)"
                        )
                    self._cond.wait(remaining)
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read_locked(self,
                    timeout: Optional[float] = None) -> Iterator[None]:
        self.acquire_read(timeout)
        try:
            yield
        finally:
            self.release_read()

    # -- writer side -------------------------------------------------------

    def acquire_write(self, timeout: Optional[float] = None) -> None:
        """Take the exclusive side; raises :class:`LockTimeout` if the
        budget expires first (holding nothing)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    if deadline is None:
                        self._cond.wait()
                    else:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise LockTimeout(
                                f"write lock not granted within "
                                f"{timeout:.3f}s ({self._readers} readers, "
                                f"writer={self._writer})"
                            )
                        self._cond.wait(remaining)
                self._writer = True
            finally:
                self._writers_waiting -= 1
                # A timed-out writer must re-open the gate: readers park
                # whenever writers_waiting > 0, so if this was the last
                # waiting writer and nobody won the lock, wake them to
                # recheck — otherwise they would sleep on a lock nobody
                # holds.
                if not self._writer:
                    self._cond.notify_all()

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def write_locked(self,
                     timeout: Optional[float] = None) -> Iterator[None]:
        self.acquire_write(timeout)
        try:
            yield
        finally:
            self.release_write()
