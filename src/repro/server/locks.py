"""A reader/writer lock for the serving layer.

Snapshot reads of the knowledge base run concurrently (many readers);
the commit pipeline's writer thread applies tellings exclusively (one
writer, no readers).  The implementation is writer-preferring: once a
writer is waiting, new readers queue behind it, so a steady stream of
asks can never starve commits.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class ReadWriteLock:
    """Many concurrent readers or one exclusive writer."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    # -- reader side -------------------------------------------------------

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- writer side -------------------------------------------------------

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
