"""Admission control: the service's front door.

Every request passes through :meth:`AdmissionController.admit` before
touching the knowledge base.  The controller enforces three bounds and
fails *typed* instead of stalling:

- a global in-flight cap (``max_in_flight``) — past it, requests wait
  in a bounded queue (``max_waiting``); a full queue sheds immediately
  with :class:`~repro.errors.ServerOverloaded`;
- a per-session in-flight cap, so one pathological client cannot
  monopolise the worker pool;
- deadlines — a request whose ``deadline_ms`` budget expires while
  waiting raises :class:`~repro.errors.DeadlineExceeded`; one that
  waits longer than ``max_wait`` without a client deadline is shed.

The queue depth and in-flight level surface as ``server.queue_depth``
and ``server.in_flight`` gauges, shed/deadline outcomes as counters —
the load-shedding behaviour is observable, not inferred.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from repro.analysis.concurrency.lockdep import make_condition
from repro.errors import DeadlineExceeded, ServerOverloaded
from repro.obs.metrics import Namespace
from repro.server.session import Session


class AdmissionController:
    """Bounded waiting, in-flight caps, deadlines, typed shedding."""

    def __init__(self, metrics: Namespace,
                 max_in_flight: int = 32,
                 max_waiting: int = 64,
                 per_session: int = 4,
                 max_wait: float = 5.0,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self._cond = make_condition("server.admission.cond")
        self._max_in_flight = max_in_flight
        self._max_waiting = max_waiting
        self._per_session = per_session
        self._max_wait = max_wait
        self._clock = clock if clock is not None else time.monotonic
        self._in_flight = 0   # guarded-by: _cond
        self._waiting = 0     # guarded-by: _cond
        self._c_admitted = metrics.counter("admitted")
        self._c_shed = metrics.counter("shed")
        self._c_deadline = metrics.counter("deadline_exceeded")
        self._g_in_flight = metrics.gauge("in_flight")
        self._g_queue_depth = metrics.gauge("queue_depth")

    def deadline_from(self, deadline_ms: Optional[float]) -> Optional[float]:
        """An absolute deadline (controller clock) from a relative
        millisecond budget; ``None`` means no client deadline."""
        if deadline_ms is None:
            return None
        return self._clock() + max(0.0, float(deadline_ms)) / 1000.0

    def _admissible(self, session: Optional[Session]) -> bool:  # holds: _cond
        if self._in_flight >= self._max_in_flight:
            return False
        if session is not None and session.in_flight >= self._per_session:
            return False
        return True

    @contextmanager
    def admit(self, session: Optional[Session] = None,
              deadline: Optional[float] = None) -> Iterator[None]:
        """Hold an admission slot for the duration of the block."""
        with self._cond:
            if deadline is not None and self._clock() >= deadline:
                self._c_deadline.inc()
                raise DeadlineExceeded("deadline expired before admission")
            if not self._admissible(session):
                if self._waiting >= self._max_waiting:
                    self._c_shed.inc()
                    raise ServerOverloaded(
                        f"admission queue full "
                        f"({self._waiting} waiting, "
                        f"{self._in_flight} in flight)"
                    )
                give_up = self._clock() + self._max_wait
                if deadline is not None:
                    give_up = min(give_up, deadline)
                self._waiting += 1
                self._g_queue_depth.set(self._waiting)
                try:
                    while not self._admissible(session):
                        remaining = give_up - self._clock()
                        if remaining <= 0:
                            if deadline is not None \
                                    and give_up >= deadline:
                                self._c_deadline.inc()
                                raise DeadlineExceeded(
                                    "deadline expired while queued "
                                    "for admission"
                                )
                            self._c_shed.inc()
                            raise ServerOverloaded(
                                f"admission wait exceeded "
                                f"{self._max_wait:.3f}s"
                            )
                        self._cond.wait(remaining)
                finally:
                    self._waiting -= 1
                    self._g_queue_depth.set(self._waiting)
            self._in_flight += 1
            if session is not None:
                session.in_flight += 1
            self._g_in_flight.set(self._in_flight)
            self._c_admitted.inc()
        try:
            yield
        finally:
            with self._cond:
                self._in_flight -= 1
                if session is not None:
                    session.in_flight -= 1
                self._g_in_flight.set(self._in_flight)
                self._cond.notify_all()
