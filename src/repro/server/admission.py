"""Admission control: the service's front door.

Every request passes through :meth:`AdmissionController.admit` before
touching the knowledge base.  The controller enforces three bounds and
fails *typed* instead of stalling:

- a global in-flight cap (``max_in_flight``) — past it, requests wait
  in a bounded queue (``max_waiting``); a full queue sheds immediately
  with :class:`~repro.errors.ServerOverloaded`;
- a per-session in-flight cap, so one pathological client cannot
  monopolise the worker pool;
- deadlines — a request whose ``deadline_ms`` budget expires while
  waiting raises :class:`~repro.errors.DeadlineExceeded`; one that
  waits longer than ``max_wait`` without a client deadline is shed.
  The deadline is re-checked *on wakeup* too: a waiter whose budget
  expired just before a slot freed is refused, not admitted — expired
  requests must never burn worker time.

The queue depth and in-flight level surface as ``server.queue_depth``
and ``server.in_flight`` gauges, shed/deadline outcomes as counters —
the load-shedding behaviour is observable, not inferred.

**The async plane.**  The blocking :meth:`AdmissionController.admit`
is the thread-per-connection front door.  The asyncio transport must
never block its event loop, so it uses the non-blocking half of the
same controller instead: :meth:`try_admit` takes a slot or reports
"at capacity" without waiting, :meth:`release` returns it, and
:meth:`add_resume_callback` registers the transport's wake-up hook —
fired after every release, it is what lets a paused connection reader
(the socket the server deliberately stopped reading) schedule its
retry.  Both halves share the caps, the clock, and the counters, so
shed/deadline/in-flight observability is transport-independent.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional

from repro.analysis.concurrency.lockdep import make_condition
from repro.errors import DeadlineExceeded, ServerOverloaded
from repro.obs.metrics import Namespace
from repro.server.session import Session


class AdmissionController:
    """Bounded waiting, in-flight caps, deadlines, typed shedding."""

    def __init__(self, metrics: Namespace,
                 max_in_flight: int = 32,
                 max_waiting: int = 64,
                 per_session: int = 4,
                 max_wait: float = 5.0,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self._cond = make_condition("server.admission.cond")
        self._max_in_flight = max_in_flight
        self._max_waiting = max_waiting
        self._per_session = per_session
        self._max_wait = max_wait
        self._clock = clock if clock is not None else time.monotonic
        self._in_flight = 0   # guarded-by: _cond
        self._waiting = 0     # guarded-by: _cond
        #: The async transport's read-resume hooks, fired after every
        #: release.  Appended at serve start, snapshotted under the
        #: lock, invoked outside it (a callback must never wait on us).
        self._resume_callbacks: List[Callable[[], None]] = []  # guarded-by: _cond
        self._c_admitted = metrics.counter("admitted")
        self._c_shed = metrics.counter("shed")
        self._c_deadline = metrics.counter("deadline_exceeded")
        self._g_in_flight = metrics.gauge("in_flight")
        self._g_queue_depth = metrics.gauge("queue_depth")

    @property
    def max_in_flight(self) -> int:
        """The global in-flight cap (sizes the async executor pool)."""
        return self._max_in_flight

    @property
    def max_wait(self) -> float:
        """Longest a deadline-less request may wait for admission."""
        return self._max_wait

    def deadline_from(self, deadline_ms: Optional[float]) -> Optional[float]:
        """An absolute deadline (controller clock) from a relative
        millisecond budget; ``None`` means no client deadline."""
        if deadline_ms is None:
            return None
        return self._clock() + max(0.0, float(deadline_ms)) / 1000.0

    def _admissible(self, session: Optional[Session]) -> bool:  # holds: _cond
        if self._in_flight >= self._max_in_flight:
            return False
        if session is not None and session.in_flight >= self._per_session:
            return False
        return True

    @contextmanager
    def admit(self, session: Optional[Session] = None,
              deadline: Optional[float] = None) -> Iterator[None]:
        """Hold an admission slot for the duration of the block."""
        with self._cond:
            if deadline is not None and self._clock() >= deadline:
                self._c_deadline.inc()
                raise DeadlineExceeded("deadline expired before admission")
            if not self._admissible(session):
                if self._waiting >= self._max_waiting:
                    self._c_shed.inc()
                    raise ServerOverloaded(
                        f"admission queue full "
                        f"({self._waiting} waiting, "
                        f"{self._in_flight} in flight)"
                    )
                give_up = self._clock() + self._max_wait
                if deadline is not None:
                    give_up = min(give_up, deadline)
                self._waiting += 1
                self._g_queue_depth.set(self._waiting)
                try:
                    while not self._admissible(session):
                        remaining = give_up - self._clock()
                        if remaining <= 0:
                            raise self._wait_expired(deadline, give_up)
                        self._cond.wait(remaining)
                    # A slot freed, but the wait itself may have
                    # consumed the whole budget: without this re-check
                    # a request whose deadline expired moments before
                    # the wakeup would be admitted anyway and burn
                    # worker time on an answer nobody is waiting for.
                    if deadline is not None and self._clock() >= deadline:
                        self._c_deadline.inc()
                        raise DeadlineExceeded(
                            "deadline expired while queued for admission"
                        )
                finally:
                    self._waiting -= 1
                    self._g_queue_depth.set(self._waiting)
            self._take_slot(session)
        try:
            yield
        finally:
            self.release(session)

    def _take_slot(self, session: Optional[Session]) -> None:  # holds: _cond
        self._in_flight += 1
        if session is not None:
            session.in_flight += 1
        self._g_in_flight.set(self._in_flight)
        self._c_admitted.inc()

    def _wait_expired(self, deadline: Optional[float],
                      give_up: float) -> Exception:  # holds: _cond
        """Count and build the typed error for an admission wait whose
        budget ran out (shared by the blocking and async planes)."""
        if deadline is not None and give_up >= deadline:
            self._c_deadline.inc()
            return DeadlineExceeded(
                "deadline expired while queued for admission"
            )
        self._c_shed.inc()
        return ServerOverloaded(
            f"admission wait exceeded {self._max_wait:.3f}s"
        )

    # ------------------------------------------------------------------
    # The non-blocking half (the asyncio transport's front door)
    # ------------------------------------------------------------------

    def try_admit(self, session: Optional[Session] = None,
                  deadline: Optional[float] = None) -> bool:
        """Take an admission slot without waiting.

        Returns ``True`` with the slot held (pair with
        :meth:`release`), or ``False`` when the controller is at
        capacity — the caller parks and retries on the resume callback
        instead of blocking a thread.  An already-expired deadline
        raises :class:`~repro.errors.DeadlineExceeded` (counted), same
        as the blocking path."""
        with self._cond:
            if deadline is not None and self._clock() >= deadline:
                self._c_deadline.inc()
                raise DeadlineExceeded("deadline expired before admission")
            if not self._admissible(session):
                return False
            self._take_slot(session)
            return True

    def release(self, session: Optional[Session] = None) -> None:
        """Return a slot taken by :meth:`try_admit` (or internally by
        :meth:`admit`), wake blocked waiters, fire resume callbacks."""
        with self._cond:
            self._in_flight -= 1
            if session is not None:
                session.in_flight -= 1
            self._g_in_flight.set(self._in_flight)
            self._cond.notify_all()
            callbacks = list(self._resume_callbacks)
        for callback in callbacks:
            callback()

    def add_resume_callback(
        self, callback: Callable[[], None]
    ) -> Callable[[], None]:
        """Register a hook fired after every release; returns a
        detacher.  The async transport points this at
        ``loop.call_soon_threadsafe`` to wake its paused readers."""
        with self._cond:
            self._resume_callbacks.append(callback)

        def detach() -> None:
            with self._cond:
                if callback in self._resume_callbacks:
                    self._resume_callbacks.remove(callback)
        return detach

    @contextmanager
    def parked(self) -> Iterator[None]:
        """Account one parked (read-paused) async request as a waiter,
        so ``max_waiting`` bounds paused connections exactly like it
        bounds blocked threads; a full queue sheds typed."""
        with self._cond:
            if self._waiting >= self._max_waiting:
                self._c_shed.inc()
                raise ServerOverloaded(
                    f"admission queue full "
                    f"({self._waiting} waiting, "
                    f"{self._in_flight} in flight)"
                )
            self._waiting += 1
            self._g_queue_depth.set(self._waiting)
        try:
            yield
        finally:
            with self._cond:
                self._waiting -= 1
                self._g_queue_depth.set(self._waiting)

    def wait_budget(self, deadline: Optional[float]) -> float:
        """The absolute give-up time for one admission wait: now plus
        ``max_wait``, clipped to the request deadline."""
        give_up = self._clock() + self._max_wait
        if deadline is not None:
            give_up = min(give_up, deadline)
        return give_up

    def wait_expired(self, deadline: Optional[float],
                     give_up: float) -> Exception:
        """Public face of :meth:`_wait_expired` for the async plane."""
        with self._cond:
            return self._wait_expired(deadline, give_up)

    def clock(self) -> float:
        """The controller's (injectable) clock, for budget arithmetic."""
        return self._clock()
