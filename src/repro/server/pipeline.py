"""The single-writer commit pipeline with group commit.

All mutations of the shared knowledge base funnel through one writer
thread.  Sessions submit their staged operations as a
:class:`PendingCommit` into a bounded queue and block; the writer
drains up to ``max_batch`` commits at a time (waiting up to
``batch_window`` seconds for stragglers), applies each one through the
service's apply callback, and — when the store is a
:class:`~repro.propositions.wal.WalStore` under the ``commit`` fsync
policy — wraps the whole batch in :meth:`WalStore.batch`, so *one*
fsync makes the entire group durable.  Submitters are woken only after
that fsync: a positive acknowledgement always means durable.

Before a commit is applied, its declared write-set keys are validated
first-committer-wins: if any key was committed by another session after
this transaction's pinned ``read_epoch``, the commit is refused with
:class:`~repro.errors.CommitConflict` *without touching the knowledge
base* — a rejected commit consumes no proposition identifiers, so a
single-threaded replay of the accepted commit log reproduces the live
store exactly.

**Acked vs applied.**  A commit is *applied* when its operations have
mutated the in-memory base and been appended to the WAL; it is *acked*
only once the batch's durability scope (the group fsync) has succeeded
and the submitter has been woken with a result.  The pipeline tracks
both: :meth:`commit_log` is the applied log (the oracle the stress
tests replay), :attr:`acked_seq` is the sequence number of the last
commit whose durability was confirmed, and :attr:`durable_offset` is
the WAL byte offset covered by the last successful fsync — the exact
boundary a supervised restart truncates back to, so a commit that was
applied but never acknowledged can never resurrect after recovery.

**Idempotency tokens.**  A submit may carry a client-generated token.
Tokens of acked commits are remembered with their results: re-submitting
the same token returns the recorded result without re-applying, which is
what makes client-side retries of writes safe across connection loss and
supervised restarts.  Tokens are validated against the accepted commit
log, so only commits that actually acked dedupe — a token whose commit
died unacknowledged in a faulted batch is forgotten by recovery (its
effects were truncated away with it) and the retry applies exactly once.

If the durability scope itself fails (an fsync fault raising
:class:`~repro.errors.PersistenceError` on batch exit), the "ack means
durable" promise cannot be kept for anything in that batch: every
submitter in the batch is failed with a typed error and the pipeline is
*poisoned* — all queued and future submits fail fast instead of
building on state that may not survive a restart.  When a supervisor is
attached (:attr:`recoverable`), those errors are the retryable
:class:`~repro.errors.ServerRestarting`; without one they remain plain
:class:`~repro.errors.ServerError` ("restart the server").  Submitters
are always woken, fault or not; nothing ever hangs on a dead writer
thread.
"""

from __future__ import annotations

import queue
import threading
import time
from contextlib import nullcontext
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.concurrency.lockdep import make_lock
from repro.errors import (
    CommitConflict,
    ServerError,
    ServerOverloaded,
    ServerRestarting,
)
from repro.obs.metrics import Namespace
from repro.obs.tracing import Tracer
from repro.propositions.wal import WalStore
from repro.server.session import StagedOp

#: Applies one commit to the knowledge base (held by the service; runs
#: on the writer thread, under the write lock, inside a
#: rollback-on-error transaction).  Receives the whole
#: :class:`PendingCommit` and returns the result dict sent back to the
#: client.
ApplyFn = Callable[["PendingCommit"], Dict[str, Any]]

_STOP = object()

#: Acked idempotency-token results kept before the oldest are evicted
#: (a retry arriving more than this many commits late re-applies; with
#: client retry windows of seconds and eviction by commit count, that
#: would take a pathological client).
MAX_TOKEN_RESULTS = 4096


class PendingCommit:
    """One session's commit, in flight through the pipeline."""

    __slots__ = ("ops", "keys", "read_epoch", "session_id", "token",
                 "enqueued", "done", "result", "error", "seq")

    def __init__(self, ops: List[StagedOp], keys: List[str],
                 read_epoch: Optional[int], session_id: str,
                 token: Optional[str] = None) -> None:
        self.ops = ops
        self.keys = keys
        #: Commit sequence number the transaction read from; ``None``
        #: means an autocommit op reading the live head — those cannot
        #: conflict (there is nothing stale to protect).
        self.read_epoch = read_epoch
        self.session_id = session_id
        #: Client-generated idempotency token (``None`` = not retried).
        self.token = token
        self.enqueued = time.monotonic()
        self.done = threading.Event()
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[BaseException] = None
        self.seq: Optional[int] = None


class CommitPipeline:
    """Bounded queue in, one writer thread out, fsync per batch."""

    def __init__(self, apply: ApplyFn, metrics: Namespace, tracer: Tracer,
                 wal: Optional[WalStore] = None,
                 max_batch: int = 8,
                 batch_window: float = 0.0,
                 max_queue: int = 128,
                 state: Optional[Dict[str, Any]] = None) -> None:
        self._apply = apply
        self._tracer = tracer
        self._wal = wal
        self._max_batch = max(1, max_batch)
        self._batch_window = max(0.0, batch_window)
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=max_queue)
        self._log_lock = make_lock("server.pipeline.log_lock")
        #: Applied commits, in apply order: (seq, session_id, ops).
        #: Replaying these into a fresh ConceptBase reproduces the live
        #: knowledge base — the oracle the stress tests check against.
        self._commit_log: List[Tuple[int, str, List[StagedOp]]] = []  # guarded-by: _log_lock
        #: token -> result of the *acked* commit it named.  Retried
        #: submits return this instead of re-applying.
        self._token_results: Dict[str, Dict[str, Any]] = {}  # guarded-by: _log_lock
        #: Sequence number of the last commit whose batch fsync
        #: succeeded (everything at or below is durable and acked).
        self._acked_seq = 0  # guarded-by: _log_lock
        #: token -> seq for every *applied* commit, acked or not —
        #: the writer's own double-apply guard within a poisoned era.
        self._applied_tokens: Dict[str, int] = {}  # guarded-by: <writer>
        #: key -> commit seq that last wrote it (writer thread only).
        self._last_write: Dict[str, int] = {}  # guarded-by: <writer>
        self._commit_seq = 0  # guarded-by: <writer>
        #: WAL byte offset covered by the last successful group fsync —
        #: a supervised restart truncates the log back to exactly here.
        self._durable_offset: Optional[int] = (
            getattr(wal, "log_offset", None)
        )  # guarded-by: <atomic>
        if state:
            self._commit_seq = int(state.get("commit_seq", 0))
            self._acked_seq = int(state.get("acked_seq", self._commit_seq))
            self._last_write = dict(state.get("last_write", {}))
            self._commit_log = list(state.get("commit_log", []))
            self._token_results = dict(state.get("token_results", {}))
            self._applied_tokens = {
                token: 0 for token in self._token_results
            }
        self._c_committed = metrics.counter("committed")
        self._c_conflicts = metrics.counter("conflicts")
        self._c_errors = metrics.counter("errors")
        self._c_shed = metrics.counter("shed")
        self._c_idempotent = metrics.counter("idempotent_hits")
        self._g_queue = metrics.gauge("queue_depth")
        self._h_batch = metrics.histogram("batch_size")
        self._h_latency = metrics.histogram("latency_ms")
        #: True once a supervisor owns this pipeline's failure mode:
        #: poison errors become the retryable ServerRestarting.
        self.recoverable = False  # guarded-by: <atomic>
        #: Called once, from the writer thread, when a durability fault
        #: poisons the pipeline (the supervisor's wake-up call).
        self._fault_listener: Optional[Callable[[BaseException], None]] = None
        #: Guards the closed-check-and-enqueue in :meth:`submit` against
        #: :meth:`close`, so no commit can ever be queued *behind* the
        #: stop sentinel (it would never be processed).
        self._submit_lock = make_lock("server.pipeline.submit_lock")
        self._closed = False  # guarded-by: _submit_lock
        #: The durability fault that poisoned the pipeline, if any.
        #: Written once by the writer, read racily by submitters — a
        #: late read just means one more commit reaches the queue before
        #: the final sweep fails it.
        self._fault: Optional[BaseException] = None  # guarded-by: <atomic>
        #: Set (before the final queue sweep) when the writer exits, so
        #: a submitter racing the sweep can fail its own commit instead
        #: of waiting on a writer that will never run it.
        self._writer_exited = False  # guarded-by: <atomic>
        self._writer = threading.Thread(
            target=self._run, name="gkbms-commit-writer", daemon=True
        )
        self._writer.start()

    # -- submitter side ----------------------------------------------------

    @property
    def commit_seq(self) -> int:
        """Sequence number of the latest applied commit (0 = none)."""
        return self._commit_seq  # unguarded: racy int read of the head is advisory

    @property
    def acked_seq(self) -> int:
        """Sequence number of the latest durably acknowledged commit."""
        with self._log_lock:
            return self._acked_seq

    @property
    def durable_offset(self) -> Optional[int]:
        """WAL offset of the last confirmed fsync (``None`` = no WAL)."""
        return self._durable_offset  # unguarded: advisory watermark read

    def mark_durable(self, offset: Optional[int]) -> None:
        """Reset the durable watermark after an out-of-band durability
        event — a checkpoint rewrites the log under a new generation, so
        byte offsets restart and the old watermark would point into a
        log that no longer exists."""
        self._durable_offset = offset

    @property
    def fault(self) -> Optional[BaseException]:
        """The durability fault that poisoned the pipeline, if any."""
        return self._fault  # unguarded: written once before poisoning

    @property
    def poisoned(self) -> bool:
        return self._fault is not None

    def set_fault_listener(
        self, listener: Optional[Callable[[BaseException], None]]
    ) -> None:
        """Register the supervisor's poison callback (also marks the
        pipeline recoverable, switching poison errors to the retryable
        :class:`~repro.errors.ServerRestarting`)."""
        self._fault_listener = listener
        self.recoverable = listener is not None

    def commit_log(self) -> List[Tuple[int, str, List[StagedOp]]]:
        """Snapshot of the applied commit log, in apply order."""
        with self._log_lock:
            return list(self._commit_log)

    def acked_log(self) -> List[Tuple[int, str, List[StagedOp]]]:
        """The durably acknowledged prefix of the commit log."""
        with self._log_lock:
            return [
                entry for entry in self._commit_log
                if entry[0] <= self._acked_seq
            ]

    def token_result(self, token: Optional[str]) -> Optional[Dict[str, Any]]:
        """The recorded result of the acked commit named by ``token``,
        or ``None`` — the server-side idempotency check."""
        if token is None:
            return None
        with self._log_lock:
            result = self._token_results.get(token)
            return dict(result) if result is not None else None

    def export_state(self) -> Dict[str, Any]:
        """Everything a successor pipeline needs to continue this one's
        era after a supervised restart: the monotonic sequence head, the
        conflict watermarks, and the *acked* commit log with its token
        results.  Applied-but-unacked commits are deliberately absent —
        the restart truncates their WAL records, so their tokens must
        re-apply."""
        with self._log_lock:
            return {
                # the two writer-confined maps are safe here: export runs
                # only after close() has joined the writer thread
                "commit_seq": self._commit_seq,  # unguarded: writer joined
                "acked_seq": self._acked_seq,
                "last_write": dict(self._last_write),  # unguarded: writer joined
                "commit_log": [
                    entry for entry in self._commit_log
                    if entry[0] <= self._acked_seq
                ],
                "token_results": {
                    token: dict(result)
                    for token, result in self._token_results.items()
                },
            }

    def _poison_error(self, prefix: str) -> ServerError:
        if self.recoverable:
            return ServerRestarting(
                f"{prefix}: {self._fault}; the supervisor is restarting "
                f"the service — retry (idempotency tokens apply exactly "
                f"once)"
            )
        return ServerError(f"{prefix}: {self._fault}; restart the server")

    def submit(self, ops: List[StagedOp], keys: List[str],
               read_epoch: Optional[int], session_id: str,
               token: Optional[str] = None) -> Dict[str, Any]:
        """Enqueue one commit and block until it is durable (or refused).

        A full queue sheds immediately with
        :class:`~repro.errors.ServerOverloaded`; once enqueued, the
        commit always runs to an answer (the bounded queue bounds the
        wait), so an acknowledged submit is never ambiguous.  A token
        that already acked returns its recorded result without touching
        the queue."""
        cached = self.token_result(token)
        if cached is not None:
            self._c_idempotent.inc()
            cached["idempotent"] = True
            return cached
        pending = PendingCommit(ops, keys, read_epoch, session_id, token)
        with self._submit_lock:
            if self._closed:
                raise ServerError("commit pipeline is closed")
            if self._fault is not None:
                raise self._poison_error("commit pipeline failed")
            try:
                self._queue.put_nowait(pending)
            except queue.Full:
                self._c_shed.inc()
                raise ServerOverloaded(
                    f"commit queue full ({self._queue.maxsize} pending)"
                ) from None
        self._g_queue.set(self._queue.qsize())
        if self._writer_exited:
            # We enqueued while the writer was exiting: its final sweep
            # may already have run, so sweep again ourselves — this
            # fails (and wakes) our own commit if it was stranded.
            self._fail_queued(
                ServerError("commit pipeline writer has stopped")
            )
        # Defence in depth: never block forever on an acknowledgement.
        # The writer wakes every submitter even on a durability fault,
        # but if it dies anyway, fail loudly instead of hanging.
        while not pending.done.wait(1.0):
            if not self._writer.is_alive() and not pending.done.wait(1.0):
                raise ServerError(
                    "commit pipeline writer died before acknowledging; "
                    "commit outcome unknown"
                )
        if pending.error is not None:
            raise pending.error
        assert pending.result is not None
        return pending.result

    def close(self, timeout: float = 5.0) -> None:
        """Drain outstanding commits and stop the writer thread."""
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._queue.put(_STOP, timeout=timeout)
        except queue.Full:
            # A dead writer with a full queue: nothing will ever drain
            # it; the sweep below fails the stranded commits instead.
            pass
        self._writer.join(timeout)
        self._fail_queued(ServerError("commit pipeline is closed"))

    # -- writer side -------------------------------------------------------

    def _run(self) -> None:  # runs-on: writer
        try:
            stopping = False
            while not stopping and self._fault is None:
                head = self._queue.get()
                if head is _STOP:
                    break
                batch: List[PendingCommit] = [head]
                stopping = self._fill_batch(batch)
                self._g_queue.set(self._queue.qsize())
                self._process(batch)
        finally:
            # However the writer exits — clean stop, durability fault,
            # or an unexpected error — never strand a submitter: fail
            # whatever is still queued so every done.wait() returns.
            # The flag goes up *before* the sweep: a submitter that
            # enqueues after the sweep will see it and re-sweep itself.
            self._writer_exited = True
            reason: ServerError
            if self._fault is None:
                reason = ServerError(
                    "commit pipeline stopped before this commit ran"
                )
            else:
                reason = self._poison_error("commit pipeline failed")
            self._fail_queued(reason)

    def _fail_queued(self, error: ServerError) -> None:
        """Fail-and-wake every commit still sitting in the queue."""
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _STOP:
                continue
            item.error = error
            item.done.set()

    def _fill_batch(self, batch: List[PendingCommit]) -> bool:  # runs-on: writer
        """Collect up to ``max_batch`` commits, waiting ``batch_window``
        seconds for stragglers; returns True if the stop sentinel was
        seen while collecting."""
        give_up = time.monotonic() + self._batch_window
        while len(batch) < self._max_batch:
            try:
                if self._batch_window:
                    remaining = give_up - time.monotonic()
                    if remaining <= 0:
                        break
                    item = self._queue.get(timeout=remaining)
                else:
                    item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _STOP:
                return True
            batch.append(item)
        return False

    def _process(self, batch: List[PendingCommit]) -> None:  # runs-on: writer
        fault: Optional[BaseException] = None
        try:
            with self._tracer.span("server.commit", batch=str(len(batch))):
                durability = self._wal.batch() if self._wal is not None \
                    else nullcontext()
                with durability:
                    for pending in batch:
                        self._process_one(pending)
                # The batch scope has forced the WAL: everything below
                # is durable.  Only now may submitters be acknowledged
                # positively.
            self._ack_batch(batch)
        except BaseException as exc:  # noqa: BLE001 - durability fault
            # The batch's durability scope failed (e.g. an injected
            # fsync fault): commits applied in this batch are visible in
            # memory but NOT durable, so none of them may be positively
            # acknowledged.  Fail the whole batch and poison the
            # pipeline — "ack means durable" stays true at the price of
            # refusing all further writes until a restart re-establishes
            # a known-durable state (the supervisor's job when one is
            # attached; it truncates the WAL back to durable_offset, so
            # these commits cannot resurrect half-acked).
            self._fault = exc
            fault = exc
            self._c_errors.inc()
            for pending in batch:
                if pending.error is None:
                    pending.result = None
                    if self.recoverable:
                        pending.error = ServerRestarting(
                            f"commit durability failed: {exc}; the commit "
                            f"was rolled back by the supervised restart — "
                            f"retry with the same idempotency token"
                        )
                    else:
                        pending.error = ServerError(
                            f"commit durability failed: {exc}; this commit "
                            f"may not survive a restart and the pipeline is "
                            f"stopped"
                        )
        finally:
            now = time.monotonic()
            self._h_batch.observe(len(batch))
            for pending in batch:
                self._h_latency.observe((now - pending.enqueued) * 1000.0)
                pending.done.set()
            if fault is not None and self._fault_listener is not None:
                self._fault_listener(fault)

    def _ack_batch(self, batch: List[PendingCommit]) -> None:  # runs-on: writer
        """Advance the acked/durable watermarks and bind tokens — only
        ever called after the batch's durability scope succeeded."""
        if self._wal is not None:
            self._durable_offset = getattr(self._wal, "log_offset", None)
        accepted = [p for p in batch if p.seq is not None]
        if not accepted:
            return
        with self._log_lock:
            self._acked_seq = max(self._acked_seq,
                                  max(p.seq for p in accepted))
            for pending in accepted:
                if pending.token is not None and pending.result is not None:
                    self._token_results[pending.token] = dict(pending.result)
            while len(self._token_results) > MAX_TOKEN_RESULTS:
                # dicts iterate in insertion order: drop the oldest ack.
                self._token_results.pop(next(iter(self._token_results)))

    def _process_one(self, pending: PendingCommit) -> None:  # runs-on: writer
        if pending.token is not None \
                and pending.token in self._applied_tokens:
            # Double-apply guard for a token already applied this era
            # (e.g. two racing retries landing in adjacent batches).
            cached = self.token_result(pending.token)
            if cached is not None:
                cached["idempotent"] = True
                self._c_idempotent.inc()
                pending.result = cached
            else:
                pending.error = ServerError(
                    f"idempotency token {pending.token!r} is already in "
                    f"flight; its outcome is not yet durable — retry"
                )
            return
        try:
            self._validate(pending)
            result = self._apply(pending)
        except Exception as exc:  # noqa: BLE001 - relayed to submitter
            # Clean failures (conflict, consistency, a rolled-back IO
            # error) are this commit's problem alone.  BaseException —
            # a simulated process death mid-apply — deliberately falls
            # through to _process: the in-memory base can no longer be
            # trusted, so the whole pipeline must poison, not just this
            # submitter.
            if isinstance(exc, CommitConflict):
                self._c_conflicts.inc()
            else:
                self._c_errors.inc()
            pending.error = exc
            return
        self._commit_seq += 1
        pending.seq = self._commit_seq
        for key in pending.keys:
            self._last_write[key] = pending.seq
        if pending.token is not None:
            self._applied_tokens[pending.token] = pending.seq
        with self._log_lock:
            self._commit_log.append(
                (pending.seq, pending.session_id, list(pending.ops))
            )
        self._c_committed.inc()
        result.setdefault("commit_seq", pending.seq)
        pending.result = result

    def stale_keys(self, keys: List[str],  # runs-on: writer
                   read_epoch: Optional[int]) -> List[str]:
        """The subset of ``keys`` committed after ``read_epoch`` (the
        conflict witness).  Only meaningful on the writer thread, where
        the last-write map cannot move underfoot."""
        if read_epoch is None:
            return []
        return sorted(
            key for key in keys
            if self._last_write.get(key, 0) > read_epoch
        )

    def _validate(self, pending: PendingCommit) -> None:  # runs-on: writer
        """First-committer-wins: refuse the commit if any declared key
        was written after the transaction's pinned read epoch."""
        stale = self.stale_keys(pending.keys, pending.read_epoch)
        if stale:
            raise CommitConflict(
                f"write-set keys {', '.join(stale)} were committed after "
                f"read epoch {pending.read_epoch} "
                f"(head is {self._commit_seq}); retry the transaction"
            )
