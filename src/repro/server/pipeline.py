"""The single-writer commit pipeline with group commit.

All mutations of the shared knowledge base funnel through one writer
thread.  Sessions submit their staged operations as a
:class:`PendingCommit` into a bounded queue and block; the writer
drains up to ``max_batch`` commits at a time (waiting up to
``batch_window`` seconds for stragglers), applies each one through the
service's apply callback, and — when the store is a
:class:`~repro.propositions.wal.WalStore` under the ``commit`` fsync
policy — wraps the whole batch in :meth:`WalStore.batch`, so *one*
fsync makes the entire group durable.  Submitters are woken only after
that fsync: a positive acknowledgement always means durable.

Before a commit is applied, its declared write-set keys are validated
first-committer-wins: if any key was committed by another session after
this transaction's pinned ``read_epoch``, the commit is refused with
:class:`~repro.errors.CommitConflict` *without touching the knowledge
base* — a rejected commit consumes no proposition identifiers, so a
single-threaded replay of the accepted commit log reproduces the live
store exactly.

If the durability scope itself fails (an fsync fault raising
:class:`~repro.errors.PersistenceError` on batch exit), the "ack means
durable" promise cannot be kept for anything in that batch: every
submitter in the batch is failed with a typed
:class:`~repro.errors.ServerError` and the pipeline is *poisoned* —
all queued and future submits fail fast instead of building on state
that may not survive a restart.  Submitters are always woken, fault or
not; nothing ever hangs on a dead writer thread.
"""

from __future__ import annotations

import queue
import threading
import time
from contextlib import nullcontext
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.concurrency.lockdep import make_lock
from repro.errors import CommitConflict, ServerError, ServerOverloaded
from repro.obs.metrics import Namespace
from repro.obs.tracing import Tracer
from repro.propositions.wal import WalStore
from repro.server.session import StagedOp

#: Applies one commit to the knowledge base (held by the service; runs
#: on the writer thread, under the write lock, inside a
#: rollback-on-error transaction).  Receives the whole
#: :class:`PendingCommit` and returns the result dict sent back to the
#: client.
ApplyFn = Callable[["PendingCommit"], Dict[str, Any]]

_STOP = object()


class PendingCommit:
    """One session's commit, in flight through the pipeline."""

    __slots__ = ("ops", "keys", "read_epoch", "session_id",
                 "enqueued", "done", "result", "error", "seq")

    def __init__(self, ops: List[StagedOp], keys: List[str],
                 read_epoch: Optional[int], session_id: str) -> None:
        self.ops = ops
        self.keys = keys
        #: Commit sequence number the transaction read from; ``None``
        #: means an autocommit op reading the live head — those cannot
        #: conflict (there is nothing stale to protect).
        self.read_epoch = read_epoch
        self.session_id = session_id
        self.enqueued = time.monotonic()
        self.done = threading.Event()
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[BaseException] = None
        self.seq: Optional[int] = None


class CommitPipeline:
    """Bounded queue in, one writer thread out, fsync per batch."""

    def __init__(self, apply: ApplyFn, metrics: Namespace, tracer: Tracer,
                 wal: Optional[WalStore] = None,
                 max_batch: int = 8,
                 batch_window: float = 0.0,
                 max_queue: int = 128) -> None:
        self._apply = apply
        self._tracer = tracer
        self._wal = wal
        self._max_batch = max(1, max_batch)
        self._batch_window = max(0.0, batch_window)
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=max_queue)
        self._log_lock = make_lock("server.pipeline.log_lock")
        #: Accepted commits, in apply order: (seq, session_id, ops).
        #: Replaying these into a fresh ConceptBase reproduces the live
        #: knowledge base — the oracle the stress tests check against.
        self._commit_log: List[Tuple[int, str, List[StagedOp]]] = []  # guarded-by: _log_lock
        #: key -> commit seq that last wrote it (writer thread only).
        self._last_write: Dict[str, int] = {}  # guarded-by: <writer>
        self._commit_seq = 0  # guarded-by: <writer>
        self._c_committed = metrics.counter("committed")
        self._c_conflicts = metrics.counter("conflicts")
        self._c_errors = metrics.counter("errors")
        self._c_shed = metrics.counter("shed")
        self._g_queue = metrics.gauge("queue_depth")
        self._h_batch = metrics.histogram("batch_size")
        self._h_latency = metrics.histogram("latency_ms")
        #: Guards the closed-check-and-enqueue in :meth:`submit` against
        #: :meth:`close`, so no commit can ever be queued *behind* the
        #: stop sentinel (it would never be processed).
        self._submit_lock = make_lock("server.pipeline.submit_lock")
        self._closed = False  # guarded-by: _submit_lock
        #: The durability fault that poisoned the pipeline, if any.
        #: Written once by the writer, read racily by submitters — a
        #: late read just means one more commit reaches the queue before
        #: the final sweep fails it.
        self._fault: Optional[BaseException] = None  # guarded-by: <atomic>
        #: Set (before the final queue sweep) when the writer exits, so
        #: a submitter racing the sweep can fail its own commit instead
        #: of waiting on a writer that will never run it.
        self._writer_exited = False  # guarded-by: <atomic>
        self._writer = threading.Thread(
            target=self._run, name="gkbms-commit-writer", daemon=True
        )
        self._writer.start()

    # -- submitter side ----------------------------------------------------

    @property
    def commit_seq(self) -> int:
        """Sequence number of the latest accepted commit (0 = none)."""
        return self._commit_seq  # unguarded: racy int read of the head is advisory

    def commit_log(self) -> List[Tuple[int, str, List[StagedOp]]]:
        """Snapshot of the accepted commit log, in apply order."""
        with self._log_lock:
            return list(self._commit_log)

    def submit(self, ops: List[StagedOp], keys: List[str],
               read_epoch: Optional[int], session_id: str) -> Dict[str, Any]:
        """Enqueue one commit and block until it is durable (or refused).

        A full queue sheds immediately with
        :class:`~repro.errors.ServerOverloaded`; once enqueued, the
        commit always runs to an answer (the bounded queue bounds the
        wait), so an acknowledged submit is never ambiguous."""
        pending = PendingCommit(ops, keys, read_epoch, session_id)
        with self._submit_lock:
            if self._closed:
                raise ServerError("commit pipeline is closed")
            if self._fault is not None:
                raise ServerError(
                    f"commit pipeline failed: {self._fault}; "
                    f"restart the server"
                )
            try:
                self._queue.put_nowait(pending)
            except queue.Full:
                self._c_shed.inc()
                raise ServerOverloaded(
                    f"commit queue full ({self._queue.maxsize} pending)"
                ) from None
        self._g_queue.set(self._queue.qsize())
        if self._writer_exited:
            # We enqueued while the writer was exiting: its final sweep
            # may already have run, so sweep again ourselves — this
            # fails (and wakes) our own commit if it was stranded.
            self._fail_queued(
                ServerError("commit pipeline writer has stopped")
            )
        # Defence in depth: never block forever on an acknowledgement.
        # The writer wakes every submitter even on a durability fault,
        # but if it dies anyway, fail loudly instead of hanging.
        while not pending.done.wait(1.0):
            if not self._writer.is_alive() and not pending.done.wait(1.0):
                raise ServerError(
                    "commit pipeline writer died before acknowledging; "
                    "commit outcome unknown"
                )
        if pending.error is not None:
            raise pending.error
        assert pending.result is not None
        return pending.result

    def close(self, timeout: float = 5.0) -> None:
        """Drain outstanding commits and stop the writer thread."""
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._queue.put(_STOP, timeout=timeout)
        except queue.Full:
            # A dead writer with a full queue: nothing will ever drain
            # it; the sweep below fails the stranded commits instead.
            pass
        self._writer.join(timeout)
        self._fail_queued(ServerError("commit pipeline is closed"))

    # -- writer side -------------------------------------------------------

    def _run(self) -> None:  # runs-on: writer
        try:
            stopping = False
            while not stopping and self._fault is None:
                head = self._queue.get()
                if head is _STOP:
                    break
                batch: List[PendingCommit] = [head]
                stopping = self._fill_batch(batch)
                self._g_queue.set(self._queue.qsize())
                self._process(batch)
        finally:
            # However the writer exits — clean stop, durability fault,
            # or an unexpected error — never strand a submitter: fail
            # whatever is still queued so every done.wait() returns.
            # The flag goes up *before* the sweep: a submitter that
            # enqueues after the sweep will see it and re-sweep itself.
            self._writer_exited = True
            reason = (
                "commit pipeline stopped before this commit ran"
                if self._fault is None
                else f"commit pipeline failed: {self._fault}"
            )
            self._fail_queued(ServerError(reason))

    def _fail_queued(self, error: ServerError) -> None:
        """Fail-and-wake every commit still sitting in the queue."""
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _STOP:
                continue
            item.error = error
            item.done.set()

    def _fill_batch(self, batch: List[PendingCommit]) -> bool:  # runs-on: writer
        """Collect up to ``max_batch`` commits, waiting ``batch_window``
        seconds for stragglers; returns True if the stop sentinel was
        seen while collecting."""
        give_up = time.monotonic() + self._batch_window
        while len(batch) < self._max_batch:
            try:
                if self._batch_window:
                    remaining = give_up - time.monotonic()
                    if remaining <= 0:
                        break
                    item = self._queue.get(timeout=remaining)
                else:
                    item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _STOP:
                return True
            batch.append(item)
        return False

    def _process(self, batch: List[PendingCommit]) -> None:  # runs-on: writer
        try:
            with self._tracer.span("server.commit", batch=str(len(batch))):
                durability = self._wal.batch() if self._wal is not None \
                    else nullcontext()
                with durability:
                    for pending in batch:
                        self._process_one(pending)
                # The batch scope has forced the WAL: everything below
                # is durable.  Only now may submitters be acknowledged
                # positively.
        except BaseException as exc:  # noqa: BLE001 - durability fault
            # The batch's durability scope failed (e.g. an injected
            # fsync fault): commits applied in this batch are visible in
            # memory but NOT durable, so none of them may be positively
            # acknowledged.  Fail the whole batch and poison the
            # pipeline — "ack means durable" stays true at the price of
            # refusing all further writes until a restart re-establishes
            # a known-durable state.
            self._fault = exc
            self._c_errors.inc()
            for pending in batch:
                if pending.error is None:
                    pending.result = None
                    pending.error = ServerError(
                        f"commit durability failed: {exc}; this commit "
                        f"may not survive a restart and the pipeline is "
                        f"stopped"
                    )
        finally:
            now = time.monotonic()
            self._h_batch.observe(len(batch))
            for pending in batch:
                self._h_latency.observe((now - pending.enqueued) * 1000.0)
                pending.done.set()

    def _process_one(self, pending: PendingCommit) -> None:  # runs-on: writer
        try:
            self._validate(pending)
            result = self._apply(pending)
        except BaseException as exc:  # noqa: BLE001 - relayed to submitter
            if isinstance(exc, CommitConflict):
                self._c_conflicts.inc()
            else:
                self._c_errors.inc()
            pending.error = exc
            return
        self._commit_seq += 1
        pending.seq = self._commit_seq
        for key in pending.keys:
            self._last_write[key] = pending.seq
        with self._log_lock:
            self._commit_log.append(
                (pending.seq, pending.session_id, list(pending.ops))
            )
        self._c_committed.inc()
        result.setdefault("commit_seq", pending.seq)
        pending.result = result

    def stale_keys(self, keys: List[str],  # runs-on: writer
                   read_epoch: Optional[int]) -> List[str]:
        """The subset of ``keys`` committed after ``read_epoch`` (the
        conflict witness).  Only meaningful on the writer thread, where
        the last-write map cannot move underfoot."""
        if read_epoch is None:
            return []
        return sorted(
            key for key in keys
            if self._last_write.get(key, 0) > read_epoch
        )

    def _validate(self, pending: PendingCommit) -> None:  # runs-on: writer
        """First-committer-wins: refuse the commit if any declared key
        was written after the transaction's pinned read epoch."""
        stale = self.stale_keys(pending.keys, pending.read_epoch)
        if stale:
            raise CommitConflict(
                f"write-set keys {', '.join(stale)} were committed after "
                f"read epoch {pending.read_epoch} "
                f"(head is {self._commit_seq}); retry the transaction"
            )
