"""Deterministic fault injection for the durability layer.

Crash recovery cannot be trusted until the crash paths have actually
run.  This module makes them run *in process* and *reproducibly*: a
:class:`FaultyIO` wraps the :class:`~repro.atomicio.FileIO` interface
the WAL and snapshot writers already use, counts every state-changing
IO operation, and consults a :class:`FaultPlan` to decide, per
operation, whether to

- succeed normally,
- fail cleanly (an ``OSError``-shaped :class:`WriteFault` the caller
  can handle and recover from),
- lie about fsync (report success without forcing anything), or
- **crash the process**: write a seeded-random *prefix* of the data
  (a torn write, exactly what a power cut leaves behind) and raise
  :class:`CrashPoint`; every subsequent operation on the same IO raises
  too, because a dead process issues no more IO.

:class:`CrashPoint` deliberately derives from ``BaseException`` so no
library ``except Exception`` handler can swallow the simulated death —
the kill propagates to the test harness the way SIGKILL would.

The recovery property tests sweep ``crash_at`` over the whole IO-op
range of a workload and assert that reopening the store always yields
exactly the last committed prefix.  Plans are pure data; the same seed
always produces the same torn-prefix lengths, so every failure is
replayable (the discipline of :mod:`repro.scenario.workload`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.atomicio import REAL_IO, FileIO
from repro.errors import PersistenceError


class CrashPoint(BaseException):
    """The simulated process death.

    A ``BaseException`` (like ``KeyboardInterrupt``) so that no
    ``except Exception`` in library or workload code can absorb it.
    """


class WriteFault(OSError):
    """A clean, recoverable IO failure injected by a :class:`FaultPlan`."""


@dataclass
class FaultPlan:
    """Pure-data schedule of injected faults, keyed by IO-op index.

    Operation indexes are 1-based and count only state-changing calls
    (writes, fsyncs, replaces, removes, truncates) — reads are free.
    """

    #: Kill the process at this op (the op may tear; later ops never run).
    crash_at: Optional[int] = None
    #: When crashing mid-write, leave a seeded-random prefix on disk.
    torn_writes: bool = True
    #: Raise a clean :class:`WriteFault` at this op instead of writing.
    fail_write_at: Optional[int] = None
    #: Fail every fsync from this op on (EIO-style broken disk): the
    #: targeted way to fault a *durability boundary* — group-commit
    #: batches defer fsyncs to batch exit, so an arbitrary
    #: ``fail_write_at`` usually lands on an append instead.
    fail_fsyncs_from: Optional[int] = None
    #: Make every fsync a silent no-op (the lying-disk scenario).
    lying_fsyncs: bool = False
    #: Start lying about fsync only from this op on (``None`` = honest
    #: unless ``lying_fsyncs``): the disk that degrades mid-run.
    lying_fsyncs_from: Optional[int] = None
    #: Seed for the torn-prefix lengths; same plan -> same bytes on disk.
    seed: int = 0

    def action(self, op: int) -> str:
        """``ok`` | ``crash`` | ``fail`` for the op with this index."""
        if self.crash_at is not None and op >= self.crash_at:
            return "crash"
        if self.fail_write_at is not None and op == self.fail_write_at:
            return "fail"
        return "ok"

    def lies_at(self, op: int) -> bool:
        """Whether the fsync with this op index silently lies."""
        if self.lying_fsyncs:
            return True
        return self.lying_fsyncs_from is not None and op >= self.lying_fsyncs_from

    def fsync_fails_at(self, op: int) -> bool:
        """Whether the fsync with this op index raises cleanly."""
        return self.fail_fsyncs_from is not None and op >= self.fail_fsyncs_from


@dataclass
class FaultyIO(FileIO):
    """A :class:`FileIO` that executes a :class:`FaultPlan`.

    Wraps a real IO (writes go to actual files, so recovery tests can
    reopen the same path with a clean IO afterwards) while counting
    operations and injecting the planned faults deterministically.
    """

    plan: FaultPlan = field(default_factory=FaultPlan)
    real: FileIO = field(default_factory=lambda: REAL_IO)
    ops: int = 0
    crashed: bool = False
    counters: Dict[str, int] = field(default_factory=lambda: {
        "writes": 0, "fsyncs": 0, "torn_writes": 0,
        "lied_fsyncs": 0, "failed_writes": 0,
    })

    # -- bookkeeping -------------------------------------------------------

    def _tick(self) -> str:
        if self.crashed:
            raise CrashPoint("process already crashed; no further IO")
        self.ops += 1
        action = self.plan.action(self.ops)
        if action == "crash":
            self.crashed = True
        return action

    def _torn_prefix(self, data: bytes) -> bytes:
        rng = random.Random((self.plan.seed << 20) ^ self.ops)
        return data[: rng.randrange(0, len(data))] if data else data

    # -- read-side (never faulted; a dead process still leaves its files) --

    def exists(self, path: str) -> bool:
        return self.real.exists(path)

    def size(self, path: str) -> int:
        return self.real.size(path)

    def read_bytes(self, path: str) -> bytes:
        return self.real.read_bytes(path)

    def open_append(self, path: str):
        if self.crashed:
            raise CrashPoint("process already crashed; no further IO")
        return self.real.open_append(path)

    def open_truncate(self, path: str):
        if self.crashed:
            raise CrashPoint("process already crashed; no further IO")
        return self.real.open_truncate(path)

    def close(self, handle) -> None:
        self.real.close(handle)

    # -- write-side (faulted) ----------------------------------------------

    def write(self, handle, data: bytes) -> None:
        action = self._tick()
        if action == "crash":
            if self.plan.torn_writes:
                self.counters["torn_writes"] += 1
                self.real.write(handle, self._torn_prefix(data))
            raise CrashPoint(f"crashed during write (op {self.ops})")
        if action == "fail":
            self.counters["failed_writes"] += 1
            raise WriteFault(f"injected write failure (op {self.ops})")
        self.counters["writes"] += 1
        self.real.write(handle, data)

    def fsync(self, handle) -> None:
        action = self._tick()
        if action == "crash":
            raise CrashPoint(f"crashed during fsync (op {self.ops})")
        if action == "fail" or self.plan.fsync_fails_at(self.ops):
            self.counters["failed_writes"] += 1
            raise WriteFault(f"injected fsync failure (op {self.ops})")
        if self.plan.lies_at(self.ops):
            self.counters["lied_fsyncs"] += 1
            return
        self.counters["fsyncs"] += 1
        self.real.fsync(handle)

    def write_bytes(self, path: str, data: bytes) -> None:
        action = self._tick()
        if action == "crash":
            if self.plan.torn_writes:
                self.counters["torn_writes"] += 1
                try:
                    self.real.write_bytes(path, self._torn_prefix(data))
                except OSError:
                    pass
            raise CrashPoint(f"crashed during write_bytes (op {self.ops})")
        if action == "fail":
            self.counters["failed_writes"] += 1
            raise WriteFault(f"injected write failure (op {self.ops})")
        self.counters["writes"] += 1
        self.real.write_bytes(path, data)

    def replace(self, src: str, dst: str) -> None:
        action = self._tick()
        if action == "crash":
            raise CrashPoint(f"crashed before replace (op {self.ops})")
        if action == "fail":
            self.counters["failed_writes"] += 1
            raise WriteFault(f"injected replace failure (op {self.ops})")
        self.real.replace(src, dst)

    def remove(self, path: str) -> None:
        action = self._tick()
        if action == "crash":
            raise CrashPoint(f"crashed before remove (op {self.ops})")
        if action == "fail":
            self.counters["failed_writes"] += 1
            raise WriteFault(f"injected remove failure (op {self.ops})")
        self.real.remove(path)

    def truncate(self, path: str, size: int) -> None:
        action = self._tick()
        if action == "crash":
            raise CrashPoint(f"crashed before truncate (op {self.ops})")
        if action == "fail":
            self.counters["failed_writes"] += 1
            raise WriteFault(f"injected truncate failure (op {self.ops})")
        self.real.truncate(path, size)


def count_ops(run, *args, **kwargs) -> int:
    """Run ``run(io, *args, **kwargs)`` under a fault-free counting IO
    and return how many state-changing IO ops it issued — the op-range
    a crash sweep should cover."""
    io = FaultyIO(FaultPlan())
    run(io, *args, **kwargs)
    return io.ops


__all__ = [
    "CrashPoint", "FaultPlan", "FaultyIO", "WriteFault",
    "PersistenceError", "count_ops",
]
