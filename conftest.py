"""Repo-root pytest configuration.

Makes ``src/`` importable even when the package has not been installed
(useful in offline environments where ``pip install -e .`` cannot fetch
build dependencies; ``python setup.py develop`` is the offline
equivalent), and exposes the concurrency sanitizer to tests:

- running the suite with ``REPRO_LOCKDEP=1`` arms the runtime lockdep
  sanitizer process-wide (the ``server-smoke`` CI job does this), and a
  session-end hook fails the run if any lock-order cycle was observed;
- the ``lockdep_manager`` fixture installs a *fresh* manager for one
  test regardless of the environment, so targeted tests can assert on
  exactly the edges and cycles their own scenario produced.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


@pytest.fixture
def lockdep_manager():
    """A fresh LockDep installed for the duration of one test."""
    from repro.analysis.concurrency import lockdep

    manager = lockdep.LockDep()
    restore = lockdep.install(manager)
    try:
        yield manager
    finally:
        restore()


def pytest_sessionfinish(session, exitstatus):
    """With ``REPRO_LOCKDEP=1``, a cycle anywhere in the run is a
    failure even if every individual test passed — that is the point
    of the sanitizer."""
    if os.environ.get("REPRO_LOCKDEP", "") in ("", "0"):
        return
    from repro.analysis.concurrency import lockdep

    manager = lockdep.manager()
    if manager is None:
        return
    cycles = manager.cycles()
    if cycles:
        lines = [" → ".join(c.nodes) + f"  ({c.witness})" for c in cycles]
        session.config.pluginmanager.get_plugin("terminalreporter").write_line(
            "lockdep: potential deadlock cycle(s) observed:\n  "
            + "\n  ".join(lines),
            red=True,
        )
        session.exitstatus = 1
