"""Perf-5 — configuration derivation cost vs history length (3.3.2).

"A frequent operation on a GKB will be the configuration of a complete
derivation structure and its subsequent projection on one level, e.g.,
'configure the latest complete DBPL database program system version'."

Workload: decision histories of growing length (N independent entity
hierarchies, each mapped by move-down; every third mapping is
backtracked and remapped to exercise version exclusion).  Measured:
deriving the latest complete implementation configuration.  Expected
shape: derivation cost grows with history length, stays interactive at
prototype scale, and the derived configuration always excludes the
retracted versions and is complete.
"""

import pytest

from repro.core import GKBMS

SIZES = [4, 10, 22]


def build_history(hierarchies: int) -> GKBMS:
    gkbms = GKBMS()
    gkbms.register_standard_library()
    blocks = []
    for index in range(hierarchies):
        blocks.append(
            f"entity class Base{index} with\n"
            f"  owner : Base{index}\n"
            f"end\n"
            f"entity class Leaf{index} isa Base{index} with\n"
            f"  detail : Base{index}\n"
            f"end\n"
        )
    gkbms.import_design("\n".join(blocks))
    records = []
    for index in range(hierarchies):
        records.append(gkbms.execute(
            "DecMoveDown", {"hierarchy": f"Base{index}"},
            tool="MoveDownMapper",
        ))
    for index in range(0, hierarchies, 3):
        gkbms.backtracker.retract(records[index].did)
        gkbms.replayer.replay(records[index])
    return gkbms


@pytest.fixture(scope="module")
def histories():
    return {size: build_history(size) for size in SIZES}


@pytest.mark.parametrize("size", SIZES)
def test_perf_configuration(benchmark, histories, size):
    gkbms = histories[size]

    def derive():
        vm = gkbms.versions()
        return vm.configure("implementation")

    config = benchmark(derive)
    assert config.complete
    # every hierarchy contributes its leaf relation
    assert sum(1 for name in config.objects if name.endswith("Rel")) == size
    # retracted versions excluded
    assert not any("~" in name for name in config.objects)


def test_configuration_reflects_retraction():
    gkbms = build_history(4)
    vm = gkbms.versions()
    before = vm.configure("implementation")
    victim = gkbms.decisions.order[-1]
    record = gkbms.decisions.records[victim]
    if not record.is_retracted:
        gkbms.backtracker.retract(victim)
    after = gkbms.versions().configure("implementation")
    assert len(after.objects) < len(before.objects)
    assert not after.complete
    assert set(record.inputs.values()) <= set(after.missing)
    print(f"\nPerf-5 config size before={len(before.objects)} "
          f"after retraction={len(after.objects)}; "
          f"missing={after.missing}")
