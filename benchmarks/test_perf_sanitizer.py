"""Perf-9 — the runtime lockdep sanitizer (PR 6).

Two claims:

- **Overhead**: the seeded concurrent workload under the sanitizer
  stays within 2× of the bare-primitive wall clock (the ISSUE bound);
  the tracked wrappers add one dict/stack touch per lock operation and
  the disabled path adds nothing at all.
- **Structure** (gated in CI): an armed stress run observes a non-empty
  acquisition graph — the sanitizer is actually watching, not idling —
  and zero lock-order cycles in the service tier.
"""

import time

from repro.scenario.workload import ConcurrentLoadGenerator
from repro.server.client import LocalClient
from repro.server.service import GKBMSService

THREADS = 4
OPS_PER_THREAD = 15


def run_load(service, threads=THREADS, ops=OPS_PER_THREAD, seed=11):
    generator = ConcurrentLoadGenerator(
        client_factory=lambda: LocalClient(service),
        threads=threads,
        ops_per_thread=ops,
        seed=seed,
    )
    return generator.run()


def _timed_run():
    """One full workload on a fresh service; returns (seconds, stats)."""
    service = GKBMSService(batch_window=0.002)
    start = time.perf_counter()
    try:
        stats = run_load(service)
    finally:
        service.close()
    return time.perf_counter() - start, stats


def test_perf_lockdep_overhead(lockdep_manager):
    """Tracked-primitive wall clock vs bare, best of three each.

    The fixture arms the sanitizer for the whole test; the *bare* runs
    restore the unarmed state around service construction so their
    locks really are plain threading primitives.
    """
    from repro.analysis.concurrency import lockdep

    bare_times, tracked_times = [], []
    for _ in range(3):
        restore = lockdep.install(None)
        try:
            elapsed, stats = _timed_run()
        finally:
            restore()
        assert stats.unexpected_errors == 0
        bare_times.append(elapsed)

        elapsed, stats = _timed_run()
        assert stats.unexpected_errors == 0
        tracked_times.append(elapsed)

    bare, tracked = min(bare_times), min(tracked_times)
    # < 2x, with a small absolute floor so a micro-fast bare run on an
    # idle machine cannot fail the ratio on scheduler noise alone
    assert tracked < max(2.0 * bare, bare + 0.5), (
        f"lockdep overhead {tracked / bare:.2f}x "
        f"(bare {bare * 1000:.1f}ms, tracked {tracked * 1000:.1f}ms)"
    )


def test_sanitizer_edge_and_cycle_counts(lockdep_manager, perf_counters):
    """CI-gated structural claim: the armed stress run records real
    acquisition edges and not one lock-order cycle."""
    service = GKBMSService(batch_window=0.002)
    try:
        stats = run_load(service, threads=8, ops=25, seed=42)
        snapshot = service.registry.snapshot("sanitizer.")
    finally:
        service.close()

    assert stats.unexpected_errors == 0
    edges = lockdep_manager.edges()
    cycles = lockdep_manager.cycles()
    assert len(edges) >= 1
    assert cycles == []
    assert snapshot["sanitizer.order_edges"] == len(edges)
    assert snapshot["sanitizer.lock_cycles"] == 0

    perf_counters(
        lockdep_order_edges=len(edges),
        lockdep_cycles=len(cycles),
        requests=stats.requests,
    )
