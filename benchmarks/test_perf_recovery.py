"""Perf-10 — crash-survivable service tier (PR 8).

Measures what recovery costs and gates what it must never lose:

- **Supervised MTTR**: a durability fault poisons the pipeline under a
  live client; the :class:`~repro.server.supervisor.ServiceSupervisor`
  quiesces, truncates to the durable watermark, replays the WAL and
  resumes.  The bench times the full client-visible outage (fault to
  successful retried commit) and the gate bounds the supervisor's own
  ``server.supervisor.mttr_ms`` generously — wall clocks vary, losing
  acked commits does not.
- **Chaos-matrix counts**: one seed of every strict fault kind through
  the :class:`~repro.scenario.chaos.ChaosHarness`; the structural
  gates are machine-independent — recovered rows equal to the acked
  oracle replay, zero acked commits lost, exactly-once for the
  dropped-client retry.

Counters land in ``BENCH_PR8.json`` via ``--bench-json`` (see
``benchmarks/conftest.py``): per-kind acked/applied commit counts,
unsynced bytes lost to the power cut, and the supervisor's restart and
recovery totals.
"""

import pytest

from repro.conceptbase import ConceptBase
from repro.faults import FaultPlan, FaultyIO
from repro.obs.metrics import MetricsRegistry
from repro.propositions.wal import WalStore
from repro.scenario.chaos import STRICT_KINDS, ChaosHarness, replay_commit_log
from repro.server.client import LocalClient, RetryPolicy
from repro.server.service import GKBMSService
from repro.server.supervisor import ServiceSupervisor

SEED = 0
#: Generous ceiling on the supervisor's measured recovery time.  The
#: point is boundedness (no hung recovery, no unbounded backoff), not a
#: wall-clock race: real MTTR here is tens of milliseconds.
MTTR_CEILING_MS = 5000.0
PRE_FAULT_COMMITS = 6
POST_FAULT_COMMITS = 4


def supervised_fault_cycle(wal_path):
    """One full outage: commits, fsync fault, supervised restart,
    retried commits on the recovered service.  Returns (service,
    registry) with the supervisor already joined."""
    plan = FaultPlan(seed=SEED)
    io = FaultyIO(plan)
    registry = MetricsRegistry()
    store = WalStore(wal_path, fsync="commit", io=io, registry=registry)
    service = GKBMSService(ConceptBase(store=store, registry=registry))
    supervisor = ServiceSupervisor(
        service, backoff_base=0.001, backoff_cap=0.01, seed=SEED
    )
    client = LocalClient(
        service, retry=RetryPolicy(seed=SEED, base=0.001, cap=0.01)
    )
    client.tell("TELL Doc IN SimpleClass END")
    for n in range(PRE_FAULT_COMMITS):
        client.tell(f"TELL Pre{n} IN Doc END")
    plan.fail_fsyncs_from = io.ops + 1
    for n in range(POST_FAULT_COMMITS):
        # The first of these hits the poisoned pipeline; its tokened
        # retry waits out the restart and applies exactly once.
        client.tell(f"TELL Post{n} IN Doc END")
    supervisor.join()
    return service, registry


# ---------------------------------------------------------------------------
# Part A: supervised recovery — timed outage, bounded MTTR
# ---------------------------------------------------------------------------

def test_perf_supervised_recovery_mttr(benchmark, tmp_path):
    counter = iter(range(10**6))

    def cycle():
        service, registry = supervised_fault_cycle(
            str(tmp_path / f"mttr{next(counter)}.wal")
        )
        try:
            return registry.snapshot("server.supervisor")
        finally:
            service.drain()

    snapshot = benchmark(cycle)
    assert snapshot["server.supervisor.recoveries"] >= 1
    assert snapshot["server.supervisor.read_only_degrades"] == 0
    mttr = snapshot["server.supervisor.mttr_ms"]
    assert mttr["count"] >= 1
    assert mttr["max"] < MTTR_CEILING_MS


# ---------------------------------------------------------------------------
# Part B: structural gates (run in CI with --benchmark-disable)
# ---------------------------------------------------------------------------

def test_recovery_counts_zero_lost_acked(tmp_path, perf_counters,
                                         registry_metrics):
    """The Perf-10 acceptance bar: a supervised restart keeps every
    commit a client was told about, exactly once, and says how long it
    was down."""
    service, registry = supervised_fault_cycle(str(tmp_path / "gate.wal"))
    try:
        assert service.status == "serving"
        log = service.pipeline.commit_log()
        live = service.cb.propositions.store.rows()
        oracle = replay_commit_log(log)
        assert live == oracle.propositions.store.rows(), \
            "recovered base diverged from its own commit log"
        names = [f"Pre{n}" for n in range(PRE_FAULT_COMMITS)] + \
                [f"Post{n}" for n in range(POST_FAULT_COMMITS)]
        for name in names:
            hits = sum(
                1 for entry in log
                if any(f"TELL {name} " in arg for _k, arg in entry[2])
            )
            assert hits == 1, f"{name}: applied {hits} times"
        snapshot = registry.snapshot("server.supervisor")
        assert snapshot["server.supervisor.faults"] >= 1
        assert snapshot["server.supervisor.failed_recoveries"] == 0
        perf_counters(
            recovery_commits_total=len(log),
            recovery_restarts=snapshot["server.supervisor.restarts"],
            recovery_mttr_ms_max=snapshot["server.supervisor.mttr_ms"]["max"],
        )
        registry_metrics(registry, prefix="server.supervisor")
    finally:
        service.drain()


def test_chaos_matrix_counts_zero_lost_acked(tmp_path, perf_counters):
    """One seed of every strict fault kind: the reboot oracle holds —
    every acked commit survives, no unacked commit is visible."""
    totals = {"acked": 0, "applied": 0, "unsynced_bytes_lost": 0}
    for kind in STRICT_KINDS:
        harness = ChaosHarness(
            str(tmp_path / f"{kind}.wal"), kind, SEED
        )
        report = harness.run()
        assert report.rows_equal, f"{kind}: lost acked commits"
        assert report.lost_acked == 0
        if kind == "client_drop":
            assert report.exactly_once is True
        totals["acked"] += report.acked_commits
        totals["applied"] += report.applied_commits
        totals["unsynced_bytes_lost"] += report.unsynced_bytes_lost
    assert totals["acked"] > 0
    perf_counters(
        chaos_kinds=len(STRICT_KINDS),
        chaos_acked_commits=totals["acked"],
        chaos_applied_commits=totals["applied"],
        chaos_unsynced_bytes_lost=totals["unsynced_bytes_lost"],
    )
