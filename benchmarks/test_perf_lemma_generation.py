"""Perf-1 — lemma generation in the inference engines (section 3.1).

"The inference engines may enhance their performance by lemma
generation; this capability is, e.g., used in creating dependency graph
objects of the GKBMS."

Workload: a parent-chain knowledge base and a recursive ancestor rule;
the dependency-graph-style access pattern asks the same reachability
goals repeatedly.  Expected shape: with the lemma cache on, repeated
question answering is faster and prover call counts collapse; both
modes return identical answers.
"""

import pytest

from repro.deduction import RuleEngine, parse_literal
from repro.propositions import PropositionProcessor

CHAIN = 40
REPEATS = 5


def build_kb(chain: int) -> RuleEngine:
    proc = PropositionProcessor()
    proc.define_class("Node")
    previous = None
    for index in range(chain):
        name = f"n{index}"
        proc.tell_individual(name, in_class="Node")
        if previous is not None:
            proc.tell_link(previous, "parent", name)
        previous = name
    engine = RuleEngine(proc)
    engine.add_rule(
        "attr(?x, anc, ?y) :- attr(?x, parent, ?y).",
        name="base", document=False,
    )
    engine.add_rule(
        "attr(?x, anc, ?z) :- attr(?x, parent, ?y), attr(?y, anc, ?z).",
        name="step", document=False,
    )
    return engine


def query_workload(engine: RuleEngine, lemmas: bool):
    prover = engine.prover(lemmas=lemmas, max_depth=4 * CHAIN)
    goal = parse_literal("attr(n0, anc, ?y)")
    answers = None
    for _round in range(REPEATS):
        answers = prover.answers(goal)
    return answers, prover.stats


@pytest.fixture(scope="module")
def engine():
    return build_kb(CHAIN)


@pytest.mark.parametrize("lemmas", [False, True], ids=["lemmas-off", "lemmas-on"])
def test_perf_lemma_generation(benchmark, engine, lemmas):
    answers, stats = benchmark(query_workload, engine, lemmas)
    assert len(answers) == CHAIN - 1  # n0 reaches every later node
    if lemmas:
        assert stats["lemma_hits"] > 0
    else:
        assert stats["lemma_hits"] == 0


def test_lemma_answers_identical(engine):
    with_lemmas, _ = query_workload(engine, True)
    without, _ = query_workload(engine, False)
    assert sorted(with_lemmas) == sorted(without)


def test_lemma_call_counts_collapse(engine):
    _, stats_on = query_workload(engine, True)
    _, stats_off = query_workload(engine, False)
    # repeated proofs hit the cache: far fewer resolution calls
    assert stats_on["calls"] < stats_off["calls"] / 2
    print(f"\nPerf-1 prover calls: lemmas-on={stats_on['calls']} "
          f"lemmas-off={stats_off['calls']}")
