"""Perf-9 — delta maintenance of derived state (PR 7 tentpole).

Two ablations of ``incremental`` maintenance, both asserted through
machine-independent structural counters:

- **Closure caches under a mixed workload** (tells, retracts and
  closure queries interleaved): with delta maintenance the six closure
  families are patched in place, so cache *invalidations* — each one a
  thrown-away family another query must rebuild — drop by at least 5x
  against the epoch-invalidation ablation, on identical answers.
- **IDB maintenance on the retract path**: retracting facts one at a
  time from a materialised rule base re-fires every rule from scratch
  per epoch in the ablation, while DRed touches only the doomed and
  rederived region — at least 3x fewer rule firings, on an identical
  final fixpoint.
"""

import pytest

from repro.deduction.kb import RuleEngine
from repro.propositions import PropositionProcessor

# ---------------------------------------------------------------------------
# Part A: closure-cache invalidations on a mixed workload
# ---------------------------------------------------------------------------

HIERARCHIES = 3
MIXED_OBJECTS = 90


def mixed_workload(incremental: bool, objects: int = MIXED_OBJECTS):
    """Interleave classification tells, attribute links, isa edges and
    the closure queries that want to stay warm between them."""
    proc = PropositionProcessor(optimise=True, incremental=incremental)
    for h in range(HIERARCHIES):
        proc.define_class(f"Base{h}")
        proc.define_class(f"Mid{h}", isa=[f"Base{h}"])
        proc.define_class(f"Leaf{h}", isa=[f"Mid{h}"])
    answers = []
    for index in range(objects):
        h = index % HIERARCHIES
        name = f"obj{index}"
        proc.tell_individual(name, in_class=f"Leaf{h}")
        if index % 7 == 3:
            proc.tell_instanceof(name, f"Mid{(h + 1) % HIERARCHIES}")
        if index % 11 == 5:
            proc.tell_link(name, "peer", f"obj{index - 1}",
                           pid=f"peer{index}")
        if index % 13 == 8 and f"peer{index - 3}" in proc.store:
            proc.retract(f"peer{index - 3}")
        # the queries whose caches the tells are churning
        answers.append((
            sorted(proc.classes_of(name)),
            sorted(proc.instances_of(f"Base{h}")),
            sorted(proc.generalizations(f"Leaf{h}")),
            proc.is_class(name),
        ))
    return proc, answers


@pytest.mark.parametrize("incremental", [False, True],
                         ids=["epoch-invalidate", "delta-maintain"])
def test_perf_mixed_maintenance(benchmark, incremental):
    proc, answers = benchmark(mixed_workload, incremental, 45)
    assert len(answers) == 45


def test_maintenance_invalidation_ratio(perf_counters, registry_metrics):
    """Acceptance (Perf-9a): >=5x fewer closure-cache invalidations on
    the mixed workload, with identical answers along the way."""
    maintained, answers_maintained = mixed_workload(True)
    ablation, answers_ablation = mixed_workload(False)
    assert answers_maintained == answers_ablation
    invalidations_maintained = maintained.stats["closure_invalidations"]
    invalidations_ablation = ablation.stats["closure_invalidations"]
    assert invalidations_maintained * 5 <= invalidations_ablation
    assert maintained.stats["closure_delta_applied"] > 0
    perf_counters(
        closure_invalidations_maintained=invalidations_maintained,
        closure_invalidations_ablation=invalidations_ablation,
        closure_delta_applied=maintained.stats["closure_delta_applied"],
        closure_delta_evictions=maintained.stats["closure_delta_evictions"],
        closure_hits_maintained=maintained.stats["closure_hits"],
        closure_misses_maintained=maintained.stats["closure_misses"],
        closure_misses_ablation=ablation.stats["closure_misses"],
    )
    registry_metrics(maintained.registry, prefix="proposition")
    print(f"\nPerf-9a closure invalidations over a {MIXED_OBJECTS}-object "
          f"mixed workload: maintained={invalidations_maintained}, "
          f"epoch-invalidation={invalidations_ablation}")


def test_mixed_workload_closure_answers_identical():
    """Every closure family agrees between the two regimes at the end."""
    maintained, _ = mixed_workload(True, 40)
    ablation, _ = mixed_workload(False, 40)
    assert maintained.summary() == ablation.summary()
    for h in range(HIERARCHIES):
        for cls in (f"Base{h}", f"Mid{h}", f"Leaf{h}"):
            assert maintained.instances_of(cls) == ablation.instances_of(cls)
            assert (maintained.specializations(cls)
                    == ablation.specializations(cls))
            assert (maintained.generalizations(cls)
                    == ablation.generalizations(cls))
    for index in range(40):
        name = f"obj{index}"
        assert maintained.classes_of(name) == ablation.classes_of(name)


# ---------------------------------------------------------------------------
# Part B: rule firings on the retract path
# ---------------------------------------------------------------------------

CHAIN = 28        # individuals in the linked chain
RETRACTS = 10     # links retracted one at a time


def loaded_engine(incremental: bool):
    """A recursive reachability program over a chain of links."""
    proc = PropositionProcessor()
    proc.define_class("Person")
    engine = RuleEngine(proc, incremental=incremental)
    engine.add_rule("attr(?x, reach, ?y) :- attr(?x, link, ?y).",
                    name="reach_base", document=False)
    engine.add_rule(
        "attr(?x, reach, ?z) :- attr(?x, link, ?y), attr(?y, reach, ?z).",
        name="reach_step", document=False)
    for index in range(CHAIN):
        proc.tell_individual(f"u{index}", in_class="Person")
    for index in range(CHAIN - 1):
        proc.tell_link(f"u{index}", "link", f"u{index + 1}",
                       pid=f"lnk{index}")
    engine.materialise()
    return proc, engine


def retract_sweep(proc, engine):
    """Retract links off the chain tail, re-materialising after each."""
    for step in range(RETRACTS):
        proc.retract(f"lnk{CHAIN - 2 - step}")
        engine.materialise()
    return engine.materialise()


def test_retract_path_fires_fewer_rules(perf_counters, registry_metrics):
    """Acceptance (Perf-9b): >=3x fewer rule firings across the retract
    sweep, on an identical final fixpoint."""
    proc_m, engine_m = loaded_engine(True)
    proc_a, engine_a = loaded_engine(False)
    base_m = engine_m.stats["rule_firings"]
    base_a = engine_a.stats["rule_firings"]
    idb_m = retract_sweep(proc_m, engine_m)
    idb_a = retract_sweep(proc_a, engine_a)
    for pred in set(idb_m.predicates()) | set(idb_a.predicates()):
        assert idb_m.rows(pred) == idb_a.rows(pred), pred
    firings_maintained = engine_m.stats["rule_firings"] - base_m
    firings_ablation = engine_a.stats["rule_firings"] - base_a
    assert firings_maintained * 3 <= firings_ablation
    assert engine_m.stats["idb_refreshes"] >= RETRACTS
    assert engine_m.stats["materialisations"] == 1
    perf_counters(
        retract_rule_firings_maintained=firings_maintained,
        retract_rule_firings_ablation=firings_ablation,
        overdeletions=engine_m.stats["overdeletions"],
        rederivations=engine_m.stats["rederivations"],
        delta_applies=engine_m.stats["delta_applies"],
    )
    registry_metrics(engine_m.registry, prefix="deduction")
    print(f"\nPerf-9b rule firings across {RETRACTS} retracts on a "
          f"{CHAIN}-node chain: maintained={firings_maintained}, "
          f"rebuild={firings_ablation}")


def test_retract_sweep_equivalence_every_step():
    """The maintained IDB equals the rebuilt IDB after *every* retract,
    not just at the end."""
    proc_m, engine_m = loaded_engine(True)
    proc_a, engine_a = loaded_engine(False)
    for step in range(RETRACTS):
        victim = f"lnk{CHAIN - 2 - step}"
        proc_m.retract(victim)
        proc_a.retract(victim)
        idb_m = engine_m.materialise()
        idb_a = engine_a.materialise()
        for pred in set(idb_m.predicates()) | set(idb_a.predicates()):
            assert idb_m.rows(pred) == idb_a.rows(pred), (pred, step)
