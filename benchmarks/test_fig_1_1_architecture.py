"""Fig 1-1 — the DAIDA architecture.

Rebuilds the full multi-layer pipeline the architecture diagram shows:
a CML world model, a system model embedded in it, a TaxisDL conceptual
design, and DBPL programs — with the GKBMS documenting the mapping
decisions that connect the layers, and assistants (tools) attached to
the decision classes.
"""

from repro.core import GKBMS
from repro.scenario import (
    DOCUMENT_DESIGN,
    build_system_model,
    build_world_model,
)


def build_architecture() -> GKBMS:
    gkbms = GKBMS()
    gkbms.register_standard_library()
    build_world_model(gkbms)
    build_system_model(gkbms)
    gkbms.import_design(DOCUMENT_DESIGN)
    gkbms.processor.tell_link("Papers", "models", "Document")
    gkbms.execute(
        "DecMoveDown", {"hierarchy": "Papers"}, tool="MoveDownMapper",
        params={"only": ["Invitations"],
                "names": {"Invitations": "InvitationRel"}},
    )
    return gkbms


def test_fig_1_1_architecture(benchmark):
    gkbms = benchmark(build_architecture)
    nav = gkbms.navigator()

    # the three life-cycle levels of the architecture are populated
    assert "Meeting" in nav.status_view("requirements")
    assert "Papers" in nav.status_view("design")
    assert "InvitationRel" in nav.status_view("implementation")

    # layers are interrelated: system embedded in world, design models
    # world, implementation implements design
    proc = gkbms.processor
    assert proc.attributes_of("MeetingRecord", label="models")
    assert proc.attributes_of("Papers", label="models")
    assert nav.interrelations("InvitationRel")["implements"] == ["Invitations"]

    # assistants (tools) are registered and reachable from decisions
    assert "MoveDownMapper" in gkbms.tools.names()
    matches = gkbms.decisions.applicable_decisions("Papers")
    assert any("MoveDownMapper" in tools for _dc, _r, tools in matches)

    # the GKBMS documented the cross-level decision
    assert len(gkbms.decisions.order) == 1

    print("\nFig 1-1 levels:")
    for level in ("requirements", "design", "implementation"):
        print(f"  {level}: {nav.status_view(level)}")
