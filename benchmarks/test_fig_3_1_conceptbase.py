"""Fig 3-1 — the overall ConceptBase architecture.

Exercises one round trip through all three levels the figure stacks:

- conceptual model processor: model configuration + display tools;
- object processor: object transformer + deductive relational view +
  inference engine;
- proposition processor: proposition base, CML axiom base,
  consistency checker.
"""

from repro.consistency import ConsistencyChecker
from repro.deduction import RuleEngine, parse_literal
from repro.models import ModelBase
from repro.objects import ObjectProcessor, RelationalView


def conceptbase_roundtrip():
    # --- conceptual model processor: models in a lattice ---------------
    base = ModelBase()
    base.define_model("world")
    base.define_model("gkbms", submodels=["world"])
    proc = base.processor

    objects = ObjectProcessor(proc)
    with base.in_model("world"):
        proc.define_class("TDL_EntityClass", level="MetaClass")
        objects.tell("TELL Paper IN TDL_EntityClass END")
        objects.tell("TELL Person IN TDL_EntityClass END")
        objects.tell(
            """
            TELL Invitation IN TDL_EntityClass ISA Paper WITH
              attribute sender : Person
            END
            """
        )
        objects.tell("TELL bob IN Person END")
        objects.tell("TELL inv1 IN Invitation END")
        objects.tell(
            """
            TELL inv2 IN Invitation WITH
              sender sender : bob
            END
            """
        )

    # --- object processor: deduction + relational view ------------------
    engine = RuleEngine(proc)
    engine.add_rule(
        "attr(?x, informed, ?y) :- in(?x, Invitation), attr(?x, sender, ?y).",
        name="sender_is_informed", document=False,
    )
    engine.install_hook()
    prover = engine.prover()
    answers = prover.answers(parse_literal("attr(?x, informed, ?y)"))
    view = RelationalView(proc)
    table = view.as_table("Invitation")

    # --- proposition processor: axioms + consistency --------------------
    checker = ConsistencyChecker(proc)
    checker.attach_constraint("Invitation", "HasSender", "Known(self.sender)")
    violations = checker.check_class("Invitation")

    # --- model configuration: hide the world, check visibility ----------
    base.configure([])
    hidden = proc.exists("Invitation")
    base.configure(["gkbms"])
    visible = proc.exists("Invitation")
    return answers, table, violations, hidden, visible


def test_fig_3_1_conceptbase(benchmark):
    answers, table, violations, hidden, visible = benchmark(
        conceptbase_roundtrip
    )

    # inference engine deduced through the rule proposition
    assert answers == [("inv2", "informed", "bob")]

    # relational display shows the class extent with attribute columns
    assert "inv1" in table and "inv2" in table and "bob" in table

    # consistency checker finds the instance violating the constraint
    assert [v.instance for v in violations] == ["inv1"]

    # model configuration controls visibility at the proposition level
    assert hidden is False
    assert visible is True

    print("\nFig 3-1 relational display:")
    print(table)
