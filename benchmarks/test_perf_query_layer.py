"""Perf-6 — the query-optimisation layer (sections 3.1, 4).

Two ablations, both asserted structurally via counters rather than wall
clock:

- **Closure caches** (``PropositionProcessor(optimise=...)``): a
  Perf-5-style batch load (class hierarchies, then attribute-typed
  instance links, every create validated against the CML axiom base)
  with the epoch-validated closure caches on vs off.  The cached
  processor must perform at least 5x fewer raw isa-BFS expansions while
  producing an identical base.
- **Compiled semi-naive joins** (``evaluate(..., optimise=...)``): a
  recursive reachability + same-generation program over growing edge
  sets, compiled join plans vs the interpreted unify-per-row baseline.
  The compiled path must examine at least 3x fewer rows (join probes)
  at the largest size, on an identical fixpoint.
"""

import pytest

from repro.deduction import Database, evaluate, parse_program
from repro.deduction.seminaive import new_stats
from repro.propositions import PropositionProcessor

# ---------------------------------------------------------------------------
# Part A: closure caches under batch load
# ---------------------------------------------------------------------------

HIERARCHIES = 4
LOAD_SIZES = [20, 60, 180]  # objects per batch load


def batch_load(optimise: bool, objects: int) -> PropositionProcessor:
    """Perf-5-style load: entity hierarchies, attribute classes, then a
    stream of classified objects with typed attribute links."""
    proc = PropositionProcessor(optimise=optimise)
    for h in range(HIERARCHIES):
        proc.define_class(f"Base{h}")
        proc.define_class(f"Leaf{h}", isa=[f"Base{h}"])
        proc.tell_link(f"Base{h}", "owner", f"Base{h}",
                       pid=f"Base{h}.owner", of_class="Attribute")
    previous = {}
    for index in range(objects):
        name = f"obj{index}"
        hierarchy = index % HIERARCHIES
        proc.tell_individual(name, in_class=f"Leaf{hierarchy}")
        if hierarchy in previous:
            proc.tell_link(previous[hierarchy], "owner", name,
                           of_class=f"Base{hierarchy}.owner")
        previous[hierarchy] = name
    return proc


@pytest.mark.parametrize("objects", LOAD_SIZES)
@pytest.mark.parametrize("optimise", [False, True],
                         ids=["closure-uncached", "closure-cached"])
def test_perf_closure_cache(benchmark, optimise, objects):
    proc = benchmark(batch_load, optimise, objects)
    assert len(proc.store) > objects


def test_closure_cache_expansion_ratio(perf_counters, registry_metrics):
    """Acceptance: >=5x fewer isa-BFS expansions on the largest batch
    load, with a bit-identical proposition base."""
    objects = max(LOAD_SIZES)
    cached = batch_load(True, objects)
    uncached = batch_load(False, objects)
    assert cached.summary() == uncached.summary()
    assert {p.pid for p in cached.store} == {p.pid for p in uncached.store}
    expansions_cached = cached.stats["isa_expansions"]
    expansions_uncached = uncached.stats["isa_expansions"]
    assert expansions_cached * 5 <= expansions_uncached
    assert cached.stats["closure_hits"] > 0
    perf_counters(
        isa_expansions_cached=expansions_cached,
        isa_expansions_uncached=expansions_uncached,
        closure_hits=cached.stats["closure_hits"],
        closure_misses=cached.stats["closure_misses"],
        closure_invalidations=cached.stats["closure_invalidations"],
    )
    # the same numbers under their stable registry names
    registry_metrics(cached.registry, prefix="proposition")
    print(f"\nPerf-6a isa-BFS expansions over a {objects}-object load: "
          f"cached={expansions_cached}, uncached={expansions_uncached}")


def test_closure_queries_identical_after_load():
    """Cached and uncached processors agree on every closure query."""
    cached = batch_load(True, 40)
    uncached = batch_load(False, 40)
    for h in range(HIERARCHIES):
        assert (cached.instances_of(f"Base{h}")
                == uncached.instances_of(f"Base{h}"))
        assert (cached.specializations(f"Base{h}")
                == uncached.specializations(f"Base{h}"))
        assert ([p.pid for p in cached.attribute_classes(f"Leaf{h}")]
                == [p.pid for p in uncached.attribute_classes(f"Leaf{h}")])
    for index in range(40):
        assert cached.classes_of(f"obj{index}") == uncached.classes_of(f"obj{index}")


# ---------------------------------------------------------------------------
# Part B: compiled semi-naive join plans
# ---------------------------------------------------------------------------

FIXPOINT_SIZES = [16, 32, 48]  # nodes in the edge graph

PROGRAM = parse_program(
    """
    path(?x, ?y) :- edge(?x, ?y).
    path(?x, ?z) :- path(?x, ?y), edge(?y, ?z).
    sg(?x, ?x) :- node(?x).
    sg(?x, ?y) :- edge(?px, ?x), sg(?px, ?py), edge(?py, ?y).
    """
)


def edge_database(nodes: int) -> Database:
    """A chain with deterministic shortcut edges (branching for sg)."""
    edges = {(f"n{i}", f"n{i + 1}") for i in range(nodes - 1)}
    edges |= {(f"n{i}", f"n{(i * 3 + 7) % nodes}") for i in range(0, nodes, 5)}
    return Database({
        "edge": edges,
        "node": {(f"n{i}",) for i in range(nodes)},
    })


def fixpoint(optimise: bool, nodes: int):
    stats = new_stats()
    idb = evaluate(PROGRAM, edge_database(nodes), optimise=optimise,
                   stats=stats)
    return idb, stats


@pytest.mark.parametrize("nodes", FIXPOINT_SIZES)
@pytest.mark.parametrize("optimise", [False, True],
                         ids=["join-interpreted", "join-compiled"])
def test_perf_seminaive_joins(benchmark, optimise, nodes):
    if optimise:
        idb, _stats = benchmark(fixpoint, optimise, nodes)
    else:
        # The interpreted baseline is orders of magnitude slower; one
        # measured round keeps the sweep bounded.
        idb, _stats = benchmark.pedantic(
            fixpoint, args=(optimise, nodes), rounds=1, iterations=1
        )
    assert len(idb.rows("path")) > nodes


def test_seminaive_join_probe_ratio(perf_counters):
    """Acceptance: >=3x fewer join probes at the largest swept size,
    with bit-identical fixpoints."""
    nodes = max(FIXPOINT_SIZES)
    compiled_idb, compiled_stats = fixpoint(True, nodes)
    interpreted_idb, interpreted_stats = fixpoint(False, nodes)
    for predicate in set(compiled_idb.predicates()) | set(
        interpreted_idb.predicates()
    ):
        assert compiled_idb.rows(predicate) == interpreted_idb.rows(predicate)
    probes_compiled = compiled_stats["join_probes"]
    probes_interpreted = interpreted_stats["join_probes"]
    assert probes_compiled * 3 <= probes_interpreted
    perf_counters(
        join_probes_compiled=probes_compiled,
        join_probes_interpreted=probes_interpreted,
        index_probes=compiled_stats["index_probes"],
        fixpoint_iterations=compiled_stats["iterations"],
    )
    print(f"\nPerf-6b join probes over a {nodes}-node fixpoint: "
          f"compiled={probes_compiled}, interpreted={probes_interpreted}")


def test_seminaive_fixpoints_identical_across_sizes():
    for nodes in FIXPOINT_SIZES:
        compiled_idb, _ = fixpoint(True, nodes)
        interpreted_idb, _ = fixpoint(False, nodes)
        assert compiled_idb.rows("path") == interpreted_idb.rows("path")
        assert compiled_idb.rows("sg") == interpreted_idb.rows("sg")


# ---------------------------------------------------------------------------
# Part C: the same headlines, attributed through EXPLAIN alone
# ---------------------------------------------------------------------------


def test_explain_reproduces_headlines_from_registry(perf_counters,
                                                    registry_metrics):
    """Both ablation headlines re-derived purely from EXPLAIN metric
    deltas — no reach into component stats dicts."""
    from repro.obs.explain import QueryExplain
    from repro.obs.metrics import MetricsRegistry, StatsView

    objects = max(LOAD_SIZES)
    expansions = {}
    for optimise in (True, False):
        proc = PropositionProcessor(optimise=optimise)
        report = QueryExplain(proc.registry).explain(
            lambda: _load_into(proc, objects), label="batch-load")
        expansions[optimise] = report.delta("proposition.isa_expansions")
    assert expansions[True] * 5 <= expansions[False]

    nodes = max(FIXPOINT_SIZES)
    probes = {}
    for optimise in (True, False):
        registry = MetricsRegistry()
        stats = StatsView(registry.namespace("deduction"))
        explain = QueryExplain(registry)
        report = explain.explain(
            lambda: evaluate(PROGRAM, edge_database(nodes),
                             optimise=optimise, stats=stats),
            label="fixpoint")
        probes[optimise] = report.delta("deduction.join_probes")
    assert probes[True] * 3 <= probes[False]
    perf_counters(
        explain_isa_expansions_cached=expansions[True],
        explain_isa_expansions_uncached=expansions[False],
        explain_join_probes_compiled=probes[True],
        explain_join_probes_interpreted=probes[False],
    )


def _load_into(proc: PropositionProcessor, objects: int) -> None:
    """The Perf-6a batch load against an existing processor."""
    for h in range(HIERARCHIES):
        proc.define_class(f"Base{h}")
        proc.define_class(f"Leaf{h}", isa=[f"Base{h}"])
        proc.tell_link(f"Base{h}", "owner", f"Base{h}",
                       pid=f"Base{h}.owner", of_class="Attribute")
    previous = {}
    for index in range(objects):
        name = f"obj{index}"
        hierarchy = index % HIERARCHIES
        proc.tell_individual(name, in_class=f"Leaf{hierarchy}")
        if hierarchy in previous:
            proc.tell_link(previous[hierarchy], "owner", name,
                           of_class=f"Base{hierarchy}.owner")
        previous[hierarchy] = name
