"""Fig 2-1 — browsing design objects and focusing on an IsA hierarchy.

"The developer has employed a hierarchical text browser tool to
determine unmapped TaxisDL objects.  He has further decided to focus on
the mapping of entity structures in a document data model, in
particular, invitations and their generalization, papers.  This
selection causes the display of a menu with applicable decision classes
and tools."
"""

from repro.models.display.text_dag import TextDAGBrowser
from repro.scenario import MeetingScenario


def browse_and_focus():
    scenario = MeetingScenario().setup()
    gkbms = scenario.gkbms

    unmapped = scenario.browse_unmapped()
    browser = TextDAGBrowser(
        children=lambda name: sorted(
            gkbms.processor.specializations(name, strict=True)
        ) if gkbms.processor.exists(name) else [],
        depth=3,
    )
    tree = browser.render("Papers")

    interactive = gkbms.navigator().browser()
    interactive.focus_on("Invitations")
    menu = interactive.render_menu()
    matches = scenario.menu_for("Invitations")
    return scenario, unmapped, tree, menu, matches


def test_fig_2_1_browsing(benchmark):
    scenario, unmapped, tree, menu, matches = benchmark(browse_and_focus)

    # unmapped objects include the document hierarchy
    assert {"Papers", "Invitations"} <= set(unmapped)

    # the text DAG browser shows the IsA hierarchy under Papers
    assert "Papers" in tree and "Invitations" in tree

    # the menu offers both mapping strategies of the paper, most
    # specific decision classes first
    names = [dc.name for dc, _roles, _tools in matches]
    assert "DecMoveDown" in names and "DecDistribute" in names
    assert names.index("DecMoveDown") < names.index("TDL_MappingDec")
    assert "DecMoveDown" in menu and "MoveDownMapper" in menu

    print("\nFig 2-1 browser tree:")
    print(tree)
    print(menu)
