"""Perf-8 — the concurrent service layer (PR 5).

Two sweeps plus the gated acceptance criteria of the service layer:

- **Concurrent throughput vs thread count**: the seeded mixed workload
  (autocommit tells, contended transactions, snapshot reads) through
  in-process clients, at 1/4/8 workers.
- **Group-commit amortisation**: the same WAL-backed commit volume with
  and without batching; the structural claim is *fewer fsyncs than
  commits* and a mean batch size above one.

Gates (run in CI with ``--benchmark-disable``): zero unexpected request
errors under load, zero torn reads, final state identical to the
single-threaded oracle replay, mean ``server.commit.batch_size`` > 1,
and strictly fewer WAL fsyncs than committed groups of one would need.
"""

import pytest

from repro.conceptbase import ConceptBase
from repro.obs.metrics import MetricsRegistry
from repro.propositions.wal import WalStore
from repro.scenario.workload import ConcurrentLoadGenerator
from repro.server.client import LocalClient
from repro.server.service import GKBMSService

THREAD_SWEEP = [1, 4, 8]
OPS_PER_THREAD = 25


def run_load(service, threads, ops=OPS_PER_THREAD, seed=7):
    generator = ConcurrentLoadGenerator(
        client_factory=lambda: LocalClient(service),
        threads=threads,
        ops_per_thread=ops,
        seed=seed,
    )
    return generator.run()


def wal_service(tmp_path, name, **kw):
    registry = MetricsRegistry()
    store = WalStore(str(tmp_path / f"{name}.wal"), fsync="commit",
                     registry=registry)
    return GKBMSService(ConceptBase(store=store, registry=registry), **kw)


# ---------------------------------------------------------------------------
# Part A: concurrent throughput vs thread count
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("threads", THREAD_SWEEP)
def test_perf_throughput_vs_threads(benchmark, threads):
    def load():
        service = GKBMSService(batch_window=0.002)
        try:
            return run_load(service, threads)
        finally:
            service.close()

    stats = benchmark(load)
    assert stats.unexpected_errors == 0
    assert stats.requests >= threads * OPS_PER_THREAD


# ---------------------------------------------------------------------------
# Part B: group commit amortisation
# ---------------------------------------------------------------------------

def test_perf_group_commit_amortises_fsyncs(benchmark, tmp_path):
    counter = iter(range(10**6))

    def load():
        service = wal_service(tmp_path, f"grp{next(counter)}",
                              batch_window=0.002)
        try:
            run_load(service, threads=8)
            return service.registry.snapshot()
        finally:
            service.close()

    snapshot = benchmark(load)
    assert snapshot["server.commit.batch_size"]["mean"] > 1.0


# ---------------------------------------------------------------------------
# Gated structural acceptance (run in CI with --benchmark-disable)
# ---------------------------------------------------------------------------

def test_concurrent_load_meets_acceptance(tmp_path, perf_counters,
                                          registry_metrics):
    """The PR 5 acceptance bar, measured end to end on a WAL-backed
    service: no errors, no torn reads, oracle-equal final state, real
    batching, fewer fsyncs than commits."""
    service = wal_service(tmp_path, "accept", batch_window=0.002)
    try:
        stats = run_load(service, threads=8, ops=30)
        registry = service.registry
        snapshot = registry.snapshot()
        log = service.pipeline.commit_log()
        live_rows = service.cb.propositions.store.rows()
    finally:
        service.close()

    # 1) clean run: protocol and request errors at zero, reads untorn
    assert stats.unexpected_errors == 0
    assert snapshot["server.torn_reads"] == 0

    # 2) the live store equals the single-threaded oracle replay
    oracle = ConceptBase()
    for _seq, _sid, ops in log:
        with oracle.transaction():
            for kind, arg in ops:
                if kind == "tell":
                    oracle.tell(arg)
                else:
                    oracle.untell(arg)
    assert oracle.propositions.store.rows() == live_rows

    # 3) group commit did real grouping
    batch = snapshot["server.commit.batch_size"]
    committed = snapshot["server.commit.committed"]
    fsyncs = snapshot["wal.fsyncs"]
    assert batch["count"] > 0
    assert batch["mean"] > 1.0
    assert fsyncs < committed

    latency = stats.latency_summary()
    perf_counters(
        requests=stats.requests,
        commits_accepted=committed,
        conflicts=stats.conflicts,
        wal_fsyncs=fsyncs,
        wal_group_batches=snapshot["wal.group_batches"],
        batch_mean_milli=int(batch["mean"] * 1000),
        throughput_rps=int(stats.throughput),
        latency_p50_us=int(latency["p50_ms"] * 1000),
        latency_p99_us=int(latency["p99_ms"] * 1000),
    )
    registry_metrics(registry, prefix="server")
    registry_metrics(registry, prefix="wal")


def test_conflict_rejection_is_exact(perf_counters):
    """Racing transactions over one hot key: exactly the losers are
    refused, winners all land, nothing is double-applied."""
    service = GKBMSService(batch_window=0.0)
    try:
        primer = LocalClient(service)
        primer.tell("TELL Doc IN SimpleClass END")
        stats = run_load(service, threads=8, ops=20, seed=11)
        snapshot = service.registry.snapshot()
        assert stats.unexpected_errors == 0
        assert snapshot["server.commit.conflicts"] == stats.conflicts
        assert (snapshot["server.commit.committed"]
                == service.pipeline.commit_seq)
        perf_counters(
            raced_commits=int(snapshot["server.commit.committed"]),
            raced_conflicts=stats.conflicts,
        )
    finally:
        service.close()


def test_load_shedding_bounds_the_queue(perf_counters):
    """A tiny admission envelope under full load sheds typed errors
    instead of stalling, and the shed count is visible in metrics."""
    service = GKBMSService(
        batch_window=0.02, max_in_flight=2, max_waiting=1, max_wait=0.02,
    )
    try:
        stats = run_load(service, threads=8, ops=15, seed=3)
        snapshot = service.registry.snapshot()
        assert stats.unexpected_errors == 0
        total_shed = (snapshot["server.shed"]
                      + snapshot["server.commit.shed"])
        assert stats.shed > 0
        assert total_shed >= stats.shed
        perf_counters(
            shed_requests=stats.shed,
            admitted=int(snapshot["server.admitted"]),
        )
    finally:
        service.close()
