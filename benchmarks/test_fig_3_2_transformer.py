"""Fig 3-2 — propositional representation of Invitation.

"Consider, for example, a class TDL_EntityClass called Invitation,
which relates invitations to persons by an attribute sender.  The
Object Transformer transforms this class into a set of propositions as
shown in Fig 3-2."

The figure's network: ``Invitation instanceof TDL_EntityClass``,
``TDL_EntityClass instanceof CLASS``, ``Invitation --sender--> Person``
with the sender link an instance of the ``attribute`` proposition, plus
the paper's temporal stamps (``version17``, ``21-Sep-1987+``).
"""

from repro.objects import ObjectProcessor
from repro.timecalc import Interval, parse_time


def transform_invitation():
    op = ObjectProcessor()
    proc = op.propositions
    proc.define_class("TDL_EntityClass", level="MetaClass")
    op.tell("TELL Paper IN TDL_EntityClass END")
    op.tell("TELL Person IN TDL_EntityClass END")
    created = op.tell(
        """
        TELL Invitation IN TDL_EntityClass ISA Paper WITH
          attribute sender : Person
        END
        """,
        time=Interval.from_ticks(17, 18, label="version17"),
    )
    frame = op.ask("Invitation")
    return op, created, frame


def test_fig_3_2_transformer(benchmark):
    op, created, frame = benchmark(transform_invitation)
    proc = op.propositions

    # the generated proposition set matches the figure
    kinds = sorted(
        "instanceof" if p.is_instanceof else "isa" if p.is_isa
        else "individual" if p.is_individual else p.label
        for p in created
    )
    assert kinds == ["individual", "instanceof", "isa", "sender"]

    # PI = <Invitation, instanceof, CLASS/TDL_EntityClass, version17>
    instanceof_links = [p for p in created if p.is_instanceof]
    assert instanceof_links[0].destination == "TDL_EntityClass"
    assert instanceof_links[0].time.contains_point(17)
    assert not instanceof_links[0].time.contains_point(18)

    # the belief-time notation of the paper parses
    known_since = parse_time("21-Sep-1987+")
    assert known_since.contains_point(19880607)

    # the sender link is itself classified (attribute proposition)
    sender = [p for p in created if p.label == "sender"][0]
    assert "Attribute" in proc.classification_of_link(sender.pid)
    assert sender.source == "Invitation" and sender.destination == "Person"

    # and the transformation inverts: ask() reconstructs the frame
    assert op.transformer.roundtrip_equal(frame)

    print("\nFig 3-2 propositions:")
    for prop in created:
        print(f"  {prop!r}")
