"""Perf-11 — the asyncio pipelined transport (PR 9).

Three gated claims about the async plane, measured over real sockets:

- **Connection scale**: one event loop sustains 1k+ simultaneously
  open, hello'd sessions and keeps answering on every one of them —
  the thread-per-connection server would need 1k+ OS threads for the
  same shape.
- **Pipelined throughput**: protocol v2 (many requests in flight on
  one connection, multiplexing independent sessions) beats the
  threaded single-request baseline by >= 1.5x at equal offered load on
  a write workload, because in-flight writes land in the *same* group
  commit window instead of each paying it alone.  p99 latency under
  the pipelined load is recorded.
- **Integrity under stress**: the mixed concurrent workload driven by
  pipelined clients shows zero torn reads and a final state equal to
  the single-threaded oracle replay, and the chaos ``client_drop``
  kind on the async transport loses zero acked commits and applies the
  retried token exactly once.

Wall timings land in BENCH_PR9.json next to the structural counters;
the counters (batch sizes, pause counts, ratios scaled to integers)
are the machine-independent trajectory.
"""

import json
import socket
import time

import pytest

from repro.conceptbase import ConceptBase
from repro.obs.metrics import MetricsRegistry
from repro.propositions.wal import WalStore
from repro.scenario.chaos import ChaosHarness
from repro.scenario.workload import ConcurrentLoadGenerator
from repro.server.client import PipelinedTCPClient, TCPClient
from repro.server.protocol import PROTOCOL_VERSION
from repro.server.service import GKBMSService
from repro.server.tcp import AsyncGKBMSServer, GKBMSServer

#: Simultaneously open connections the scale gate must sustain.
CONNS = 1100
#: Connections pinged per chunk — below the admission envelope, so
#: every response is a pong, not a typed shed.
CHUNK = 32
#: Offered load for the pipelined-vs-lockstep comparison.
TELLS = 400
#: Sessions multiplexed over the one pipelined connection (writes are
#: session-serial by design, so pipelining wins by interleaving
#: *independent* sessions' writes into shared commit batches).
SESSIONS = 16
#: In-flight window for the pipelined client.
WINDOW = 48


def _service(**kw):
    conf = dict(batch_window=0.002, per_session=8, max_sessions=64)
    conf.update(kw)
    return GKBMSService(**conf)


# ---------------------------------------------------------------------------
# Gate 1: 1k+ concurrent connections on one event loop
# ---------------------------------------------------------------------------

def test_perf_thousand_connections(perf_counters, registry_metrics):
    service = _service(max_sessions=CONNS + 64)
    server = AsyncGKBMSServer(("127.0.0.1", 0), service)
    server.serve_in_thread()
    socks, files = [], []
    try:
        t0 = time.perf_counter()
        for _ in range(CONNS):
            sock = socket.create_connection(
                ("127.0.0.1", server.port), timeout=30
            )
            sock.settimeout(30)
            socks.append(sock)
            files.append(sock.makefile("rb"))
        connect_s = time.perf_counter() - t0

        # hello everyone (chunked under the admission envelope)
        t0 = time.perf_counter()
        sessions = 0
        for start in range(0, CONNS, CHUNK):
            chunk = list(range(start, min(start + CHUNK, CONNS)))
            for i in chunk:
                socks[i].sendall(
                    b'{"id": 0, "op": "hello", '
                    b'"params": {"protocol": 2}}\n'
                )
            for i in chunk:
                response = json.loads(files[i].readline())
                assert response["ok"] is True, response
                assert response["result"]["protocol"] == PROTOCOL_VERSION
                sessions += 1
        hello_s = time.perf_counter() - t0
        assert sessions == CONNS

        # with every connection open and hello'd, the loop still
        # answers on all of them — three full sweeps
        snapshot = service.registry.snapshot()
        assert snapshot["server.async.open_connections"] == CONNS
        t0 = time.perf_counter()
        rounds = 3
        for _ in range(rounds):
            for start in range(0, CONNS, CHUNK):
                chunk = list(range(start, min(start + CHUNK, CONNS)))
                for i in chunk:
                    socks[i].sendall(
                        b'{"id": 1, "op": "ping", "params": {}}\n'
                    )
                for i in chunk:
                    response = json.loads(files[i].readline())
                    assert response["ok"] is True, response
        sweep_s = (time.perf_counter() - t0) / rounds
        snapshot = service.registry.snapshot()
        assert snapshot["server.async.open_connections"] == CONNS
        assert snapshot["server.connections"] == CONNS

        perf_counters(
            concurrent_connections=CONNS,
            connect_ms=int(connect_s * 1000),
            hello_ms=int(hello_s * 1000),
            sweep_ms=int(sweep_s * 1000),
            sweep_rps=int(CONNS / sweep_s),
        )
        registry_metrics(service.registry, prefix="server")
    finally:
        for sock in socks:
            sock.close()
        server.close()


# ---------------------------------------------------------------------------
# Gate 2: pipelined throughput vs the threaded single-request baseline
# ---------------------------------------------------------------------------

def _lockstep_tells(port, n):
    client = TCPClient("127.0.0.1", port)
    client.tell("TELL Doc IN SimpleClass END")
    t0 = time.perf_counter()
    for i in range(n):
        client.tell(f"TELL L{i} IN Doc END")
    elapsed = time.perf_counter() - t0
    client.close()
    return n / elapsed


def _pipelined_tells(port, n):
    client = PipelinedTCPClient("127.0.0.1", port)
    client.tell("TELL Doc IN SimpleClass END")
    sessions = [client.session]
    for _ in range(SESSIONS - 1):
        reply = client.submit("hello", {"protocol": PROTOCOL_VERSION})
        sessions.append(reply.result(30.0)["session"])
    latencies = []

    def settle(entry):
        started, reply = entry
        reply.wait(30.0)
        latencies.append(time.perf_counter() - started)

    t0 = time.perf_counter()
    outstanding = []
    for i in range(n):
        outstanding.append((time.perf_counter(), client.submit(
            "tell", {"source": f"TELL P{i} IN Doc END"},
            session=sessions[i % len(sessions)],
        )))
        if len(outstanding) >= WINDOW:
            settle(outstanding.pop(0))
    while outstanding:
        settle(outstanding.pop(0))
    elapsed = time.perf_counter() - t0
    client.close()
    latencies.sort()
    return n / elapsed, latencies


def test_perf_pipelined_beats_lockstep(perf_counters, registry_metrics):
    threaded_service = _service()
    threaded = GKBMSServer(("127.0.0.1", 0), threaded_service)
    threaded.serve_in_thread()
    try:
        lockstep_rps = _lockstep_tells(threaded.port, TELLS)
    finally:
        threaded.close()

    async_service = _service()
    pipelined_server = AsyncGKBMSServer(("127.0.0.1", 0), async_service)
    pipelined_server.serve_in_thread()
    try:
        pipelined_rps, latencies = _pipelined_tells(
            pipelined_server.port, TELLS
        )
        snapshot = async_service.registry.snapshot()
    finally:
        pipelined_server.close()

    ratio = pipelined_rps / lockstep_rps
    p50 = latencies[len(latencies) // 2]
    p99 = latencies[max(0, int(len(latencies) * 0.99) - 1)]
    batch = snapshot["server.commit.batch_size"]

    # The gate: equal offered load (TELLS autocommit writes), >= 1.5x.
    assert ratio >= 1.5, (
        f"pipelined {pipelined_rps:.0f} rps vs lockstep "
        f"{lockstep_rps:.0f} rps = {ratio:.2f}x, need >= 1.5x"
    )
    # The mechanism: in-flight writes shared commit batches.
    assert batch["mean"] > 1.5
    assert snapshot["server.torn_reads"] == 0

    perf_counters(
        lockstep_rps=int(lockstep_rps),
        pipelined_rps=int(pipelined_rps),
        speedup_ratio_milli=int(ratio * 1000),
        pipelined_p50_us=int(p50 * 1e6),
        pipelined_p99_us=int(p99 * 1e6),
        commit_batch_mean_milli=int(batch["mean"] * 1000),
        backpressure_pauses=int(
            snapshot.get("server.async.pauses", 0)
        ),
    )
    registry_metrics(async_service.registry, prefix="server")


@pytest.mark.parametrize("window", [1, 16, WINDOW])
def test_perf_pipelined_window_sweep(benchmark, window):
    """Wall-clock sweep of the in-flight window (window=1 is lockstep
    shape over the v2 protocol)."""

    def load():
        service = _service()
        server = AsyncGKBMSServer(("127.0.0.1", 0), service)
        server.serve_in_thread()
        try:
            client = PipelinedTCPClient("127.0.0.1", server.port)
            client.tell("TELL Doc IN SimpleClass END")
            sessions = [client.session]
            for _ in range(min(window, SESSIONS) - 1):
                reply = client.submit(
                    "hello", {"protocol": PROTOCOL_VERSION}
                )
                sessions.append(reply.result(30.0)["session"])
            outstanding = []
            for i in range(120):
                outstanding.append(client.submit(
                    "tell", {"source": f"TELL W{i} IN Doc END"},
                    session=sessions[i % len(sessions)],
                ))
                if len(outstanding) >= window:
                    outstanding.pop(0).wait(30.0)
            for reply in outstanding:
                reply.wait(30.0)
            client.close()
        finally:
            server.close()

    benchmark(load)


# ---------------------------------------------------------------------------
# Gate 3: integrity under concurrent pipelined load and chaos
# ---------------------------------------------------------------------------

def test_async_load_meets_acceptance(tmp_path, perf_counters,
                                     registry_metrics):
    """The mixed workload over pipelined clients against a WAL-backed
    async server: no errors, no torn reads, oracle-equal final state."""
    registry = MetricsRegistry()
    store = WalStore(str(tmp_path / "async.wal"), fsync="commit",
                     registry=registry)
    service = GKBMSService(ConceptBase(store=store, registry=registry),
                           batch_window=0.002)
    server = AsyncGKBMSServer(("127.0.0.1", 0), service)
    server.serve_in_thread()
    try:
        generator = ConcurrentLoadGenerator(
            client_factory=lambda: PipelinedTCPClient(
                "127.0.0.1", server.port
            ),
            threads=8, ops_per_thread=30, seed=7,
        )
        stats = generator.run()
        snapshot = service.registry.snapshot()
        log = service.pipeline.commit_log()
        live_rows = service.cb.propositions.store.rows()
    finally:
        server.close()

    assert stats.unexpected_errors == 0
    assert snapshot["server.torn_reads"] == 0
    assert snapshot["server.protocol_errors"] == 0

    oracle = ConceptBase()
    for _seq, _sid, ops in log:
        with oracle.transaction():
            for kind, arg in ops:
                if kind == "tell":
                    oracle.tell(arg)
                else:
                    oracle.untell(arg)
    assert oracle.propositions.store.rows() == live_rows

    latency = stats.latency_summary()
    perf_counters(
        async_requests=stats.requests,
        async_commits=int(snapshot["server.commit.committed"]),
        async_conflicts=stats.conflicts,
        async_throughput_rps=int(stats.throughput),
        async_latency_p50_us=int(latency["p50_ms"] * 1000),
        async_latency_p99_us=int(latency["p99_ms"] * 1000),
    )
    registry_metrics(registry, prefix="server")
    registry_metrics(registry, prefix="wal")


def test_chaos_client_drop_async_loses_nothing(tmp_path, perf_counters):
    """The PR 8 chaos kind on the new transport: a client vanishing
    mid-commit costs zero acked commits and the tokened retry applies
    exactly once."""
    harness = ChaosHarness(
        str(tmp_path / "chaos.wal"), "client_drop", seed=9,
        threads=4, ops_per_thread=10, transport="async",
    )
    report = harness.run()
    assert report.exactly_once is True
    assert report.rows_equal is True
    assert report.lost_acked == 0
    perf_counters(
        chaos_acked_commits=report.acked_commits,
        chaos_lost_acked=report.lost_acked,
        chaos_exactly_once=int(bool(report.exactly_once)),
    )
