"""Perf-12 — selective backtracking on a served decision history (PR 10).

The point of keeping the justification graph (section 3.3.3): undoing
a design decision should cost what the decision and its transitive
consequents cost, not what the whole history cost.  Gated claims over
a 200-decision served history:

- **Selective beats rebuild**: backtracking a mid-history decision
  re-applies >= 3x fewer propositions than a from-scratch rebuild of
  the surviving history would replay.
- **And is exact**: the post-backtrack base is bit-identical
  (canonical ``rows()``) to an oracle base where the condemned
  decisions never executed at all.

Counters (propositions re-applied, rebuild size, the ratio scaled to
an integer) land in the BENCH json as the machine-independent
trajectory; the ``decisions.*`` registry metrics ride along.
"""

from repro.server.client import LocalClient
from repro.server.service import GKBMSService

#: History length for the Perf-12 gates.
DECISIONS = 200
#: Selective backtrack must re-apply >= RATIO x fewer propositions
#: than a from-scratch rebuild of the surviving history.
RATIO = 3.0
#: Mid-history backtrack target; its from-to chain segment (chains
#: break every 4 decisions) makes the condemned subtree 3 decisions.
TARGET = f"d{DECISIONS // 2 - 2}"


def _grow_history(client, count):
    """Bare-individual decides (pid == name, so oracle comparison is
    bit-exact) chained into length-4 from-to segments — so a
    mid-history backtrack condemns a real subtree, not just itself."""
    for n in range(count):
        spec = {"tell": [f"TELL Obj{n} END"]}
        if n % 4:
            spec["inputs"] = {"src": f"Obj{n - 1}"}
        client.decide(f"Dec{n % 6}",
                      kind=("mapping", "refinement", "choice")[n % 3],
                      **spec)


def _rebuild_survivors(history, condemned):
    """The from-scratch alternative: replay every surviving decision
    into a fresh service; returns (service, propositions replayed)."""
    service = GKBMSService(batch_window=0.0)
    oracle = LocalClient(service)
    replayed = 0
    for entry in history["decisions"]:
        if entry["did"] in condemned:
            continue
        result = oracle.decide(
            entry["decision_class"],
            tell=[f"TELL {name} END" for name in entry["outputs"]],
            inputs=entry["inputs"], kind=entry["kind"],
        )
        replayed += result["told"] + result["untold"]
    return service, oracle, replayed


def test_backtrack_replays_fewer_propositions_than_rebuild(
        perf_counters, registry_metrics):
    service = GKBMSService(batch_window=0.0)
    client = LocalClient(service)
    _grow_history(client, DECISIONS)
    report = client.backtrack(TARGET)
    condemned = set(report["retracted"])
    assert 3 <= len(condemned) < DECISIONS // 4

    history = client.history()
    oracle_service, oracle, rebuild_props = \
        _rebuild_survivors(history, condemned)

    reapplied = report["reapplied"]
    assert reapplied * RATIO <= rebuild_props, (
        f"selective backtrack touched {reapplied} propositions; "
        f"a rebuild replays {rebuild_props} — ratio below {RATIO}x"
    )
    perf_counters(
        history_decisions=DECISIONS,
        condemned_decisions=len(condemned),
        backtrack_reapplied=reapplied,
        rebuild_replayed=rebuild_props,
        selectivity_ratio_x100=int(100 * rebuild_props / max(reapplied, 1)),
    )
    registry_metrics(service.cb.registry, prefix="decisions")
    client.close()
    oracle.close()


def test_backtrack_state_identical_to_oracle(perf_counters):
    service = GKBMSService(batch_window=0.0)
    client = LocalClient(service)
    _grow_history(client, DECISIONS)
    report = client.backtrack(TARGET)
    condemned = set(report["retracted"])
    oracle_service, oracle, _ = \
        _rebuild_survivors(client.history(), condemned)
    live_rows = service.cb.propositions.store.rows()
    oracle_rows = oracle_service.cb.propositions.store.rows()
    assert live_rows == oracle_rows
    perf_counters(surviving_propositions=len(live_rows))
    client.close()
    oracle.close()
