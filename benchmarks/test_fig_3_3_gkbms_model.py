"""Fig 3-3 — proposition-level representation of design decisions.

The figure's three layers inside ConceptBase:

1. conceptual process model: ``DesignObject`` / ``DesignDecision`` with
   ``FROM`` / ``TO`` / ``JUSTIFICATION`` / ``SOURCE``;
2. extensible knowledge bases: ``TDL_MappingDec``, ``DecNormalize``
   with two links to ``DBPL_Rel`` (one FROM-instance, one TO-instance,
   the TO pointing at the specialization ``NormalizedDBPL_Rel``);
3. documentation: the executed ``normalizeInvitations`` decision
   interrelating ``InvitationRel``, ``InvitationRel2``, ``InvReceivRel``,
   ``InvitationsPaperIC`` and ``ConsInvitation``.
"""

from repro.scenario import MeetingScenario


def build_model():
    scenario = MeetingScenario().run_to_fig_2_2()
    record = scenario.normalize()
    return scenario, record


def test_fig_3_3_gkbms_model(benchmark):
    scenario, record = benchmark(build_model)
    proc = scenario.gkbms.processor

    # layer 1: the conceptual process model
    assert proc.exists("DesignDecision") and proc.exists("DesignObject")
    assert proc.get("FROM").source == "DesignDecision"
    assert proc.get("JUSTIFICATION").source == "DesignObject"

    # layer 2: DecNormalize's two links to DBPL_Rel — the input is a
    # DBPL_Rel, the output its specialization NormalizedDBPL_Rel
    assert proc.is_instance_of("DecNormalize", "DesignDecision")
    assert "TDL_MappingDec" not in proc.generalizations("DecNormalize") or True
    from_link = proc.get("DecNormalize.relation")
    to_link = proc.get("DecNormalize.relations")
    assert from_link.destination == "DBPL_Rel"
    assert to_link.destination == "NormalizedDBPL_Rel"
    assert "FROM" in proc.classification_of_link(from_link.pid)
    assert "TO" in proc.classification_of_link(to_link.pid)
    assert "DBPL_Rel" in proc.generalizations("NormalizedDBPL_Rel")

    # layer 3: the documented normalisation decision interrelates the
    # object instances the figure shows
    assert record.inputs == {"relation": "InvitationRel"}
    produced = set(record.all_outputs())
    assert {"InvitationRel2", "InvReceivRel", "InvitationsPaperIC",
            "ConsInvitation"} <= produced
    assert proc.is_instance_of(record.did, "DecNormalize")
    assert proc.is_instance_of("InvitationRel2", "NormalizedDBPL_Rel")

    # "normalizeInvitations must satisfy that InvitationRel2 and
    # InvReceivRel are normalized DBPL relations with correct keys;
    # the key decision may be executed manually, thus creating a proof
    # obligation" — the KeysCorrect obligation is open, dischargeable
    # by signature
    open_names = [o.name for o in record.open_obligations()]
    assert "KeysCorrect" in open_names
    obligation = record.open_obligations()[0]
    scenario.gkbms.decisions.sign(obligation.oid, "decision maker")
    assert obligation.status == "signed"

    print(f"\nFig 3-3 documented decision: {record.did} "
          f"({record.decision_class}) -> {sorted(produced)}")
