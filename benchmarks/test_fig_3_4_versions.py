"""Fig 3-4 — decision-based configurations and versions.

"Fig 3-4 represents the example of section 2.1 from this viewpoint
[...]: the second implementation, whose mapping dependency is derived
via the refinement decision on keys, is based on an assumption which is
inconsistent under the expanded design version with respect to
candidate keys."

The bench rebuilds the scenario's derivation lattice and asserts: the
mapping/refinement/choice edge kinds, the alternative implementation
created by the key (choice) decision, that versions share unchanged
components instead of duplicating them, and that configuration
derivation excludes the non-used version.
"""

from repro.scenario import MeetingScenario


def build_lattice():
    scenario = MeetingScenario().run_all()
    vm = scenario.gkbms.versions()
    return scenario, vm, vm.derivation_lattice()


def test_fig_3_4_versions(benchmark):
    scenario, vm, edges = benchmark(build_lattice)

    # the three decision kinds of section 3.3.2 appear as edge types
    kinds = {kind for _s, kind, _t in edges}
    assert {"mapping", "refinement", "choice"} <= kinds

    # vertical configuration: design and implementation interrelated by
    # mapping decisions
    grouped = vm.vertical_configuration("InvitationRel2")
    assert "Papers" in grouped["design"]
    assert "InvitationRel2" in grouped["implementation"]

    # versioning rests on the choice decision: the key substitution
    # created an alternative implementation version of InvitationRel2
    alternatives = vm.alternatives("InvitationRel2")
    assert len(alternatives) == 1
    assert alternatives[0].decision == scenario.records["keys"].did

    # after backtracking, the first implementation is active again and
    # the alternative is retained as documentation, not duplicated
    nodes = vm.versions_of("InvitationRel2")
    assert [n.active for n in nodes] == [True, False]
    # "without duplicating all the implementation": the unchanged
    # detail relation exists once in the module
    assert list(scenario.gkbms.module.relations).count("InvReceivRel") == 1

    # configuring the latest complete implementation excludes the
    # non-used version objects
    config = vm.configure("implementation")
    assert config.complete
    assert not any("~" in name for name in config.objects)
    assert {"InvitationRel2", "InvReceivRel", "MinutesRel"} <= set(
        config.objects
    )

    print("\nFig 3-4 derivation lattice:")
    print(vm.render_lattice())
