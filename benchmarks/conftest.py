"""Shared fixtures for the benchmark harness.

Each figure benchmark rebuilds its figure's content from the public API
inside the timed section and asserts the *shape* reported by the paper
(same objects, same typed dependencies, same retained/retracted sets).
The performance benchmarks (Perf-1 ... Perf-6) sweep the parameters of
the efficiency questions the paper raises in sections 3.1, 3.3.3 and 4.

``--bench-json=BENCH_PRn.json`` records the run: per-benchmark wall
timings (from pytest-benchmark, when it ran) plus every structural
counter a test registered through the ``perf_counters`` fixture.  The
committed ``BENCH_*.json`` files are the repo's perf trajectory —
counters are machine-independent, so regressions in evaluation counts
diff cleanly across PRs even when wall clocks do not.

Since PR 4 the payload carries a ``schema`` stamp and a ``metrics``
section: tests that hold a :class:`~repro.obs.metrics.MetricsRegistry`
record point-in-time snapshots through the ``registry_metrics``
fixture, so the counter *names* in BENCH files are exactly the
registry's ``<component>.<counter>`` names (``proposition.closure_hits``,
``deduction.join_probes``, ...) — the same names ``python -m repro.obs
diff`` and the EXPLAIN attribution use.
"""

import json
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro.scenario import MeetingScenario

#: The BENCH payload layout; bump when sections change incompatibly.
BENCH_SCHEMA = {
    "version": 2,
    "sections": ["benchmarks", "counters", "metrics"],
    "metric_names": "<component>.<counter> (repro.obs.metrics registry)",
}

#: nodeid -> {counter name: value}, collected via the perf_counters fixture.
_COUNTERS = {}

#: nodeid -> {full metric name: value}, via the registry_metrics fixture.
_METRICS = {}


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        action="store",
        default=None,
        metavar="PATH",
        help="write per-benchmark timings and structural perf counters "
             "(cache hits, BFS expansions, join probes) to a JSON file",
    )


@pytest.fixture
def perf_counters(request):
    """Record structural counters for the --bench-json report.

    Usage: ``perf_counters(isa_expansions_cached=8, ...)``; values are
    merged per test, so a test may record in several steps.
    """

    def record(**counters):
        _COUNTERS.setdefault(request.node.nodeid, {}).update(counters)

    return record


@pytest.fixture
def registry_metrics(request):
    """Record a registry snapshot for the --bench-json ``metrics``
    section, keyed by the registry's own stable metric names.

    Usage: ``registry_metrics(cb.registry)`` or
    ``registry_metrics(proc.registry, prefix="proposition")``.
    """

    def record(registry, prefix=""):
        snapshot = registry.snapshot(prefix)
        _METRICS.setdefault(request.node.nodeid, {}).update(snapshot)

    return record


def _benchmark_entries(config):
    session = getattr(config, "_benchmarksession", None)
    entries = []
    for bench in getattr(session, "benchmarks", None) or []:
        stats = getattr(bench, "stats", None)
        entry = {
            "name": getattr(bench, "name", None),
            "group": getattr(bench, "group", None),
        }
        for field in ("min", "max", "mean", "stddev", "rounds"):
            value = getattr(stats, field, None)
            if value is not None:
                entry[field] = value
        entries.append(entry)
    return entries


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--bench-json")
    if not path:
        return
    payload = {
        "schema": BENCH_SCHEMA,
        "benchmarks": _benchmark_entries(session.config),
        "counters": _COUNTERS,
        "metrics": _METRICS,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture
def scenario_factory():
    """A fresh scenario builder (figure benches need clean state)."""
    return MeetingScenario


@pytest.fixture(scope="module")
def completed_scenario():
    """The fig 2-4 end state, shared by read-only benches."""
    return MeetingScenario().run_all()
