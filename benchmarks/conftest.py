"""Shared fixtures for the benchmark harness.

Each figure benchmark rebuilds its figure's content from the public API
inside the timed section and asserts the *shape* reported by the paper
(same objects, same typed dependencies, same retained/retracted sets).
The performance benchmarks (Perf-1 ... Perf-5) sweep the parameters of
the efficiency questions the paper raises in sections 3.1, 3.3.3 and 4.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro.scenario import MeetingScenario


@pytest.fixture
def scenario_factory():
    """A fresh scenario builder (figure benches need clean state)."""
    return MeetingScenario


@pytest.fixture(scope="module")
def completed_scenario():
    """The fig 2-4 end state, shared by read-only benches."""
    return MeetingScenario().run_all()
