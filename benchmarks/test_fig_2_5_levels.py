"""Fig 2-5 — levels of the design object knowledge base.

"design objects are classified by a hierarchy of design object classes
[...]  tokens of the GKBMS only represent characteristic features of
sources recorded outside the GKB in the DAIDA sub-environments."

The figure stacks: metaclasses for design objects / design object
classes / design object instances / the external world of sources.
This bench rebuilds all four levels and asserts each instantiation step.
"""

from repro.scenario import MeetingScenario


def build_levels():
    scenario = MeetingScenario().run_to_fig_2_2()
    gkbms = scenario.gkbms
    token = gkbms.register_source("InvitationRel", "dbpl/meetings.dbpl")
    return scenario, token


def test_fig_2_5_levels(benchmark):
    scenario, token = benchmark(build_levels)
    proc = scenario.gkbms.processor

    # level 1: the metaclass for design objects
    assert proc.exists("DesignObject")
    assert proc.is_instance_of("DesignObject", "MetaClass")

    # level 2: design object classes instantiate the metaclass and
    # follow the abstract syntax of the DAIDA languages
    for cls in ("TDL_EntityClass", "DBPL_Rel", "DBPL_Constructor"):
        assert proc.is_instance_of(cls, "DesignObject")

    # level 3: design object instances instantiate the classes
    assert proc.is_instance_of("Invitations", "TDL_EntityClass")
    assert proc.is_instance_of("InvitationRel", "DBPL_Rel")

    # level 4: instances abstract sources recorded *outside* the GKB
    assert proc.is_instance_of(token, "ExternalSource")
    sources = proc.attributes_of("InvitationRel", label="source")
    assert [p.destination for p in sources] == [token]

    # the uniform representation covers all life-cycle stages
    levels = {scenario.gkbms.level_of(n)
              for n in ("Meeting", "Papers", "InvitationRel")}
    assert levels == {"requirements", "design", "implementation"}

    print("\nFig 2-5 instantiation chain:")
    print(f"  MetaClass <- DesignObject <- DBPL_Rel <- InvitationRel "
          f"<- {token}")
