"""Fig 2-3 — dependency graph and code frames after normalisation and
key substitution.

"The new selector expresses the referential integrity constraint among
the two relations, whereas the new constructor allows the
reconstruction of the initial, unnormalized invitation relation. [...]
the developer decides to 'make the system more user-friendly' by
replacing the artificial paperkey attribute with date, author."
"""

from repro.scenario import MeetingScenario


def run_to_fig_2_3():
    scenario = MeetingScenario().run_to_fig_2_3()
    return scenario, scenario.gkbms.dependency_graph(), scenario.gkbms.code_frames()


def test_fig_2_3_normalize_and_keys(benchmark):
    scenario, graph, frames = benchmark(run_to_fig_2_3)
    module = scenario.gkbms.module

    # normalisation products (left side of the figure)
    norm = scenario.records["normalize"]
    assert norm.outputs["relations"] == ["InvitationRel2", "InvReceivRel"]
    assert norm.outputs["selector"] == ["InvitationsPaperIC"]
    assert norm.outputs["constructor"] == ["ConsInvitation"]
    assert ("InvitationRel", "relation", norm.did) in graph.edges

    # key substitution (right side): associative key everywhere
    assert module.relations["InvitationRel2"].key == ("date", "author")
    assert "paperkey" not in module.relations["InvitationRel2"].field_names()
    assert module.relations["InvReceivRel"].key == ("date", "author", "receiver")
    selector = module.selectors["InvitationsPaperIC"]
    assert selector.constraint.columns == ("date", "author")
    assert selector.constraint.target == "InvitationRel2"
    assert "KEY date, author;" in frames

    # automatic and manual execution interact: the key decision left a
    # proof obligation (KeysCorrect) that a signature can discharge
    keys = scenario.records["keys"]
    open_names = [o.name for o in keys.open_obligations()]
    assert "KeysCorrect" in open_names

    # the reconstruction view actually reconstructs
    db = scenario.gkbms.build_database()
    with db.transaction():
        db.relation("InvitationRel2").insert(
            {"date": "d1", "author": "a1", "sender": "s1"}
        )
        db.relation("InvReceivRel").insert(
            {"date": "d1", "author": "a1", "receiver": "r1"}
        )
    rows = db.rows("ConsInvitation")
    assert rows == [
        {"date": "d1", "author": "a1", "sender": "s1", "receiver": "r1"}
    ]

    print("\nFig 2-3 code frames:")
    print(frames)
