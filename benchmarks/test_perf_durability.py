"""Perf-7 — the durability layer (WAL, recovery, checkpointing).

Two sweeps plus structural acceptance tests:

- **Recovery time vs journal length**: reopening a :class:`WalStore`
  replays the log; the sweep shows replay cost growing with journal
  length and collapsing after a checkpoint.
- **Fsync policy vs tell throughput**: the ``always``/``commit``/
  ``never`` policies write identical bytes but force them at different
  boundaries; the sweep quantifies the durability/throughput trade-off.

The gated tests assert structure, not wall clock: fsync *counts* are
strictly ordered across policies, recovery yields bit-identical rows
under every policy, and a checkpoint makes recovery replay strictly
fewer records.
"""

import pytest

from repro.propositions import PropositionProcessor, WalStore

JOURNAL_LENGTHS = [10, 40, 120]  # tellings in the log before reopen
FSYNC_POLICIES = ["always", "commit", "never"]


def grow_base(store: WalStore, tellings: int) -> PropositionProcessor:
    """A telling-structured load: 3 creates + 1 link per telling."""
    proc = PropositionProcessor(store=store)
    previous = None
    for step in range(tellings):
        with proc.telling():
            for i in range(3):
                proc.tell_individual(f"obj{step}_{i}")
            if previous is not None:
                proc.tell_link(previous, "next", f"obj{step}_0")
            previous = f"obj{step}_0"
    return proc


# ---------------------------------------------------------------------------
# Part A: recovery time vs journal length
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("tellings", JOURNAL_LENGTHS)
def test_perf_recovery_vs_journal_length(benchmark, tmp_path, tellings):
    path = str(tmp_path / "perf.wal")
    store = WalStore(path, fsync="never")
    grow_base(store, tellings)
    store.close()

    def reopen():
        recovered = WalStore(path, fsync="never")
        recovered.close()
        return recovered

    recovered = benchmark(reopen)
    assert recovered.stats["replayed"] > tellings


@pytest.mark.parametrize("tellings", JOURNAL_LENGTHS)
def test_perf_recovery_after_checkpoint(benchmark, tmp_path, tellings):
    path = str(tmp_path / "perf.wal")
    store = WalStore(path, fsync="never")
    grow_base(store, tellings)
    store.checkpoint()
    store.close()

    def reopen():
        recovered = WalStore(path, fsync="never")
        recovered.close()
        return recovered

    recovered = benchmark(reopen)
    assert recovered.stats["replayed"] == 0  # all folded into the snapshot


# ---------------------------------------------------------------------------
# Part B: fsync policy vs tell throughput
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fsync", FSYNC_POLICIES)
def test_perf_tell_throughput_by_policy(benchmark, tmp_path, fsync):
    counter = iter(range(10**6))

    def load():
        path = str(tmp_path / f"policy{next(counter)}.wal")
        store = WalStore(path, fsync=fsync)
        grow_base(store, 25)
        store.close()
        return store

    store = benchmark(load)
    assert len(store) > 75


# ---------------------------------------------------------------------------
# Gated structural acceptance (run in CI with --benchmark-disable)
# ---------------------------------------------------------------------------

def test_fsync_policy_sync_counts(tmp_path, perf_counters):
    """``always`` forces every record, ``commit`` only telling
    boundaries, ``never`` nothing — strictly ordered counts, identical
    logical state."""
    fsyncs = {}
    rows = {}
    for policy in FSYNC_POLICIES:
        path = str(tmp_path / f"{policy}.wal")
        store = WalStore(path, fsync=policy)
        grow_base(store, 20)
        rows[policy] = store.rows()
        store.close()
        fsyncs[policy] = store.stats["fsyncs"]
    assert fsyncs["always"] > fsyncs["commit"] > fsyncs["never"] == 0
    assert rows["always"] == rows["commit"] == rows["never"]
    perf_counters(
        fsyncs_always=fsyncs["always"],
        fsyncs_commit=fsyncs["commit"],
        fsyncs_never=fsyncs["never"],
    )


def test_recovered_rows_identical(tmp_path, perf_counters):
    """Recovery is exact under every fsync policy (clean shutdown)."""
    for policy in FSYNC_POLICIES:
        path = str(tmp_path / f"{policy}.wal")
        store = WalStore(path, fsync=policy)
        grow_base(store, 15)
        expected = store.rows()
        store.close()
        recovered = WalStore(path)
        assert recovered.rows() == expected
        perf_counters(**{f"replayed_{policy}": recovered.stats["replayed"]})
        recovered.close()


def test_checkpoint_replays_fewer(tmp_path, perf_counters):
    """A checkpoint strictly reduces recovery replay work while leaving
    the recovered rows identical."""
    plain = str(tmp_path / "plain.wal")
    store = WalStore(plain, fsync="never")
    grow_base(store, 40)
    rows = store.rows()
    store.close()
    reopened_plain = WalStore(plain, fsync="never")

    ckpt = str(tmp_path / "ckpt.wal")
    store = WalStore(ckpt, fsync="never")
    grow_base(store, 40)
    dropped = store.checkpoint()
    assert store.rows() == rows
    store.close()
    reopened_ckpt = WalStore(ckpt, fsync="never")

    assert reopened_plain.rows() == reopened_ckpt.rows() == rows
    assert reopened_ckpt.stats["replayed"] < reopened_plain.stats["replayed"]
    assert dropped > 0
    perf_counters(
        replayed_without_checkpoint=reopened_plain.stats["replayed"],
        replayed_with_checkpoint=reopened_ckpt.stats["replayed"],
        checkpoint_dropped_records=dropped,
    )
    reopened_plain.close()
    reopened_ckpt.close()
