"""Perf-2 — set-oriented consistency checking (sections 3.1, 4).

"Since a whole set of operations is passed to the proposition
processor, set-oriented optimization of the consistency check is being
studied."

Workload: a batch of attribute updates all touching the same small set
of instances, checked (a) per proposition (naive) and (b) set-oriented
over the whole batch.  Expected shape: the set-oriented check evaluates
each (constraint, instance) pair once regardless of batch size, so its
evaluation count — and time — stays flat while the naive mode grows
linearly with the batch.
"""

import pytest

from repro.consistency import ConsistencyChecker
from repro.propositions import PropositionProcessor

INSTANCES = 10
BATCH_SIZES = [10, 40, 160]


def build_kb():
    proc = PropositionProcessor()
    proc.define_class("Doc")
    proc.define_class("Person")
    proc.tell_link("Doc", "owner", "Person", pid="Doc.owner",
                   of_class="Attribute")
    proc.tell_individual("alice", in_class="Person")
    for index in range(INSTANCES):
        proc.tell_individual(f"doc{index}", in_class="Doc")
        proc.tell_link(f"doc{index}", "owner", "alice",
                       of_class="Doc.owner")
    return proc


def make_batch(proc, size):
    """A batch of updates cycling over the same instances."""
    batch = []
    for index in range(size):
        doc = f"doc{index % INSTANCES}"
        links = proc.attributes_of(doc, label="owner")
        batch.append(links[0])
    return batch


@pytest.fixture(scope="module")
def kb():
    proc = build_kb()
    return proc, {size: make_batch(proc, size) for size in BATCH_SIZES}


@pytest.mark.parametrize("size", BATCH_SIZES)
@pytest.mark.parametrize("set_oriented", [False, True],
                         ids=["per-proposition", "set-oriented"])
def test_perf_consistency(benchmark, kb, set_oriented, size):
    proc, batches = kb

    def check():
        checker = ConsistencyChecker(proc, set_oriented=set_oriented)
        checker.attach_constraint("Doc", f"Owned_{set_oriented}_{size}",
                                  "Known(self.owner)", document=False)
        violations = checker.check_batch(batches[size])
        return checker.stats.evaluations, violations

    evaluations, violations = benchmark(check)
    assert violations == []
    if set_oriented:
        # one evaluation per touched instance, independent of batch size
        assert evaluations <= INSTANCES + 1
    else:
        assert evaluations >= size


@pytest.mark.parametrize("axioms", [True, False], ids=["axioms-on", "axioms-off"])
def test_perf_axiom_checking(benchmark, axioms):
    """Ablation (DESIGN.md §5): the cost of validating every create
    against the CML axiom base."""

    def create_batch():
        proc = PropositionProcessor()
        if not axioms:
            for name in proc.axioms.names():
                proc.axioms.disable(name)
        proc.define_class("Doc")
        for index in range(80):
            proc.tell_individual(f"d{index}", in_class="Doc")
            if index:
                proc.tell_link(f"d{index - 1}", "next", f"d{index}")
        return proc

    proc = benchmark(create_batch)
    assert len(proc.store) > 160


def test_set_oriented_evaluation_counts(kb):
    proc, batches = kb
    counts = {}
    for mode in (False, True):
        checker = ConsistencyChecker(proc, set_oriented=mode)
        checker.attach_constraint("Doc", f"C_{mode}", "Known(self.owner)",
                                  document=False)
        checker.check_batch(batches[max(BATCH_SIZES)])
        counts[mode] = checker.stats.evaluations
    assert counts[True] * 4 <= counts[False]
    print(f"\nPerf-2 evaluations over a batch of {max(BATCH_SIZES)}: "
          f"set-oriented={counts[True]}, per-proposition={counts[False]}")
