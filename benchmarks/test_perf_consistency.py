"""Perf-2 — set-oriented consistency checking (sections 3.1, 4).

"Since a whole set of operations is passed to the proposition
processor, set-oriented optimization of the consistency check is being
studied."

Workload: a batch of attribute updates all touching the same small set
of instances, checked (a) per proposition (naive) and (b) set-oriented
over the whole batch.  Expected shape: the set-oriented check evaluates
each (constraint, instance) pair once regardless of batch size, so its
evaluation count — and time — stays flat while the naive mode grows
linearly with the batch.
"""

import pytest

from repro.consistency import ConsistencyChecker
from repro.propositions import PropositionProcessor

INSTANCES = 10
BATCH_SIZES = [10, 40, 160]


def build_kb():
    proc = PropositionProcessor()
    proc.define_class("Doc")
    proc.define_class("Person")
    proc.tell_link("Doc", "owner", "Person", pid="Doc.owner",
                   of_class="Attribute")
    proc.tell_individual("alice", in_class="Person")
    for index in range(INSTANCES):
        proc.tell_individual(f"doc{index}", in_class="Doc")
        proc.tell_link(f"doc{index}", "owner", "alice",
                       of_class="Doc.owner")
    return proc


def make_batch(proc, size):
    """A batch of updates cycling over the same instances."""
    batch = []
    for index in range(size):
        doc = f"doc{index % INSTANCES}"
        links = proc.attributes_of(doc, label="owner")
        batch.append(links[0])
    return batch


@pytest.fixture(scope="module")
def kb():
    proc = build_kb()
    return proc, {size: make_batch(proc, size) for size in BATCH_SIZES}


@pytest.mark.parametrize("size", BATCH_SIZES)
@pytest.mark.parametrize("set_oriented", [False, True],
                         ids=["per-proposition", "set-oriented"])
def test_perf_consistency(benchmark, kb, set_oriented, size):
    proc, batches = kb

    def check():
        checker = ConsistencyChecker(proc, set_oriented=set_oriented)
        checker.attach_constraint("Doc", f"Owned_{set_oriented}_{size}",
                                  "Known(self.owner)", document=False)
        violations = checker.check_batch(batches[size])
        return checker.stats.evaluations, violations

    evaluations, violations = benchmark(check)
    assert violations == []
    if set_oriented:
        # one evaluation per touched instance, independent of batch size
        assert evaluations <= INSTANCES + 1
    else:
        assert evaluations >= size


# ---------------------------------------------------------------------------
# Perf-2b — constraint-relevance precompilation (the static-analysis half
# of the set-oriented optimisation): constraints whose footprint does not
# intersect the batch's touched attribute labels are never re-evaluated.
# ---------------------------------------------------------------------------

#: Labels the relevance-irrelevant constraints read; the batch only ever
#: touches ``owner`` links, so these stay statically skippable.
OTHER_LABELS = ["reviewer", "editor", "archivist", "typist", "referee"]


def build_multi_constraint_kb():
    proc = build_kb()
    for label in OTHER_LABELS:
        proc.tell_link("Doc", label, "Person", pid=f"Doc.{label}",
                       of_class="Attribute")
    return proc


def attach_mixed_constraints(checker, tag):
    """One constraint reading ``owner`` plus several reading other labels
    (vacuously satisfied: no such links exist on any doc)."""
    checker.attach_constraint("Doc", f"Owned_{tag}", "Known(self.owner)",
                              document=False)
    for label in OTHER_LABELS:
        checker.attach_constraint(
            "Doc", f"No_{label}_{tag}", f"not Known(self.{label})",
            document=False,
        )


@pytest.fixture(scope="module")
def relevance_kb():
    proc = build_multi_constraint_kb()
    return proc, make_batch(proc, max(BATCH_SIZES))


@pytest.mark.parametrize("use_relevance", [False, True],
                         ids=["full-rescan", "relevance-index"])
def test_perf_relevance_index(benchmark, relevance_kb, use_relevance):
    proc, batch = relevance_kb

    def check():
        checker = ConsistencyChecker(proc, set_oriented=True,
                                     use_relevance=use_relevance)
        attach_mixed_constraints(checker, f"bench_{use_relevance}")
        return checker.check_batch(batch), checker.stats

    violations, stats = benchmark(check)
    assert violations == []
    if use_relevance:
        assert stats.skipped > 0


def test_relevance_evaluates_strictly_fewer(relevance_kb):
    """Acceptance: the relevance index evaluates strictly fewer
    constraints per update than the full-rescan path, with unchanged
    violation results."""
    proc, batch = relevance_kb
    results = {}
    for use_relevance in (False, True):
        checker = ConsistencyChecker(proc, set_oriented=True,
                                     use_relevance=use_relevance)
        attach_mixed_constraints(checker, f"cmp_{use_relevance}")
        violations = checker.check_batch(batch)
        results[use_relevance] = (checker.stats.evaluations,
                                  [repr(v) for v in violations])
    evals_full, violations_full = results[False]
    evals_relevance, violations_relevance = results[True]
    assert violations_relevance == violations_full
    assert evals_relevance < evals_full
    # only the owner constraint survives the footprint filter: one
    # evaluation per touched instance vs one per (constraint, instance)
    assert evals_relevance * len(OTHER_LABELS) <= evals_full
    print(f"\nPerf-2b evaluations over a batch of {len(batch)}: "
          f"relevance-index={evals_relevance}, full-rescan={evals_full}")


def test_relevance_preserves_violations_when_relevant(relevance_kb):
    """A constraint whose footprint matches the touched label is still
    evaluated — and still reports its violation — under the index."""
    proc, batch = relevance_kb
    reports = {}
    for use_relevance in (False, True):
        checker = ConsistencyChecker(proc, set_oriented=True,
                                     use_relevance=use_relevance)
        # Violated for every doc: owner links exist but point at alice,
        # who is no Doc.
        checker.attach_constraint(
            "Doc", f"OwnerIsDoc_{use_relevance}", "In(self.owner, Doc)",
            document=False,
        )
        reports[use_relevance] = sorted(
            (v.constraint.rsplit("_", 1)[0], v.instance)
            for v in checker.check_batch(batch)
        )
    assert reports[True] == reports[False]
    assert reports[True]  # the violation is genuinely reported


@pytest.mark.parametrize("axioms", [True, False], ids=["axioms-on", "axioms-off"])
def test_perf_axiom_checking(benchmark, axioms):
    """Ablation (DESIGN.md §5): the cost of validating every create
    against the CML axiom base."""

    def create_batch():
        proc = PropositionProcessor()
        if not axioms:
            for name in proc.axioms.names():
                proc.axioms.disable(name)
        proc.define_class("Doc")
        for index in range(80):
            proc.tell_individual(f"d{index}", in_class="Doc")
            if index:
                proc.tell_link(f"d{index - 1}", "next", f"d{index}")
        return proc

    proc = benchmark(create_batch)
    assert len(proc.store) > 160


def test_set_oriented_evaluation_counts(kb):
    proc, batches = kb
    counts = {}
    for mode in (False, True):
        checker = ConsistencyChecker(proc, set_oriented=mode)
        checker.attach_constraint("Doc", f"C_{mode}", "Known(self.owner)",
                                  document=False)
        checker.check_batch(batches[max(BATCH_SIZES)])
        counts[mode] = checker.stats.evaluations
    assert counts[True] * 4 <= counts[False]
    print(f"\nPerf-2 evaluations over a batch of {max(BATCH_SIZES)}: "
          f"set-oriented={counts[True]}, per-proposition={counts[False]}")
