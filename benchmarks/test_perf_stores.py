"""Perf-4 — physical proposition-base representations (section 3.1).

"Several physical representations (e.g. Prolog workspaces, external
databases) of propositions can be managed by the proposition base."

Workload: an insert-then-query mix over the three stores.  Expected
shape: the memory store is the fastest baseline; the log store pays a
journal append per write but reads at memory speed; the workspace store
pays a partition lookup per read.  All three must return identical
results (also asserted property-style in the unit tests).
"""

import pytest

from repro.propositions import (
    LogStore,
    MemoryStore,
    Pattern,
    WorkspaceStore,
    individual,
    link,
)

N_OBJECTS = 150
QUERY_ROUNDS = 3

STORES = {
    "memory": MemoryStore,
    "log": LogStore,
    "workspace": WorkspaceStore,
}


def workload(store_cls):
    store = store_cls()
    for index in range(N_OBJECTS):
        store.create(individual(f"obj{index}"))
    for index in range(1, N_OBJECTS):
        store.create(
            link(f"l{index}", f"obj{index - 1}", "next", f"obj{index}")
        )
        if index % 3 == 0:
            store.create(
                link(f"c{index}", f"obj{index}", "instanceof", "obj0")
            )
    hits = 0
    for _round in range(QUERY_ROUNDS):
        for index in range(0, N_OBJECTS, 5):
            hits += sum(
                1 for _p in store.retrieve(Pattern(source=f"obj{index}"))
            )
        hits += sum(
            1 for _p in store.retrieve(Pattern(label="instanceof"))
        )
    for index in range(0, N_OBJECTS // 2):
        store.delete(f"l{index + 1}")
    return store, hits


@pytest.mark.parametrize("kind", list(STORES), ids=list(STORES))
def test_perf_stores(benchmark, kind):
    store, hits = benchmark(workload, STORES[kind])
    assert hits > 0
    assert len(store) == N_OBJECTS + (N_OBJECTS - 1) - N_OBJECTS // 2 + (
        (N_OBJECTS - 1) // 3
    )


def test_stores_return_identical_results():
    results = {}
    for kind, store_cls in STORES.items():
        _store, hits = workload(store_cls)
        results[kind] = hits
    assert len(set(results.values())) == 1


def test_log_store_replay_and_compaction():
    store, _hits = workload(LogStore)
    journal_before = len(store.journal)
    replayed = store.replay()
    assert {p.pid for p in replayed} == {p.pid for p in store}
    removed = store.compact()
    assert removed > 0
    assert len(store.journal) == journal_before - removed
    print(f"\nPerf-4 log store: journal {journal_before} -> "
          f"{len(store.journal)} entries after compaction")
