"""Fig 2-6 — decision instance created after selection and tool-aided
execution of an applicable decision class.

"Input and output interrelationships are denoted by FROM and TO links.
Tool associations are represented by BY links.  [...]  By convention,
links labeled with small letters are instances of those denoted by
capitals.  Due to this instantiation principle, all links among GKBMS
instances must be interpreted as specified at the level of classes and
tool specifications."
"""

from repro.scenario import MeetingScenario


def select_and_execute():
    scenario = MeetingScenario().setup()
    gkbms = scenario.gkbms
    # select: match the focus object's class against decision inputs
    matches = gkbms.decisions.applicable_decisions("Invitations")
    # execute the most specific decision class with its first tool
    dc, roles, tools = matches[0]
    record = gkbms.execute(
        dc.name, {roles[0]: "Papers"}, tool=tools[0],
        params={"only": ["Invitations"],
                "names": {"Invitations": "InvitationRel"}},
    )
    return scenario, matches, record


def test_fig_2_6_matching(benchmark):
    scenario, matches, record = benchmark(select_and_execute)
    proc = scenario.gkbms.processor

    # the menu matched by input classes; the most specific class leads
    assert matches[0][0].name in ("DecMoveDown", "DecDistribute")

    # class level: FROM/TO/BY links instantiate the capital metaclass
    # attributes
    dc_name = record.decision_class
    assert "FROM" in proc.classification_of_link(f"{dc_name}.hierarchy")
    assert "TO" in proc.classification_of_link(f"{dc_name}.relations")
    assert "BY" in proc.classification_of_link(
        f"{dc_name}.by.{record.tool}"
    )

    # instance level: the small-letter links are instances of the
    # class-level links (the instantiation principle)
    for prop in proc.attributes_of(record.did, label="hierarchy"):
        assert f"{dc_name}.hierarchy" in proc.classification_of_link(prop.pid)
    for prop in proc.attributes_of(record.did, label="relations"):
        assert f"{dc_name}.relations" in proc.classification_of_link(prop.pid)
    by_links = proc.attributes_of(record.did, label="by")
    assert len(by_links) == 1
    assert f"{dc_name}.by.{record.tool}" in proc.classification_of_link(
        by_links[0].pid
    )
    # the tool application token instantiates the tool specification
    assert proc.is_instance_of(by_links[0].destination, record.tool)

    # outputs are justified by the decision (the ex-post documentation)
    for name in record.all_outputs():
        justifications = proc.attributes_of(name, label="justification")
        assert [p.destination for p in justifications] == [record.did]

    print(f"\nFig 2-6: executed {record.did} of {dc_name} by {record.tool}")
