"""Perf-3 — RMS scaling with and without GKBMS abstraction (3.3.3).

"since current RMS can handle only fairly small dependency networks
efficiently [DEKL86], we are studying their combination with the
abstraction mechanisms of the GKBMS."

Workload: synthetic decision histories of growing size, organised in
scopes (one scope per mapped subsystem; decisions chain within a scope,
with sparse cross-scope inputs).  Compared: one flat JTMS over the
whole history vs one JTMS per scope with interface propagation.
Expected shape: flat relabelling cost grows with the *whole* network on
every retraction, the partitioned RMS only touches the affected scopes
— the gap widens with history size, which is the paper's argument.
"""

import pytest

from repro.core.decisions import DecisionRecord
from repro.core.rms import DecisionRMS, PartitionedDecisionRMS

SCOPES = 8
SIZES = [4, 16, 48]  # decisions per scope


def synthetic_history(per_scope: int):
    """Chains of decisions in SCOPES scopes; every 4th decision also
    consumes the *first* object of the previous scope (a stable
    interface, so retracting mid-chain decisions has scope-local
    consequences — the abstraction the paper wants to exploit)."""
    records = []
    counter = 0
    for scope in range(SCOPES):
        previous_output = f"seed_s{scope}"
        for step in range(per_scope):
            counter += 1
            inputs = {"input": previous_output}
            if step % 4 == 3 and scope > 0:
                inputs["extra"] = f"obj_s{scope - 1}_d0"
            output = f"obj_s{scope}_d{step}"
            records.append(DecisionRecord(
                did=f"dec_s{scope}_d{step}",
                decision_class=f"scope{scope}",
                inputs=inputs,
                outputs={"out": [output]},
                tick=counter,
            ))
            previous_output = output
    return records


def flat_workload(records):
    rms = DecisionRMS()
    rms.load(records)
    # retract one early decision per scope (the expensive case)
    for scope in range(SCOPES):
        rms.retract_decision(f"dec_s{scope}_d1")
    return rms


def partitioned_workload(records):
    rms = PartitionedDecisionRMS(scope_of=lambda r: r.decision_class)
    rms.load(records)
    for scope in range(SCOPES):
        rms.retract_decision(f"dec_s{scope}_d1")
    return rms


@pytest.mark.parametrize("per_scope", SIZES)
@pytest.mark.parametrize("variant", ["flat", "partitioned"])
def test_perf_rms_scaling(benchmark, variant, per_scope):
    records = synthetic_history(per_scope)
    workload = flat_workload if variant == "flat" else partitioned_workload
    rms = benchmark(workload, records)
    # both variants agree on what fell out of belief
    assert not rms.is_current(f"obj_s0_d{per_scope - 1}")


def test_rms_variants_agree():
    records = synthetic_history(8)
    flat = flat_workload(records)
    partitioned = partitioned_workload(records)
    assert flat.believed_objects() == partitioned.believed_objects()


def test_partitioned_touches_fewer_nodes():
    records = synthetic_history(32)
    flat = DecisionRMS()
    flat.load(records)
    partitioned = PartitionedDecisionRMS(scope_of=lambda r: r.decision_class)
    partitioned.load(records)
    flat.jtms.stats["visits"] = 0
    for jtms in partitioned.partitions.values():
        jtms.stats["visits"] = 0
    flat.retract_decision("dec_s0_d1")
    partitioned.retract_decision("dec_s0_d1")
    flat_visits = flat.jtms.stats["visits"]
    part_visits = partitioned.total_visits()
    assert part_visits < flat_visits
    print(f"\nPerf-3 justification visits for one retraction "
          f"(32/scope, 8 scopes): flat={flat_visits}, "
          f"partitioned={part_visits}")
