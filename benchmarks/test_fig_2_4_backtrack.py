"""Fig 2-4 — code frames and dependency graph after backtracking the
key-substitution decision.

"the assumption that Invitations are the only kind of Papers leads to
an inconsistency as soon as the mapping of Minutes [...] is considered.
Therefore, the decision to choose associative keys must be retracted,
together with all its consequent changes, without redoing all the rest
of the design."
"""

from repro.scenario import MeetingScenario


def run_to_fig_2_4():
    scenario = MeetingScenario().run_to_fig_2_4()
    graph = scenario.gkbms.dependency_graph(include_retracted=True)
    return scenario, graph, scenario.gkbms.code_frames()


def test_fig_2_4_backtrack(benchmark):
    scenario, graph, frames = benchmark(run_to_fig_2_4)
    gkbms = scenario.gkbms

    # the key decision is retracted, *only* the key decision
    statuses = {
        did: gkbms.decisions.records[did].status
        for did in gkbms.decisions.order
    }
    retracted = sorted(d for d, s in statuses.items() if s == "retracted")
    assert retracted == [scenario.records["keys"].did]

    # mapping and normalisation were not redone
    assert scenario.records["map"].status == "done"
    assert scenario.records["normalize"].status == "done"

    # the module is back to surrogate keys (the figure's code frames)
    module = gkbms.module
    assert module.relations["InvitationRel2"].key == ("paperkey",)
    assert module.relations["InvReceivRel"].key == ("paperkey", "receiver")
    assert "(paperkey) REFERENCES InvitationRel2 (paperkey)" in frames

    # Minutes is now mapped alongside
    assert "MinutesRel" in module.relations

    # the graph highlights what was touched: the retracted decision
    # node is marked
    rendered = graph.to_ascii()
    assert f"[{scenario.records['keys'].did}]" in rendered

    # the stale assumption no longer taints the configuration
    assert gkbms.violated_assumptions() == []

    print("\nFig 2-4 code frames after backtracking:")
    print(frames)
